"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro                 # list available artifacts
    python -m repro table2          # print one artifact
    python -m repro all             # print everything
    python -m repro observe         # watch a simulation observe itself

``observe`` (also ``--observe``) runs a small deterministic scenario —
a fork-join workflow on a cluster that takes a correlated failure
burst mid-run — with the full observability stack armed, then prints
the operator's view: the metrics table, the SLO verdicts, the alert
log, and the workflow's critical path.
"""

from __future__ import annotations

import sys

from .core import (
    ChallengeRegistry,
    CurriculumRegistry,
    FieldRegistry,
    MCSOverview,
    PrincipleRegistry,
    UseCaseRegistry,
)
from .datacenter import ReferenceArchitecture
from .evolution import TechnologyTimeline
from .faas import FaaSReferenceArchitecture
from .gaming import GamingArchitecture
from .reporting import render_table

__all__ = ["main"]


def _table1() -> str:
    return render_table(["Question", "Aspect", "Content"],
                        MCSOverview().table_rows(),
                        title="TABLE 1. AN OVERVIEW OF MCS.")


def _table2() -> str:
    return render_table(["Type", "Index", "Key aspects"],
                        PrincipleRegistry().table_rows(),
                        title="TABLE 2. THE 10 KEY PRINCIPLES OF MCS.")


def _table3() -> str:
    return render_table(["Type", "Index", "Key aspects", "Princip."],
                        ChallengeRegistry().table_rows(),
                        title="TABLE 3. THE 20 CHALLENGES RAISED BY MCS.")


def _table4() -> str:
    return render_table(["Loc.", "Description", "Key aspects"],
                        UseCaseRegistry().table_rows(),
                        title="TABLE 4. SELECTED USE-CASES FOR MCS.")


def _table5() -> str:
    return render_table(
        ["Field (Decade)", "Crisis", "Continues", "Obj.", "Object",
         "Method.", "Char."],
        FieldRegistry().table_rows(),
        title="TABLE 5. COMPARISON OF FIELDS.")


def _figure2() -> str:
    return render_table(["Decade", "Field", "Technology"],
                        TechnologyTimeline().table_rows(),
                        title="FIGURE 2. MAIN TECHNOLOGIES LEADING TO MCS.")


def _figure3() -> str:
    return render_table(["#", "Layer", "Responsibility"],
                        ReferenceArchitecture().table_rows(),
                        title="FIGURE 3. REFERENCE ARCHITECTURE FOR "
                              "DATACENTERS.")


def _figure4() -> str:
    return render_table(["Function", "Main topics"],
                        GamingArchitecture().table_rows(),
                        title="FIGURE 4. ONLINE GAMING ARCHITECTURE.")


def _figure5() -> str:
    return render_table(["#", "Layer", "Responsibility"],
                        FaaSReferenceArchitecture().table_rows(),
                        title="FIGURE 5. FAAS REFERENCE ARCHITECTURE.")


def _curriculum() -> str:
    rows = [(a.index, a.title, a.audience)
            for a in CurriculumRegistry()]
    return render_table(["#", "Addition", "Audience"], rows,
                        title="C12. THE BOKMCS CURRICULUM ADDITIONS.")


def _observe() -> str:
    """One self-observing run: telemetry, SLOs, alerts, critical path.

    Everything is fixed (no randomness), so the printed tables are
    byte-identical on every invocation — the observability contract,
    demonstrated at the command line.
    """
    from .datacenter import Datacenter, MachineSpec, homogeneous_cluster
    from .failures import FailureEvent, FailureInjector
    from .observability import (AvailabilityObjective, BurnRateRule,
                                Observer, QueueWaitObjective, SLOEngine,
                                StreamingPipeline, critical_path)
    from .reporting import (render_alerts, render_critical_path,
                            render_metrics, render_slo_report)
    from .scheduling import ClusterScheduler, WorkflowEngine
    from .sim import Simulator
    from .workload import Task, Workflow

    sim = Simulator()
    observer = Observer()
    observer.attach(sim)
    cluster = homogeneous_cluster("observe", 4, MachineSpec(cores=2),
                                  machines_per_rack=2)
    datacenter = Datacenter(sim, [cluster], name="observe-dc")
    scheduler = ClusterScheduler(sim, datacenter)
    engine = WorkflowEngine(sim, scheduler)

    workflow = Workflow("observe-demo")
    prep = workflow.add_task(Task(runtime=5.0, cores=1, name="prep"))
    stages = [workflow.add_task(Task(runtime=8.0 + i, cores=1,
                                     name=f"stage{i}"),
                                dependencies=[prep])
              for i in range(6)]
    workflow.add_task(Task(runtime=4.0, cores=1, name="merge"),
                      dependencies=stages)

    burst = FailureEvent(time=9.0, duration=25.0,
                         machine_names=("observe-m0", "observe-m1"))
    FailureInjector(sim, datacenter, [burst])

    pipeline = StreamingPipeline(sim, observer.metrics, interval=2.0)
    pipeline.attach(until=120.0)
    slo = SLOEngine(
        pipeline,
        objectives=[
            AvailabilityObjective(
                "exec-success", good="datacenter.executions_finished",
                bad="datacenter.executions_interrupted", target=0.9),
            QueueWaitObjective("fast-start", threshold=5.0, target=0.9),
        ],
        rules=(BurnRateRule("fast", long_window=20.0, short_window=6.0,
                            threshold=2.0),))

    done = engine.submit(workflow)
    sim.run(until=done)
    scheduler.stop()

    path = critical_path(observer.tracer, "workflow observe-demo")
    sections = [
        f"One workflow, one failure burst, makespan {sim.now:.1f}s "
        "- as the run saw itself:",
        render_metrics(observer.metrics.snapshot(),
                       title="Metrics (end of run)"),
        render_slo_report(slo.report()),
        render_alerts(slo.alerts),
        render_critical_path(path,
                             title="Critical path (workflow observe-demo)"),
    ]
    return "\n\n".join(sections)


ARTIFACTS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "figure2": _figure2,
    "figure3": _figure3,
    "figure4": _figure4,
    "figure5": _figure5,
    "curriculum": _curriculum,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        print("\nAvailable artifacts:")
        for name in sorted(ARTIFACTS):
            print(f"  {name}")
        print("  all")
        print("  observe")
        return 0
    name = argv[0]
    if name in ("observe", "--observe"):
        print(_observe())
        return 0
    if name == "all":
        for artifact in sorted(ARTIFACTS):
            print(ARTIFACTS[artifact]())
            print()
        return 0
    if name not in ARTIFACTS:
        print(f"unknown artifact {name!r}; try: "
              f"{', '.join(sorted(ARTIFACTS))}, all", file=sys.stderr)
        return 2
    print(ARTIFACTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
