"""Command-line interface: tables, figures, and scenario runs.

Usage::

    python -m repro                 # list available artifacts
    python -m repro table2          # print one artifact
    python -m repro all             # print everything
    python -m repro observe         # watch a simulation observe itself
    python -m repro observe --spec examples/specs/chaos_slo.json
    python -m repro run examples/specs/chaos_baseline.json
    python -m repro sweep examples/specs/chaos_baseline.json \\
        --seeds 1,2 --policies fcfs,sjf --workers 2
    python -m repro serve --port 8765 --workers 2

``observe`` (also ``--observe``) runs a small deterministic scenario —
a fork-join workflow on a cluster that takes a correlated failure
burst mid-run — with the full observability stack armed, then prints
the operator's view: the metrics table, the SLO verdicts, the alert
log, and the workflow's critical path.  With ``--spec <file>`` it
instead arms the observability stack on *any* declarative scenario
spec and prints the same operator's view for it.  With ``--federated``
it runs a seed grid across worker processes with per-worker Observer
capture, prints the merged fleet view, and verifies the merge is
byte-identical to a serial re-run (see docs/OBSERVABILITY.md,
"Federation").

``run`` executes one scenario spec (a JSON document, see
``docs/SCENARIOS.md``) and prints its deterministic result summary,
fingerprint, and digest; ``--out <file>`` also writes the full result
JSON.  Specs with a ``shards`` section run as per-region event loops
under conservative epoch coupling; ``--shard-workers N`` spreads the
shards over ``N`` OS processes with a byte-identical result for every
``N`` (see docs/ARCHITECTURE.md, "Sharding").  ``sweep`` fans a seed/policy/scale grid of the spec across
worker processes (``--workers``) with a deterministic merge;
``--verify-serial`` re-runs the grid serially and asserts the merged
report digest is byte-identical.

``serve`` runs the scenario kernel as a long-lived multi-tenant HTTP
service fronted by the repo's own resilience stack — bounded-queue
admission with per-tenant quotas (429 + ``Retry-After``), a circuit
breaker around the warm worker pool (503 while open), per-tenant retry
budgets, and a fingerprint-keyed result cache.  See
``docs/SERVICE.md`` for the API.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .core import (
    ChallengeRegistry,
    CurriculumRegistry,
    FieldRegistry,
    MCSOverview,
    PrincipleRegistry,
    UseCaseRegistry,
)
from .datacenter import ReferenceArchitecture
from .evolution import TechnologyTimeline
from .faas import FaaSReferenceArchitecture
from .gaming import GamingArchitecture
from .reporting import render_table
from .sim.sharding import ShardConfigError
from .workload.wfformat import WfFormatError

__all__ = ["main"]


def _table1() -> str:
    return render_table(["Question", "Aspect", "Content"],
                        MCSOverview().table_rows(),
                        title="TABLE 1. AN OVERVIEW OF MCS.")


def _table2() -> str:
    return render_table(["Type", "Index", "Key aspects"],
                        PrincipleRegistry().table_rows(),
                        title="TABLE 2. THE 10 KEY PRINCIPLES OF MCS.")


def _table3() -> str:
    return render_table(["Type", "Index", "Key aspects", "Princip."],
                        ChallengeRegistry().table_rows(),
                        title="TABLE 3. THE 20 CHALLENGES RAISED BY MCS.")


def _table4() -> str:
    return render_table(["Loc.", "Description", "Key aspects"],
                        UseCaseRegistry().table_rows(),
                        title="TABLE 4. SELECTED USE-CASES FOR MCS.")


def _table5() -> str:
    return render_table(
        ["Field (Decade)", "Crisis", "Continues", "Obj.", "Object",
         "Method.", "Char."],
        FieldRegistry().table_rows(),
        title="TABLE 5. COMPARISON OF FIELDS.")


def _figure2() -> str:
    return render_table(["Decade", "Field", "Technology"],
                        TechnologyTimeline().table_rows(),
                        title="FIGURE 2. MAIN TECHNOLOGIES LEADING TO MCS.")


def _figure3() -> str:
    return render_table(["#", "Layer", "Responsibility"],
                        ReferenceArchitecture().table_rows(),
                        title="FIGURE 3. REFERENCE ARCHITECTURE FOR "
                              "DATACENTERS.")


def _figure4() -> str:
    return render_table(["Function", "Main topics"],
                        GamingArchitecture().table_rows(),
                        title="FIGURE 4. ONLINE GAMING ARCHITECTURE.")


def _figure5() -> str:
    return render_table(["#", "Layer", "Responsibility"],
                        FaaSReferenceArchitecture().table_rows(),
                        title="FIGURE 5. FAAS REFERENCE ARCHITECTURE.")


def _curriculum() -> str:
    rows = [(a.index, a.title, a.audience)
            for a in CurriculumRegistry()]
    return render_table(["#", "Addition", "Audience"], rows,
                        title="C12. THE BOKMCS CURRICULUM ADDITIONS.")


def _observe() -> str:
    """One self-observing run: telemetry, SLOs, alerts, critical path.

    Everything is fixed (no randomness), so the printed tables are
    byte-identical on every invocation — the observability contract,
    demonstrated at the command line.
    """
    from .datacenter import Datacenter, MachineSpec, homogeneous_cluster
    from .failures import FailureEvent, FailureInjector
    from .observability import (AvailabilityObjective, BurnRateRule,
                                Observer, QueueWaitObjective, SLOEngine,
                                StreamingPipeline, critical_path)
    from .reporting import (render_alerts, render_critical_path,
                            render_metrics, render_slo_report)
    from .scheduling import ClusterScheduler, WorkflowEngine
    from .sim import Simulator
    from .workload import Task, Workflow

    sim = Simulator()
    observer = Observer()
    observer.attach(sim)
    cluster = homogeneous_cluster("observe", 4, MachineSpec(cores=2),
                                  machines_per_rack=2)
    datacenter = Datacenter(sim, [cluster], name="observe-dc")
    scheduler = ClusterScheduler(sim, datacenter)
    engine = WorkflowEngine(sim, scheduler)

    workflow = Workflow("observe-demo")
    prep = workflow.add_task(Task(runtime=5.0, cores=1, name="prep"))
    stages = [workflow.add_task(Task(runtime=8.0 + i, cores=1,
                                     name=f"stage{i}"),
                                dependencies=[prep])
              for i in range(6)]
    workflow.add_task(Task(runtime=4.0, cores=1, name="merge"),
                      dependencies=stages)

    burst = FailureEvent(time=9.0, duration=25.0,
                         machine_names=("observe-m0", "observe-m1"))
    FailureInjector(sim, datacenter, [burst])

    pipeline = StreamingPipeline(sim, observer.metrics, interval=2.0)
    pipeline.attach(until=120.0)
    slo = SLOEngine(
        pipeline,
        objectives=[
            AvailabilityObjective(
                "exec-success", good="datacenter.executions_finished",
                bad="datacenter.executions_interrupted", target=0.9),
            QueueWaitObjective("fast-start", threshold=5.0, target=0.9),
        ],
        rules=(BurnRateRule("fast", long_window=20.0, short_window=6.0,
                            threshold=2.0),))

    done = engine.submit(workflow)
    sim.run(until=done)
    scheduler.stop()

    path = critical_path(observer.tracer, "workflow observe-demo")
    sections = [
        f"One workflow, one failure burst, makespan {sim.now:.1f}s "
        "- as the run saw itself:",
        render_metrics(observer.metrics.snapshot(),
                       title="Metrics (end of run)"),
        render_slo_report(slo.report()),
        render_alerts(slo.alerts),
        render_critical_path(path,
                             title="Critical path (workflow observe-demo)"),
    ]
    return "\n\n".join(sections)


class SpecLoadError(Exception):
    """A spec file could not be read or parsed (user-facing message)."""


def _load_spec(path: str):
    """Read a :class:`ScenarioSpec` from a JSON file.

    Raises :class:`SpecLoadError` with an actionable message when the
    file is missing, unreadable, not JSON, or not a valid spec — the
    CLI turns that into one stderr line and exit code 2, never a raw
    traceback.
    """
    import json

    from .scenario import ScenarioSpec
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecLoadError(
            f"cannot read spec file {path!r}: {exc.strerror or exc}"
        ) from exc
    try:
        return ScenarioSpec.from_json(text)
    except json.JSONDecodeError as exc:
        raise SpecLoadError(
            f"spec file {path!r} is not valid JSON: {exc}") from exc
    except (ValueError, KeyError, TypeError) as exc:
        raise SpecLoadError(
            f"spec file {path!r} is not a valid scenario spec: "
            f"{type(exc).__name__}: {exc} (see docs/SCENARIOS.md)"
        ) from exc


def _observe_spec(path: str) -> str:
    """The operator's view of one declarative scenario run.

    A spec with a ``shards`` section gets the federated view instead:
    every per-region event loop captures its own telemetry plane and
    the merged fleet report is printed under per-shard run IDs.
    """
    from .observability import Observer
    from .reporting import (render_alerts, render_metrics,
                            render_slo_report)
    spec = _load_spec(path)
    if spec.shards is not None:
        from .reporting import render_fleet_report
        from .sim.sharding import run_sharded
        outcome = run_sharded(spec, observe=True)
        assert outcome.telemetry is not None
        sections = [
            f"Scenario {spec.name!r} (seed {spec.seed}, fingerprint "
            f"{spec.fingerprint()}) - as the sharded run saw itself:",
            render_fleet_report(
                outcome.telemetry,
                title=f"Fleet telemetry "
                      f"({len(spec.shards.shards)} shard(s))"),
            f"Result digest: {outcome.result.digest()}",
        ]
        return "\n\n".join(sections)
    observer = Observer()
    runtime = spec.build(observer=observer)
    engine = runtime.engine
    result = runtime.execute()
    sections = [
        f"Scenario {spec.name!r} (seed {spec.seed}, fingerprint "
        f"{spec.fingerprint()}) - as the run saw itself:",
        render_metrics(observer.metrics.snapshot(),
                       title="Metrics (end of run)"),
    ]
    if engine is not None:
        sections.append(render_slo_report(engine.report()))
        sections.append(render_alerts(engine.alerts))
    if result.chaos is not None:
        lines = [f"  {key}: {value:g}"
                 for key, value in sorted(result.chaos["summary"].items())]
        sections.append("Resilience summary:\n" + "\n".join(lines))
    sections.append(f"Result digest: {result.digest()}")
    return "\n\n".join(sections)


def _observe_federated(argv: list[str]) -> int:
    """``observe --federated [--spec F] [--workers N] [--seeds ..]``.

    Runs a seed grid of the spec with federated observation — every
    worker ships its telemetry snapshot across the pool seam — then
    prints the merged fleet view and pins its determinism by re-running
    the grid serially and comparing fleet digests.
    """
    from .observability.federation import fleet_digest
    from .reporting import render_fleet_report
    from .scenario import SweepRunner
    options = {"--spec": "examples/specs/chaos_baseline.json",
               "--workers": "2", "--seeds": "1,2,3,4"}
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument in options:
            if index + 1 >= len(argv):
                print(f"missing value for {argument}", file=sys.stderr)
                return 2
            options[argument] = argv[index + 1]
            index += 2
        else:
            print("usage: python -m repro observe --federated "
                  "[--spec <file>] [--workers N] [--seeds 1,2,3,4]",
                  file=sys.stderr)
            return 2
    spec = _load_spec(options["--spec"])
    seeds = _parse_axis(options["--seeds"], int)
    workers = int(options["--workers"])
    report = SweepRunner(spec, workers=workers,
                         observe=True).sweep(seeds=seeds)
    assert report.telemetry is not None
    print(render_fleet_report(
        report.telemetry,
        title=f"Fleet telemetry for {spec.name!r} "
              f"({workers} worker(s))"))
    print(f"\n  report digest: {report.digest()}")
    serial = SweepRunner(spec, workers=1, observe=True).sweep(seeds=seeds)
    assert serial.telemetry is not None
    if fleet_digest(serial.telemetry) != fleet_digest(report.telemetry):
        print("  FAIL: serial fleet digest differs", file=sys.stderr)
        return 1
    print("  serial re-run fleet digest matches (byte-identical merge)")
    return 0


def _run_spec(argv: list[str]) -> int:
    """``run <spec.json> [--out F] [--shard-workers N]``: one run.

    For a spec with a ``shards`` section, ``--shard-workers N``
    spreads the per-region event loops over ``N`` OS processes; the
    result (and its digest) is byte-identical for every ``N`` — the
    sharding determinism contract, demonstrated at the command line.
    """
    out = None
    shard_workers = 1
    if "--out" in argv:
        index = argv.index("--out")
        out = argv[index + 1]
        argv = argv[:index] + argv[index + 2:]
    if "--shard-workers" in argv:
        index = argv.index("--shard-workers")
        try:
            shard_workers = int(argv[index + 1])
        except (IndexError, ValueError):
            print("missing or invalid value for --shard-workers",
                  file=sys.stderr)
            return 2
        argv = argv[:index] + argv[index + 2:]
    if len(argv) != 1:
        print("usage: python -m repro run <spec.json> [--out result.json] "
              "[--shard-workers N]", file=sys.stderr)
        return 2
    spec = _load_spec(argv[0])
    if spec.shards is not None or shard_workers != 1:
        from .sim.sharding import run_sharded
        outcome = run_sharded(spec, workers=shard_workers)
        result = outcome.result
        coupling = result.shards["coupling"]
        print(f"  shards: {len(result.shards['by_shard'])} over "
              f"{outcome.workers} worker(s), {coupling['epochs']} epochs, "
              f"{coupling['offloaded']} task(s) offloaded")
    else:
        result = spec.run()
    for key, value in sorted(result.summary().items()):
        print(f"  {key}: {value:g}")
    print(f"  fingerprint: {result.fingerprint}")
    print(f"  digest: {result.digest()}")
    if out is not None:
        Path(out).write_text(result.to_json() + "\n", encoding="utf-8")
        print(f"  result written to {out}")
    return 0


def _parse_axis(text: str, cast) -> list:
    """Split a ``--axis a,b,c`` value into typed entries."""
    return [cast(part) for part in text.split(",") if part]


def _sweep_spec(argv: list[str]) -> int:
    """``sweep <spec.json> --seeds 1,2 --policies fcfs,sjf ...``."""
    from .reporting import render_table
    from .scenario import SweepRunner
    options = {"--seeds": None, "--policies": None, "--scale": None,
               "--workers": "1", "--out": None}
    positional: list[str] = []
    verify_serial = False
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--verify-serial":
            verify_serial = True
            index += 1
        elif argument in options:
            if index + 1 >= len(argv):
                print(f"missing value for {argument}", file=sys.stderr)
                return 2
            options[argument] = argv[index + 1]
            index += 2
        else:
            positional.append(argument)
            index += 1
    if len(positional) != 1:
        print("usage: python -m repro sweep <spec.json> [--seeds 1,2] "
              "[--policies fcfs,sjf] [--scale 1.0,2.0] [--workers N] "
              "[--verify-serial] [--out report.json]", file=sys.stderr)
        return 2
    spec = _load_spec(positional[0])
    seeds = _parse_axis(options["--seeds"] or "", int)
    policies = _parse_axis(options["--policies"] or "", str)
    scale = _parse_axis(options["--scale"] or "", float)
    workers = int(options["--workers"] or "1")
    report = SweepRunner(spec, workers=workers).sweep(
        seeds=seeds, policies=policies, scale=scale)
    rows = []
    for label, summary in report.rows():
        rows.append((label, f"{summary['makespan']:.1f}",
                     f"{summary['tasks_finished']:.0f}/"
                     f"{summary['tasks_total']:.0f}",
                     f"{summary.get('wait_mean', 0.0):.1f}"))
    print(render_table(
        ["Point", "Makespan", "Finished", "Mean wait"], rows,
        title=f"Sweep of {spec.name!r}: {len(report.runs)} runs on "
              f"{workers} worker(s)"))
    print(f"  base fingerprint: {report.base_fingerprint}")
    print(f"  report digest: {report.digest()}")
    if verify_serial:
        serial = SweepRunner(spec, workers=1).sweep(
            seeds=seeds, policies=policies, scale=scale)
        if serial.digest() != report.digest():
            print("  FAIL: serial re-run digest differs", file=sys.stderr)
            return 1
        print("  serial re-run digest matches (byte-identical merge)")
    if options["--out"] is not None:
        Path(options["--out"]).write_text(report.to_json() + "\n",
                                          encoding="utf-8")
        print(f"  report written to {options['--out']}")
    return 0


def _serve(argv: list[str]) -> int:
    """``serve [--host H] [--port P] [--workers N] ...``: HTTP service.

    Blocks until SIGINT/SIGTERM, then shuts the server and its worker
    pool down cleanly.  ``--inline`` swaps the warm process pool for
    the in-process executor (useful on machines where spawning
    processes is expensive; it is what the CI smoke job uses).
    ``--observe`` turns on federated per-run telemetry capture so
    ``/v1/metrics?format=openmetrics`` carries the fleet plane.
    """
    import signal
    import threading

    from .service import (InlineExecutor, ScenarioService, ServiceConfig,
                          ServiceHTTPServer)
    options = {"--host": "127.0.0.1", "--port": "8765", "--workers": "2",
               "--max-queue": "64", "--tenant-quota": "16"}
    inline = False
    observe = False
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "--inline":
            inline = True
            index += 1
        elif argument == "--observe":
            observe = True
            index += 1
        elif argument in options:
            if index + 1 >= len(argv):
                print(f"missing value for {argument}", file=sys.stderr)
                return 2
            options[argument] = argv[index + 1]
            index += 2
        else:
            print("usage: python -m repro serve [--host H] [--port P] "
                  "[--workers N] [--max-queue N] [--tenant-quota N] "
                  "[--inline] [--observe]", file=sys.stderr)
            return 2
    try:
        config = ServiceConfig(max_queue=int(options["--max-queue"]),
                               tenant_quota=int(options["--tenant-quota"]),
                               workers=int(options["--workers"]),
                               observe=observe)
        port = int(options["--port"])
    except ValueError as exc:
        print(f"invalid serve option: {exc}", file=sys.stderr)
        return 2
    executor = InlineExecutor() if inline else None
    service = ScenarioService(config, executor=executor)
    server = ServiceHTTPServer(service, host=options["--host"], port=port)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    print(f"repro service listening on {server.address} "
          f"({'inline' if inline else str(config.workers) + ' warm'} "
          f"worker(s), queue {config.max_queue}, quota "
          f"{config.tenant_quota}/tenant"
          f"{', federated observation on' if observe else ''})",
          flush=True)
    stop.wait()
    print("shutting down...", flush=True)
    server.stop()
    return 0


ARTIFACTS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "figure2": _figure2,
    "figure3": _figure3,
    "figure4": _figure4,
    "figure5": _figure5,
    "curriculum": _curriculum,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        print("\nAvailable artifacts:")
        for name in sorted(ARTIFACTS):
            print(f"  {name}")
        print("  all")
        print("  observe [--spec <file>]")
        print("  observe --federated [--spec <file>] [--workers N] "
              "[--seeds 1,2,3,4]")
        print("  run <spec.json> [--out <file>] [--shard-workers N]")
        print("  sweep <spec.json> [--seeds ..] [--policies ..] "
              "[--scale ..] [--workers N] [--verify-serial] [--out <file>]")
        print("  serve [--host H] [--port P] [--workers N] [--inline]")
        return 0
    name = argv[0]
    try:
        if name in ("observe", "--observe"):
            if "--federated" in argv[1:]:
                rest = [arg for arg in argv[1:] if arg != "--federated"]
                return _observe_federated(rest)
            if len(argv) >= 3 and argv[1] == "--spec":
                print(_observe_spec(argv[2]))
            else:
                print(_observe())
            return 0
        if name == "run":
            return _run_spec(argv[1:])
        if name == "sweep":
            return _sweep_spec(argv[1:])
        if name == "serve":
            return _serve(argv[1:])
    except SpecLoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except WfFormatError as exc:
        # Malformed WfFormat documents embedded in (or referenced by)
        # a spec surface exactly like other spec errors.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ShardConfigError as exc:
        # Invalid shard plans (unknown datacenter, overlapping shards,
        # zero-latency links) follow the same convention.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if name == "all":
        for artifact in sorted(ARTIFACTS):
            print(ARTIFACTS[artifact]())
            print()
        return 0
    if name not in ARTIFACTS:
        print(f"unknown artifact {name!r}; try: "
              f"{', '.join(sorted(ARTIFACTS))}, all", file=sys.stderr)
        return 2
    print(ARTIFACTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
