"""Discrete-event simulation kernel (substrate S1).

A minimal, deterministic, SimPy-style kernel: a :class:`Simulator` with a
virtual clock, generator-based :class:`Process` coroutines, composite
events, counted resources, containers, stores, seeded random streams,
and measurement monitors.  Everything else in :mod:`repro` is built on
top of this module.
"""

from .engine import Process, Simulator
from .experiment import (
    ExperimentRecipe,
    ExperimentRecord,
    ReproductionReport,
    check_reproduction,
    run_experiment,
)
from .events import AllOf, AnyOf, Event, Interrupt, SimulationError, Timeout
from .monitor import Monitor, TimeWeightedMonitor, summarize
from .resources import Container, Request, Resource, Store
from .rng import RandomStreams, substream_seed
from .sharding import (
    CompletionAck,
    RemoteSubmit,
    ShardConfigError,
    ShardedOutcome,
    ShardedScenarioRuntime,
    ShardHarness,
    run_sharded,
)

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Request",
    "Container",
    "Store",
    "Monitor",
    "TimeWeightedMonitor",
    "summarize",
    "RandomStreams",
    "substream_seed",
    "ExperimentRecipe",
    "ExperimentRecord",
    "ReproductionReport",
    "run_experiment",
    "check_reproduction",
    "ShardConfigError",
    "ShardHarness",
    "ShardedScenarioRuntime",
    "ShardedOutcome",
    "RemoteSubmit",
    "CompletionAck",
    "run_sharded",
]
