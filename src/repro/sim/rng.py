"""Seeded random-number streams for reproducible experiments.

Every stochastic component of a simulation draws from its own *named
substream* derived from a single experiment seed, so adding a new
component never perturbs the draws of existing ones — the standard
variance-reduction discipline of simulation methodology (paper §3.3,
"Experimentation and simulation").
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["RandomStreams", "substream_seed"]


def substream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for substream ``name`` of ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, reproducible named random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(substream_seed(self.seed, name))
        return self._streams[name]

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(substream_seed(self.seed, f"spawn:{name}"))

    def exponential(self, name: str, rate: float) -> Iterator[float]:
        """Infinite iterator of Exp(rate) inter-arrival samples."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        stream = self.stream(name)
        while True:
            yield stream.expovariate(rate)
