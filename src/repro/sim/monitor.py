"""Measurement instrumentation for simulations.

The paper's methodology (§3.3 "Quantitative results", P8) calls for
statistically sound observation of running ecosystems.  This module
provides the two workhorse instruments:

- :class:`Monitor` — an event-style series of (time, value) samples with
  summary statistics.
- :class:`TimeWeightedMonitor` — a piecewise-constant state variable
  (queue length, machines busy) whose statistics are weighted by how long
  each value was held.

Sampling-path note: since the streaming telemetry layer landed
(:mod:`repro.observability.streaming`), :class:`Monitor` is its gauge
sample *store* and :func:`summarize` its one statistics routine —
prefer a :class:`~repro.observability.streaming.StreamingPipeline`
watch over hand-rolled periodic sampling loops; this module remains
the storage/summary primitive underneath, not a second pipeline.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Sequence

__all__ = ["Monitor", "TimeWeightedMonitor", "summarize"]


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Basic descriptive statistics of ``values``.

    Returns count/mean/std/min/max and the 50th, 95th and 99th
    percentiles (nearest-rank).  Empty input yields NaNs with count 0.
    """
    n = len(values)
    if n == 0:
        nan = float("nan")
        return {"count": 0, "mean": nan, "std": nan, "min": nan,
                "max": nan, "p50": nan, "p95": nan, "p99": nan}
    ordered = sorted(values)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    def rank(q: float) -> float:
        return ordered[min(n - 1, max(0, math.ceil(q * n) - 1))]
    return {
        "count": n,
        "mean": mean,
        "std": math.sqrt(variance),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
    }


class Monitor:
    """Records a time-stamped series of observations."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one observation at ``time``."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"observations must be time-ordered: {time} < {self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded values (NaN if empty)."""
        return summarize(self.values)["mean"]

    def summary(self) -> dict[str, float]:
        """Descriptive statistics of the recorded values."""
        return summarize(self.values)

    def window(self, start: float, end: float) -> list[float]:
        """Values with ``start <= time < end`` (half-open, left-closed).

        Boundary samples resolve exactly — no epsilon nudging — so this
        and :meth:`window_summary` can never disagree about which side
        of a window edge a sample falls on.
        """
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return self.values[lo:hi]

    def window_summary(self, start: float, end: float) -> dict[str, float]:
        """:func:`summarize` of samples with ``start < time <= end``.

        Right-closed to match the streaming pipeline's windows, whose
        aggregate at tick time ``T`` covers ``(T - width, T]`` — the
        sample taken *at* the tick belongs to the window it ends.
        """
        lo = bisect_right(self.times, start)
        hi = bisect_right(self.times, end)
        return summarize(self.values[lo:hi])


class TimeWeightedMonitor:
    """Tracks a piecewise-constant variable and time-weighted statistics."""

    def __init__(self, name: str = "", initial: float = 0.0,
                 start_time: float = 0.0) -> None:
        self.name = name
        self._value = float(initial)
        self._last_time = float(start_time)
        self._weighted_sum = 0.0
        self._duration = 0.0
        self._max = float(initial)
        self._min = float(initial)
        self.changes: list[tuple[float, float]] = [(start_time, initial)]

    @property
    def value(self) -> float:
        """Current value of the tracked variable."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Set the variable to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(f"time moved backwards: {time} < {self._last_time}")
        dt = time - self._last_time
        self._weighted_sum += self._value * dt
        self._duration += dt
        self._last_time = time
        self._value = float(value)
        self._max = max(self._max, self._value)
        self._min = min(self._min, self._value)
        self.changes.append((time, self._value))

    def add(self, time: float, delta: float) -> None:
        """Increment the variable by ``delta`` at ``time``."""
        self.update(time, self._value + delta)

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted mean of the variable up to ``until`` (or last update)."""
        weighted = self._weighted_sum
        duration = self._duration
        if until is not None:
            if until < self._last_time:
                raise ValueError("until lies before the last update")
            extra = until - self._last_time
            weighted += self._value * extra
            duration += extra
        if duration == 0:
            return self._value
        return weighted / duration

    @property
    def maximum(self) -> float:
        """Largest value ever held."""
        return self._max

    @property
    def minimum(self) -> float:
        """Smallest value ever held."""
        return self._min
