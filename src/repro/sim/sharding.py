"""Sharded simulation: per-region event loops, conservatively coupled.

The paper's central object is the *ecosystem* — millions of users
across geo-distributed datacenters — yet a scenario used to be one
:class:`~repro.sim.engine.Simulator` on one core.  This module
partitions a multi-datacenter scenario by region into per-shard
simulators, each owning its local event loop, scheduler, and
datacenter, coupled only through explicit cross-shard messages
(federation offload and its completion acknowledgements) carried over
the declared :class:`~repro.datacenter.wide_area.WideAreaLink`
channels.

**Conservative epoch coupling.**  Shards advance in windows.  Each
epoch the coordinator reads every shard's next-event time (and every
undelivered message's delivery time), sets the window end to their
minimum plus the *lookahead* — the minimum cross-shard link latency
(:func:`~repro.datacenter.wide_area.min_lookahead`), or the plan's
tighter explicit ``epoch`` — injects the previous epoch's messages,
and lets every shard process events strictly below the window end.
The classic safety argument applies: a message sent at time *t* inside
the window delivers at ``t + latency >= window_end``, so delivering it
at the next barrier can never rewind any shard's clock.

**Deterministic message ordering.**  Every message is stamped with
``(send_time, source shard, per-shard sequence number)`` and each
destination's inbox is sorted by ``(deliver_time, src, seq)`` before
injection, so the injected event order — and therefore every digest —
is a pure function of the spec, independent of how shards are packed
onto worker processes.

**Determinism contract.**  The merged
:class:`~repro.scenario.result.ScenarioResult` and fleet telemetry of
one sharded spec are byte-identical whether the shards run in-process
(one worker) or across any number of worker processes; the golden
tests pin 1/2/8-worker configurations to one digest.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenario.result import ScenarioResult
    from ..scenario.spec import ScenarioSpec, ShardSpec

__all__ = [
    "ShardConfigError",
    "RemoteSubmit",
    "CompletionAck",
    "ShardHarness",
    "ShardedScenarioRuntime",
    "ShardedOutcome",
    "run_sharded",
]


class ShardConfigError(ValueError):
    """An invalid shard partition or coupling declaration.

    The user-facing error for everything a shard plan can get wrong —
    unknown datacenter clusters, overlapping shards, zero-latency
    links, dangling offload targets.  The CLI catches it and exits 2
    with the message, matching the
    :class:`~repro.workload.wfformat.WfFormatError` convention.
    """


# ---------------------------------------------------------------------------
# Cross-shard messages
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RemoteSubmit:
    """One task delegated across a shard boundary.

    Stamped with the sender's ``(send_time, src, seq)`` so destinations
    can order concurrent arrivals deterministically; ``deliver_time``
    is ``send_time`` plus the link latency, and the task itself travels
    as a plain-data payload (the origin's Task object never crosses the
    process boundary).
    """

    src: str
    dst: str
    seq: int
    send_time: float
    deliver_time: float
    task: dict

    def to_dict(self) -> dict:
        """Plain-data form (for the worker pipe)."""
        return {"type": "submit", "src": self.src, "dst": self.dst,
                "seq": self.seq, "send_time": self.send_time,
                "deliver_time": self.deliver_time, "task": dict(self.task)}


@dataclass(frozen=True)
class CompletionAck:
    """Notice that a delegated task finished at its destination.

    Flows back over the same link so the origin can account for its
    offloaded work (merged ``tasks_finished`` and makespan) without
    sharing any object state.
    """

    src: str
    dst: str
    seq: int
    send_time: float
    deliver_time: float
    task_name: str
    finish_time: float

    def to_dict(self) -> dict:
        """Plain-data form (for the worker pipe)."""
        return {"type": "ack", "src": self.src, "dst": self.dst,
                "seq": self.seq, "send_time": self.send_time,
                "deliver_time": self.deliver_time,
                "task_name": self.task_name,
                "finish_time": self.finish_time}


def message_from_dict(data: Mapping[str, Any]) -> "RemoteSubmit | CompletionAck":
    """Rehydrate a cross-shard message from its plain-data form."""
    kind = data["type"]
    if kind == "submit":
        return RemoteSubmit(src=data["src"], dst=data["dst"],
                            seq=data["seq"], send_time=data["send_time"],
                            deliver_time=data["deliver_time"],
                            task=dict(data["task"]))
    if kind == "ack":
        return CompletionAck(src=data["src"], dst=data["dst"],
                             seq=data["seq"], send_time=data["send_time"],
                             deliver_time=data["deliver_time"],
                             task_name=data["task_name"],
                             finish_time=data["finish_time"])
    raise ValueError(f"unknown cross-shard message type {kind!r}")


def _message_order(message: "RemoteSubmit | CompletionAck"):
    """The deterministic per-destination injection order."""
    return (message.deliver_time, message.src, message.seq)


def _task_payload(task: Any) -> dict:
    """A task's wire form: everything needed to rebuild it remotely."""
    return {
        "runtime": task.runtime,
        "cores": task.cores,
        "memory": task.memory,
        "name": task.name,
        "kind": task.kind,
        "deadline": task.deadline,
        "priority": task.priority,
        "checkpoint_interval": task.checkpoint_interval,
        "checkpoint_overhead": task.checkpoint_overhead,
        "input_files": dict(task.input_files),
        "output_files": dict(task.output_files),
    }


def _task_from_payload(payload: Mapping[str, Any], submit_time: float):
    """Rebuild a delegated task at its destination.

    The rebuilt task submits at its delivery time (it spent the link
    latency in flight) and keeps its origin name, so destination-side
    statistics stay stable however shards are packed onto workers.
    """
    from ..workload.task import Task
    return Task(runtime=payload["runtime"], cores=payload["cores"],
                memory=payload["memory"], submit_time=submit_time,
                name=payload["name"], kind=payload["kind"],
                deadline=payload["deadline"], priority=payload["priority"],
                checkpoint_interval=payload["checkpoint_interval"],
                checkpoint_overhead=payload["checkpoint_overhead"],
                input_files=dict(payload["input_files"]),
                output_files=dict(payload["output_files"]))


# ---------------------------------------------------------------------------
# One shard
# ---------------------------------------------------------------------------
class ShardHarness:
    """One region's event loop plus its cross-shard edges.

    Wraps the shard's composed
    :class:`~repro.scenario.runtime.ScenarioRuntime` with the three
    seams the coordinator drives: arrival-time offload routing (an
    :class:`~repro.datacenter.federation.OffloadGate` over the local
    datacenter diverts plain tasks into the outbox), message injection
    (delegated tasks and acknowledgements arrive as future events via
    :meth:`~repro.sim.engine.Simulator.inject`), and windowed
    advancement (:meth:`~repro.sim.engine.Simulator.advance_until`
    bounded by the epoch barrier).
    """

    def __init__(self, spec: "ScenarioSpec", shard: "ShardSpec",
                 links: Mapping[str, float], capture: bool = False) -> None:
        from ..datacenter.federation import OffloadGate
        from ..observability.observer import Observer
        from ..scenario.runtime import build_runtime
        self.name = shard.name
        self.links = dict(links)
        self.subspec = spec.shard_subspec(shard)
        self._declared = bool(self.subspec.observer
                              or self.subspec.slos is not None)
        self._capture = capture
        self._offload = shard.offload
        self._outbox: list[RemoteSubmit | CompletionAck] = []
        self._seq = 0
        self._remote_origin: dict[int, str] = {}
        self.offloads_sent = 0
        self.offloads_run = 0
        self.remote_finished = 0
        self.remote_finish_max = 0.0
        overrides: dict[str, Any] = {}
        if shard.offload is not None:
            overrides["submit_router"] = self._route
        if capture and not self._declared:
            overrides["observer"] = Observer()
        self.runtime = build_runtime(self.subspec, **overrides)
        self._gate = (OffloadGate(self.runtime.datacenter,
                                  shard.offload.threshold)
                      if shard.offload is not None else None)
        self.runtime.scheduler.on_task_complete.append(self._on_complete)
        self._bound = (self.runtime.duration
                       if self.runtime.duration is not None
                       else self.runtime.max_time)
        self._finished = False

    # -- outbound -------------------------------------------------------
    def _route(self, item: Any) -> bool:
        """Arrival-time router: divert plain tasks the gate offloads."""
        from ..workload.task import Task
        if not isinstance(item, Task) or item.dependencies:
            return False
        if not self._gate.should_offload(item):
            return False
        sim = self.runtime.sim
        target = self._offload.target
        self._seq += 1
        self.offloads_sent += 1
        self._outbox.append(RemoteSubmit(
            src=self.name, dst=target, seq=self._seq, send_time=sim.now,
            deliver_time=sim.now + self.links[target],
            task=_task_payload(item)))
        return True

    def _on_complete(self, task: Any) -> None:
        """Acknowledge delegated tasks back to their origin shard."""
        origin = self._remote_origin.pop(task.task_id, None)
        if origin is None:
            return
        sim = self.runtime.sim
        self._seq += 1
        self.offloads_run += 1
        self._outbox.append(CompletionAck(
            src=self.name, dst=origin, seq=self._seq, send_time=sim.now,
            deliver_time=sim.now + self.links[origin],
            task_name=task.name, finish_time=float(task.finish_time)))

    def drain(self) -> list["RemoteSubmit | CompletionAck"]:
        """Take (and clear) the messages produced this epoch."""
        messages = self._outbox
        self._outbox = []
        return messages

    # -- inbound --------------------------------------------------------
    def inject(self, message: "RemoteSubmit | CompletionAck") -> None:
        """Schedule a cross-shard message as a local future event."""
        sim = self.runtime.sim
        if isinstance(message, RemoteSubmit):
            sim.inject(message.deliver_time,
                       lambda _event, m=message: self._deliver_submit(m))
        else:
            sim.inject(message.deliver_time,
                       lambda _event, m=message: self._deliver_ack(m))

    def _deliver_submit(self, message: RemoteSubmit) -> None:
        task = _task_from_payload(message.task,
                                  submit_time=message.deliver_time)
        self._remote_origin[task.task_id] = message.src
        self.runtime.scheduler.submit(task)

    def _deliver_ack(self, message: CompletionAck) -> None:
        self.remote_finished += 1
        if message.finish_time > self.remote_finish_max:
            self.remote_finish_max = message.finish_time

    # -- advancement ----------------------------------------------------
    def peek(self) -> float:
        """The shard's next local event time (``inf`` when drained)."""
        return self.runtime.sim.peek()

    def advance(self, stop: float) -> int:
        """Process local events strictly before the window end."""
        engine = self.runtime.engine
        before = engine.pipeline.advance if engine is not None else None
        return self.runtime.sim.advance_until(stop, bound=self._bound,
                                              before_step=before)

    # -- completion -----------------------------------------------------
    def finish(self) -> dict:
        """Settle the run and compile the shard's wire payload.

        Replicates the tail of
        :meth:`~repro.scenario.runtime.ScenarioRuntime.drive` (the
        duration clock jump and final telemetry advance), finalizes,
        and returns the result JSON, optional telemetry snapshot JSON
        (run id ``shard-<name>``), and the cross-shard accounting the
        merge needs — all plain data, safe to ship over a pipe.
        """
        if self._finished:
            raise RuntimeError(f"shard {self.name!r} was already finished")
        self._finished = True
        runtime = self.runtime
        sim = runtime.sim
        runtime._driven = True
        if runtime.duration is not None and sim.now < runtime.duration:
            sim.run(until=runtime.duration)
        if runtime.engine is not None:
            runtime.engine.pipeline.advance(sim.now)
        runtime.finalize()
        observer = runtime.observer
        if not self._declared:
            # An undeclared capture observer must not leak into the
            # result bytes (mirrors sweep.run_spec_observed).
            runtime.observer = None
        result = runtime.result()
        telemetry = None
        if observer is not None:
            observer.detach()
            if self._capture:
                from ..observability.federation import TelemetrySnapshot
                telemetry = TelemetrySnapshot.capture(
                    observer, run_id=f"shard-{self.name}",
                    fingerprint=self.subspec.fingerprint(),
                    seed=self.subspec.seed).to_json()
        return {
            "result": result.to_json(),
            "telemetry": telemetry,
            "extras": {
                "offloads_sent": self.offloads_sent,
                "offloads_run": self.offloads_run,
                "remote_finished": self.remote_finished,
                "remote_finish_max": self.remote_finish_max,
                "total_cores": runtime.datacenter.total_cores,
            },
        }


def _peer_links(plan: Any, name: str) -> dict[str, float]:
    """The one-way latencies from shard ``name`` to each linked peer."""
    links: dict[str, float] = {}
    for link in plan.links:
        if link.src == name:
            links[link.dst] = link.latency
        elif link.dst == name:
            links[link.src] = link.latency
    return links


# ---------------------------------------------------------------------------
# The epoch coordinator
# ---------------------------------------------------------------------------
def _route_messages(outbound: Iterable["RemoteSubmit | CompletionAck"],
                    ) -> dict[str, list]:
    """Group messages by destination in deterministic injection order."""
    by_dst: dict[str, list] = {}
    for message in outbound:
        by_dst.setdefault(message.dst, []).append(message)
    for messages in by_dst.values():
        messages.sort(key=_message_order)
    return by_dst


def _drive_epochs(shard_set: Any, *, bound: float, lookahead: float) -> int:
    """Run the conservative epoch loop over a shard set.

    Each iteration: compute every shard's *effective* horizon (its next
    local event, or an earlier undelivered message), stop when nothing
    remains at or below ``bound``, otherwise open a window of
    ``lookahead`` past the global minimum, deliver the pending batch,
    advance every shard to the barrier, and collect the next batch.
    Returns the number of epochs (windows) executed — part of the
    coupling record, so worker counts can be checked against it.
    """
    pending: dict[str, list] = {}
    peeks = shard_set.peeks()
    epochs = 0
    while True:
        effective = dict(peeks)
        for dst, messages in pending.items():
            horizon = min(m.deliver_time for m in messages)
            if horizon < effective.get(dst, float("inf")):
                effective[dst] = horizon
        floor = min(effective.values(), default=float("inf"))
        if floor > bound:
            break
        outbound, peeks = shard_set.run_epoch(floor + lookahead, pending)
        pending = _route_messages(outbound)
        epochs += 1
    return epochs


class _InProcessShards:
    """Every shard harness in the calling process (the 1-worker set)."""

    def __init__(self, spec: "ScenarioSpec", capture: bool = False) -> None:
        plan = spec.shards
        self.order = [shard.name for shard in plan.shards]
        self.harnesses = {
            shard.name: ShardHarness(spec, shard,
                                     _peer_links(plan, shard.name),
                                     capture=capture)
            for shard in plan.shards
        }

    def peeks(self) -> dict[str, float]:
        return {name: self.harnesses[name].peek() for name in self.order}

    def run_epoch(self, window: float, inbound: Mapping[str, list],
                  ) -> tuple[list, dict[str, float]]:
        for name in self.order:
            for message in inbound.get(name, ()):
                self.harnesses[name].inject(message)
        for name in self.order:
            self.harnesses[name].advance(window)
        outbound: list = []
        peeks: dict[str, float] = {}
        for name in self.order:
            outbound.extend(self.harnesses[name].drain())
            peeks[name] = self.harnesses[name].peek()
        return outbound, peeks

    def finish(self) -> dict[str, dict]:
        return {name: self.harnesses[name].finish() for name in self.order}

    def close(self) -> None:
        pass


def _shard_worker(conn: Any, spec_json: str, names: Sequence[str],
                  capture: bool) -> None:
    """Worker-process loop owning a subset of the shards.

    Speaks a tiny command protocol over the pipe — ``("peeks",)``,
    ``("epoch", window, inbound)``, ``("finish",)``, ``("close",)`` —
    replying ``("ok", payload)`` or ``("error", message)``.  Messages
    cross the pipe in plain-data form only.
    """
    from ..scenario.spec import ScenarioSpec
    spec = ScenarioSpec.from_json(spec_json)
    plan = spec.shards
    by_name = {shard.name: shard for shard in plan.shards}
    harnesses = {
        name: ShardHarness(spec, by_name[name], _peer_links(plan, name),
                           capture=capture)
        for name in names
    }
    while True:
        command = conn.recv()
        kind = command[0]
        try:
            if kind == "peeks":
                reply: Any = {name: harnesses[name].peek()
                              for name in names}
            elif kind == "epoch":
                _, window, inbound = command
                for name in names:
                    for data in inbound.get(name, ()):
                        harnesses[name].inject(message_from_dict(data))
                for name in names:
                    harnesses[name].advance(window)
                outbound = []
                peeks = {}
                for name in names:
                    outbound.extend(m.to_dict()
                                    for m in harnesses[name].drain())
                    peeks[name] = harnesses[name].peek()
                reply = (outbound, peeks)
            elif kind == "finish":
                reply = {name: harnesses[name].finish() for name in names}
            elif kind == "close":
                conn.close()
                return
            else:
                raise ValueError(f"unknown shard command {kind!r}")
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            raise
        conn.send(("ok", reply))


class _WorkerShards:
    """Shards packed round-robin onto long-lived worker processes.

    Shard *i* (in plan declaration order) lives on worker ``i % n`` for
    the whole run, so per-shard state persists across epochs; every
    epoch is one synchronous command round-trip per worker.
    """

    def __init__(self, spec: "ScenarioSpec", workers: int,
                 capture: bool = False) -> None:
        plan = spec.shards
        self.order = [shard.name for shard in plan.shards]
        spec_json = spec.to_json()
        self._assignments = [self.order[index::workers]
                             for index in range(workers)]
        self._conns = []
        self._procs = []
        for assigned in self._assignments:
            parent_conn, child_conn = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_shard_worker,
                args=(child_conn, spec_json, assigned, capture),
                daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _round_trip(self, command: tuple) -> list:
        for conn in self._conns:
            conn.send(command)
        replies = []
        for conn, assigned in zip(self._conns, self._assignments):
            status, payload = conn.recv()
            if status != "ok":
                raise RuntimeError(
                    f"shard worker for {assigned} failed: {payload}")
            replies.append(payload)
        return replies

    def peeks(self) -> dict[str, float]:
        peeks: dict[str, float] = {}
        for reply in self._round_trip(("peeks",)):
            peeks.update(reply)
        return peeks

    def run_epoch(self, window: float, inbound: Mapping[str, list],
                  ) -> tuple[list, dict[str, float]]:
        for conn, assigned in zip(self._conns, self._assignments):
            batch = {name: [m.to_dict() for m in inbound[name]]
                     for name in assigned if name in inbound}
            conn.send(("epoch", window, batch))
        outbound: list = []
        peeks: dict[str, float] = {}
        for conn, assigned in zip(self._conns, self._assignments):
            status, payload = conn.recv()
            if status != "ok":
                raise RuntimeError(
                    f"shard worker for {assigned} failed: {payload}")
            sent, worker_peeks = payload
            outbound.extend(message_from_dict(data) for data in sent)
            peeks.update(worker_peeks)
        return outbound, peeks

    def finish(self) -> dict[str, dict]:
        payloads: dict[str, dict] = {}
        for reply in self._round_trip(("finish",)):
            payloads.update(reply)
        return payloads

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive teardown
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            conn.close()


# ---------------------------------------------------------------------------
# Result merge
# ---------------------------------------------------------------------------
def _merge_payloads(spec: "ScenarioSpec", order: Sequence[str],
                    payloads: Mapping[str, dict], *, epochs: int,
                    lookahead: float,
                    ) -> tuple["ScenarioResult", dict | None]:
    """Fold per-shard payloads into the scenario-level outcome.

    Counters and energies sum; clocks and makespans take maxima
    (including delegated tasks finishing remotely, via the
    acknowledgement stream); mean utilization is weighted by shard
    capacity; per-shard results nest in full under ``shards.by_shard``
    so nothing is lost in the roll-up.  Telemetry snapshots, when
    captured, fold through the standard
    :class:`~repro.observability.federation.TelemetryMerge` into one
    ``telemetry-fleet/v1`` view.  Everything is a pure function of the
    payload set — the worker count leaves no trace.
    """
    from ..observability.federation import TelemetryMerge
    from ..scenario.result import ScenarioResult
    results = {name: ScenarioResult.from_json(payloads[name]["result"])
               for name in order}
    extras = {name: payloads[name]["extras"] for name in order}
    remote_finished = sum(e["remote_finished"] for e in extras.values())
    makespans = [results[name].makespan for name in order]
    makespans.extend(e["remote_finish_max"] for e in extras.values()
                     if e["remote_finished"])
    total_cores = sum(e["total_cores"] for e in extras.values())
    datacenter_view: dict[str, float] = {
        "mean_utilization": (
            sum(results[n].datacenter["mean_utilization"]
                * extras[n]["total_cores"] for n in order) / total_cores
            if total_cores else 0.0),
        "energy_joules": sum(results[n].datacenter["energy_joules"]
                             for n in order),
        "failed_executions": sum(
            results[n].datacenter["failed_executions"] for n in order),
        "wasted_core_seconds": sum(
            results[n].datacenter["wasted_core_seconds"] for n in order),
        "preserved_core_seconds": sum(
            results[n].datacenter["preserved_core_seconds"] for n in order),
    }
    data_keys = ("data_transfer_seconds", "data_transfer_bytes",
                 "data_local_bytes")
    if any(key in results[n].datacenter for n in order for key in data_keys):
        for key in data_keys:
            datacenter_view[key] = sum(
                results[n].datacenter.get(key, 0.0) for n in order)
    shards_section = {
        "coupling": {
            "lookahead": (None if lookahead == float("inf")
                          else lookahead),
            "epochs": epochs,
            "offloaded": sum(e["offloads_sent"] for e in extras.values()),
            "acked": sum(e["offloads_run"] for e in extras.values()),
        },
        "by_shard": {
            name: {
                "result": results[name].to_dict(),
                "offloads_sent": extras[name]["offloads_sent"],
                "offloads_run": extras[name]["offloads_run"],
                "remote_finished": extras[name]["remote_finished"],
                "remote_finish_max": extras[name]["remote_finish_max"],
            }
            for name in order
        },
    }
    merged = ScenarioResult(
        name=spec.name,
        seed=spec.seed,
        fingerprint=spec.fingerprint(),
        sim_time=max(results[name].sim_time for name in order),
        events_processed=sum(results[name].events_processed
                             for name in order),
        makespan=max(makespans),
        tasks_total=sum(results[name].tasks_total for name in order),
        tasks_finished=(sum(results[name].tasks_finished for name in order)
                        + remote_finished),
        datacenter=datacenter_view,
        shards=shards_section,
    )
    snapshots = [payloads[name]["telemetry"] for name in order
                 if payloads[name]["telemetry"] is not None]
    fleet = None
    if snapshots:
        merge = TelemetryMerge()
        for snapshot in snapshots:
            merge.add_json(snapshot)
        fleet = merge.fleet()
    return merged, fleet


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
class ShardedScenarioRuntime:
    """The sharded counterpart of a composed scenario runtime.

    What :meth:`ScenarioSpec.build` returns for a spec with a
    ``shards`` section: every shard harness composed in-process, driven
    through the conservative epoch loop by :meth:`execute`.  Mirrors
    the single-loop runtime's surface where it matters (``tasks``,
    :meth:`finalize`, :meth:`execute`), so spec tooling works on both.
    """

    def __init__(self, spec: "ScenarioSpec", capture: bool | None = None,
                 ) -> None:
        if spec.shards is None:
            raise ShardConfigError(
                f"scenario {spec.name!r} declares no shards")
        self.spec = spec
        declared = bool(spec.observer or spec.slos is not None)
        self.capture = declared if capture is None else capture
        self.lookahead = spec.shards.lookahead()
        self.epochs = 0
        self.telemetry: dict | None = None
        self._bound = (spec.duration if spec.duration is not None
                       else spec.max_time)
        self._set = _InProcessShards(spec, capture=self.capture)
        self._driven = False
        self._result: "ScenarioResult | None" = None

    @property
    def harnesses(self) -> dict[str, ShardHarness]:
        """The live per-shard harnesses, by shard name."""
        return self._set.harnesses

    @property
    def tasks(self) -> list:
        """Every locally generated task, in shard declaration order."""
        return [task for name in self._set.order
                for task in self._set.harnesses[name].runtime.tasks]

    def drive(self) -> None:
        """Run the conservative epoch loop to completion."""
        if self._driven:
            raise RuntimeError("this sharded runtime was already driven; "
                               "build a fresh one per run")
        self._driven = True
        self.epochs = _drive_epochs(self._set, bound=self._bound,
                                    lookahead=self.lookahead)

    def finalize(self) -> None:
        """Stop every shard's periodic processes (idempotent)."""
        for name in self._set.order:
            self._set.harnesses[name].runtime.finalize()

    def result(self) -> "ScenarioResult":
        """The merged result (available after :meth:`execute`)."""
        if self._result is None:
            raise RuntimeError("execute() the sharded runtime first")
        return self._result

    def execute(self) -> "ScenarioResult":
        """Drive, settle every shard, and merge the fleet outcome."""
        self.drive()
        payloads = self._set.finish()
        self._result, self.telemetry = _merge_payloads(
            self.spec, self._set.order, payloads, epochs=self.epochs,
            lookahead=self.lookahead)
        return self._result


@dataclass(frozen=True)
class ShardedOutcome:
    """What one sharded run produced: merged result + fleet telemetry."""

    result: "ScenarioResult"
    telemetry: dict | None
    epochs: int
    workers: int


def run_sharded(spec: "ScenarioSpec", *, workers: int = 1,
                observe: bool = False) -> ShardedOutcome:
    """Execute a sharded spec across ``workers`` processes.

    ``workers=1`` runs every shard in-process; more workers pack shards
    round-robin onto long-lived processes (capped at the shard count —
    extra workers would idle).  ``observe=True`` captures per-shard
    telemetry even when the spec declares no observer.  The merged
    result and telemetry are byte-identical for every worker count:
    that is the module's determinism contract, and what the goldens
    pin.
    """
    plan = spec.shards
    if plan is None:
        raise ShardConfigError(
            f"scenario {spec.name!r} declares no shards; add a 'shards' "
            f"section (see docs/SCENARIOS.md)")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    declared = bool(spec.observer or spec.slos is not None)
    capture = bool(observe or declared)
    workers = min(workers, len(plan.shards))
    if workers == 1:
        runtime = ShardedScenarioRuntime(spec, capture=capture)
        result = runtime.execute()
        return ShardedOutcome(result=result, telemetry=runtime.telemetry,
                              epochs=runtime.epochs, workers=1)
    bound = spec.duration if spec.duration is not None else spec.max_time
    lookahead = plan.lookahead()
    order = [shard.name for shard in plan.shards]
    shard_set = _WorkerShards(spec, workers, capture=capture)
    try:
        epochs = _drive_epochs(shard_set, bound=bound, lookahead=lookahead)
        payloads = shard_set.finish()
    finally:
        shard_set.close()
    result, fleet = _merge_payloads(spec, order, payloads, epochs=epochs,
                                    lookahead=lookahead)
    return ShardedOutcome(result=result, telemetry=fleet, epochs=epochs,
                          workers=workers)
