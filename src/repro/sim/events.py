"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-driven design used by datacenter
simulators such as OpenDC and CloudSim: a simulator owns a time-ordered
event queue, and *processes* (Python generators) advance by yielding
events they want to wait for.  Events are one-shot: they are *triggered*
exactly once, either successfully (carrying a value) or with a failure
(carrying an exception), after which all registered callbacks run at the
event's scheduled time.

Performance notes: events are the kernel's unit of allocation — a
million-task simulation creates tens of millions of them — so the
classes here are deliberately lean.  All event types use ``__slots__``
(no per-instance ``__dict__``), and the callback store is *lazy*: it
starts as a shared empty-tuple sentinel, holds a bare callable while
exactly one callback is registered (the overwhelmingly common case of a
single waiting process), and only becomes a real list for two or more
callbacks.  ``Event.callbacks`` is still ``None`` once the event has
been processed, which external code may rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]

#: Shared sentinel marking "triggered or pending, no callbacks yet".
#: Distinct from ``None``, which marks "already processed".
NO_CALLBACKS: tuple = ()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.engine.Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event has three observable states: *pending* (created, not yet
    triggered), *triggered* (scheduled onto the event queue), and
    *processed* (its callbacks have run).  Use :meth:`succeed` or
    :meth:`fail` to trigger it.

    The ``callbacks`` attribute is ``None`` once processed; before that
    it is the sentinel ``NO_CALLBACKS``, a single bare callable, or a
    list of callables.  Use :meth:`add_callback` rather than touching
    it directly.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_ok",
                 "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Any = NO_CALLBACKS
        self._value: Any = None
        self._exception: BaseException | None = None
        self._ok: bool | None = None
        #: Set by the simulator once a failure was delivered to a waiter,
        #: so unhandled failures can be reported at the end of the run.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled for processing."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event carries (or the exception if it failed)."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._exception if self._exception is not None else self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, carrying ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed, carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._exception = exception
        self.sim._enqueue(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event was already processed the callback runs immediately,
        which keeps late waiters correct.
        """
        cbs = self.callbacks
        if cbs is None:
            callback(self)
        elif cbs is NO_CALLBACKS:
            self.callbacks = callback
        elif type(cbs) is list:
            cbs.append(callback)
        else:
            self.callbacks = [cbs, callback]

    def _run_callbacks(self) -> None:
        """Deliver the event: run the stored callbacks and mark processed."""
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks is not NO_CALLBACKS:
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` sim-time units."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ plus immediate triggering: timeouts are
        # the hot path of every process loop, so they skip the generic
        # succeed() machinery entirely.
        self.sim = sim
        self.callbacks = NO_CALLBACKS
        self._value = value
        self._exception = None
        self._ok = True
        self.defused = False
        self.delay = delay
        sim._enqueue(self, delay=delay)


class _Condition(Event):
    """Base class for composite events over a set of child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once all child events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
