"""The discrete-event simulator and its process model.

A :class:`Simulator` owns the virtual clock and a priority queue of
triggered events.  A :class:`Process` wraps a Python generator; every
value the generator yields must be an :class:`~repro.sim.events.Event`,
and the process resumes when that event is processed.  This is the same
cooperative model used by SimPy and by datacenter simulators built on it.

Determinism: two events scheduled for the same time are processed in the
order they were scheduled (FIFO tie-breaking via a monotonically
increasing sequence number), so runs are exactly reproducible given the
same seed.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Generator, Iterable, Optional

from .events import (NO_CALLBACKS, AllOf, AnyOf, Event, Interrupt,
                     SimulationError, Timeout)

__all__ = ["Simulator", "Process"]

#: Type alias for the generators that drive processes.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that triggers when the process ends.

    The wrapped generator yields events; the process is resumed with the
    event's value (or the event's exception is thrown into it).  When the
    generator returns, the process event succeeds with the return value;
    when it raises, the process event fails with the exception.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str | None = None) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Kick the process off via an immediately-succeeding event.
        starter = Event(sim)
        starter.add_callback(self._resume)
        starter.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process twice before it resumes queues both interrupts.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has already finished")
        event = Event(self.sim)
        event._ok = False
        event._exception = Interrupt(cause)
        event.defused = True
        event.add_callback(self._resume)
        self.sim._enqueue(event, delay=0.0)

    def _resume(self, event: Event) -> None:
        self.sim._active_process = self
        try:
            if event.ok:
                next_event = self._generator.send(event.value)
            else:
                event.defused = True
                next_event = self._generator.throw(event.value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._finish_fail(exc)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {next_event!r}, "
                "which is not an Event")
            self._generator.close()
            self._finish_fail(error)
            return
        self._target = next_event
        next_event.add_callback(self._resume)

    def _finish_ok(self, value: Any) -> None:
        self._target = None
        if self._ok is None:
            self.succeed(value)

    def _finish_fail(self, exc: BaseException) -> None:
        self._target = None
        if self._ok is None:
            self.fail(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()

        def producer(sim):
            for i in range(3):
                yield sim.timeout(1.0)

        sim.process(producer(sim))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Process | None = None
        #: Count of events processed so far; useful for budget guards.
        self.events_processed = 0
        #: Optional :class:`~repro.observability.observer.Observer`.
        #: ``None`` (the default) keeps every instrumented code path —
        #: including the hot event loop, which dispatches on this once
        #: per ``run()`` call — at its uninstrumented cost.
        self.observer: Any = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new process driven by ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def every(self, interval: float, fn, until: float | None = None,
              name: str = "tick") -> Process:
        """Run ``fn(now)`` at ``now + k * interval`` for ``k = 1, 2, ...``.

        The canonical driver for sim-time-scheduled evaluation ticks
        (streaming telemetry, SLO checks, periodic samplers).  ``fn``
        must be a plain callable — it runs synchronously inside the
        tick event, so it may read state and schedule work but cannot
        itself consume simulated time.  ``until`` bounds the process:
        no tick is scheduled past it, so a periodic observer cannot
        keep an otherwise-drained simulation alive.  Returns the tick
        :class:`Process` (interrupt it to cancel early).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")

        def _ticks():
            while until is None or self._now + interval <= until + 1e-9:
                yield self.timeout(interval)
                fn(self._now)

        return self.process(_ticks(), name=name)

    # ------------------------------------------------------------------
    # Scheduling and the main loop
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        observer = self.observer
        if observer is not None and observer.profiler is not None:
            event = self._step_profiled(observer.profiler)
        else:
            self._now, _, event = heapq.heappop(self._queue)
            event._run_callbacks()
        self.events_processed += 1
        if event._ok is False and not event.defused:
            # A failure nobody waited for must not pass silently.
            raise event._exception  # type: ignore[misc]

    def _step_profiled(self, profiler) -> Event:
        """Pop and deliver one event, attributing its cost per subsystem.

        The virtual-time advance is charged to the subsystem of the
        event that moved the clock; each callback's wall time is
        charged to the subsystem of the process it resumes (falling
        back to the event's own name, then to the kernel).
        """
        previous = self._now
        self._now, _, event = heapq.heappop(self._queue)
        sim_dt = self._now - previous
        event_label = getattr(event, "name", "") or ""
        callbacks = event.callbacks
        event.callbacks = None
        primary: str | None = None
        if callbacks is not NO_CALLBACKS:
            if type(callbacks) is not list:
                callbacks = (callbacks,)
            for callback in callbacks:
                owner = getattr(callback, "__self__", None)
                label = getattr(owner, "name", None) or event_label
                subsystem = profiler.classify(label)
                if primary is None:
                    primary = subsystem
                started = perf_counter()
                callback(event)
                profiler.record(subsystem, wall_dt=perf_counter() - started)
        if primary is None:
            primary = profiler.classify(event_label)
        profiler.record(primary, sim_dt=sim_dt, events=1)
        return event

    def advance_until(self, stop: float, bound: float | None = None,
                      before_step: Any = None) -> int:
        """Process events strictly before ``stop`` (the shard run loop).

        The conservative-coupling window: every event with time in
        ``[now, stop)`` — and, when ``bound`` is given, at most
        ``bound`` — is processed via :meth:`step`, so observer and
        profiler semantics match a plain drive loop exactly.  The
        strict upper edge is what makes epoch windows composable:
        a message delivered *at* ``stop`` belongs to the next window
        on every shard, regardless of how the windows were cut.

        Args:
            stop: Exclusive upper edge of the window (``inf`` runs to
                exhaustion).
            bound: Optional inclusive cap (a scenario's ``duration`` /
                ``max_time``); events past it stay queued.
            before_step: Optional ``fn(event_time)`` called before each
                step — the seam external telemetry drivers (streaming
                SLO pipelines) use to advance with the clock.

        Returns:
            The number of events processed.
        """
        queue = self._queue
        processed = 0
        while queue:
            when = queue[0][0]
            if when >= stop or (bound is not None and when > bound):
                break
            if before_step is not None:
                before_step(when)
            self.step()
            processed += 1
        return processed

    def inject(self, when: float, fn: Any) -> Timeout:
        """Schedule ``fn(event)`` at absolute time ``when``.

        The cross-shard injection seam: a coupling layer delivers a
        message generated on another shard by scheduling a callback at
        the message's deliver time.  Injection uses the ordinary event
        queue (a :class:`Timeout` relative to ``now``), so injected
        deliveries interleave with local events under the same FIFO
        tie-breaking rule that makes runs reproducible.

        Args:
            when: Absolute simulated time of delivery; must not lie in
                the past.
            fn: Callback invoked with the delivery event.

        Returns:
            The scheduled delivery event.
        """
        delay = when - self._now
        if delay < 0:
            raise ValueError(
                f"cannot inject at {when} (now={self._now}); conservative "
                f"coupling must deliver messages in the future")
        timeout = self.timeout(delay)
        timeout.add_callback(fn)
        return timeout

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, until a time, or until an event.

        ``until`` may be ``None`` (run to exhaustion), a number (run up to
        and including that time), or an :class:`Event` (run until it is
        processed, returning its value).
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})")

        observer = self.observer
        if observer is not None and observer.profiler is not None:
            return self._run_profiled(stop_event, stop_time,
                                      observer.profiler)

        # Hot loop: equivalent to repeated step() calls, with the heap,
        # the heappop function, and the callback sentinel held in locals
        # so the per-event cost is a handful of bytecode ops.
        queue = self._queue
        heappop = heapq.heappop
        no_callbacks = NO_CALLBACKS
        processed = 0
        try:
            while queue:
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                self._now, _, event = heappop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks is not no_callbacks:
                    if type(callbacks) is list:
                        for callback in callbacks:
                            callback(event)
                    else:
                        callbacks(event)
                processed += 1
                if event._ok is False and not event.defused:
                    # A failure nobody waited for must not pass silently.
                    raise event._exception  # type: ignore[misc]
                if stop_event is not None and stop_event.callbacks is None:
                    if not stop_event.ok:
                        raise stop_event.value
                    return stop_event.value
        finally:
            self.events_processed += processed

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def _run_profiled(self, stop_event: Event | None, stop_time: float,
                      profiler) -> Any:
        """The ``run()`` loop with per-subsystem cost attribution.

        Semantically identical to the fast loop (same event order, same
        stop conditions, same failure propagation); it only adds the
        profiler's book-keeping, so runs with and without an observer
        produce bit-identical simulation outcomes.
        """
        queue = self._queue
        processed = 0
        run_started = perf_counter()
        try:
            while queue:
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                event = self._step_profiled(profiler)
                processed += 1
                if event._ok is False and not event.defused:
                    # A failure nobody waited for must not pass silently.
                    raise event._exception  # type: ignore[misc]
                if stop_event is not None and stop_event.callbacks is None:
                    if not stop_event.ok:
                        raise stop_event.value
                    return stop_event.value
        finally:
            self.events_processed += processed
            profiler.record_run_wall(perf_counter() - run_started)

        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
