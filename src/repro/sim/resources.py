"""Shared-resource primitives built on the event kernel.

Three classic abstractions:

- :class:`Resource` — a counted semaphore with FIFO queueing (machines,
  servers, slots).
- :class:`Container` — a continuous quantity that can be put into and
  taken from (energy budgets, memory pools).
- :class:`Store` — a FIFO queue of Python objects (task queues,
  mailboxes).

All waiters are served in FIFO order, which keeps simulations
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from .events import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

__all__ = ["Resource", "Request", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`; succeeds when granted.

    Supports use as a context manager so the common pattern reads::

        with resource.request() as req:
            yield req
            yield sim.timeout(service_time)
    """

    __slots__ = ("resource", "_granted")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self._granted = False

    def release(self) -> None:
        """Give the claimed unit back (idempotent)."""
        if self._granted:
            self._granted = False
            self.resource._release_one()
        else:
            self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """A counted, FIFO-queued resource with ``capacity`` units."""

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one unit; the returned event succeeds when granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        req._granted = True
        req.succeed(req)

    def _release_one(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without a matching grant")
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def _cancel(self, req: Request) -> None:
        try:
            self._waiting.remove(req)
        except ValueError:
            pass


class Container:
    """A continuous quantity with blocking ``get`` and non-blocking ``put``."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf"),
                 initial: float = 0.0) -> None:
        if initial < 0 or initial > capacity:
            raise ValueError("initial level must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(initial)
        self._getters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount``; raises if the container would overflow."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        if self._level + amount > self.capacity + 1e-12:
            raise SimulationError("container overflow")
        self._level += amount
        self._serve_getters()

    def get(self, amount: float) -> Event:
        """Event that succeeds once ``amount`` could be removed."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._serve_getters()
        return event

    def _serve_getters(self) -> None:
        while self._getters and self._getters[0][1] <= self._level + 1e-12:
            event, amount = self._getters.popleft()
            self._level -= amount
            event.succeed(amount)


class Store:
    """An unbounded (or bounded) FIFO queue of arbitrary items."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    @property
    def items(self) -> list[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; raises if the store is full."""
        if len(self._items) >= self.capacity:
            raise SimulationError("store is full")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item once one is available."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
