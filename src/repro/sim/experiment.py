"""Reproducibility recipes for simulation experiments (C16, P8).

"Reproducing arbitrary experiments, to test claims or to compare with
previous approaches, is non-trivial.  Many factors influence
experiments ... including but not limited to the workload, the
environment, and metrics."

An :class:`ExperimentRecipe` pins everything a rerun needs — name,
seed, parameters, and which metrics to report; :func:`run_experiment`
executes a recipe and captures a :class:`ExperimentRecord`;
:func:`check_reproduction` re-runs a record's recipe and compares
metric-by-metric — the mechanical core of publishing reproducible
results (P8 step (i): "reproducibility as essential service").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["ExperimentRecipe", "ExperimentRecord", "run_experiment",
           "check_reproduction", "ReproductionReport"]

#: An experiment is a callable from (seed, parameters) to metrics.
ExperimentFn = Callable[[int, Mapping[str, Any]], Mapping[str, float]]


@dataclass(frozen=True)
class ExperimentRecipe:
    """Everything needed to re-run an experiment."""

    name: str
    seed: int
    parameters: Mapping[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """A stable digest of the recipe (for artifact registries)."""
        body = json.dumps({"name": self.name, "seed": self.seed,
                           "parameters": dict(self.parameters)},
                          sort_keys=True, default=str)
        return hashlib.sha256(body.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ExperimentRecord:
    """A recipe plus the metrics one execution produced."""

    recipe: ExperimentRecipe
    metrics: Mapping[str, float]


@dataclass(frozen=True)
class ReproductionReport:
    """Outcome of re-running a record's recipe."""

    matched: dict[str, bool]
    original: Mapping[str, float]
    reproduced: Mapping[str, float]

    @property
    def reproducible(self) -> bool:
        """Whether every metric matched within tolerance."""
        return bool(self.matched) and all(self.matched.values())

    def mismatches(self) -> list[str]:
        """Metric names that failed to reproduce."""
        return sorted(name for name, ok in self.matched.items() if not ok)


def run_experiment(experiment: ExperimentFn,
                   recipe: ExperimentRecipe) -> ExperimentRecord:
    """Execute a recipe and capture the record."""
    metrics = dict(experiment(recipe.seed, recipe.parameters))
    for name, value in metrics.items():
        if not isinstance(value, (int, float)):
            raise TypeError(f"metric {name!r} is not numeric: {value!r}")
    return ExperimentRecord(recipe=recipe, metrics=metrics)


def check_reproduction(experiment: ExperimentFn,
                       record: ExperimentRecord,
                       relative_tolerance: float = 1e-9,
                       ) -> ReproductionReport:
    """Re-run a record's recipe and compare every metric.

    A deterministic simulation must reproduce exactly; a stochastic
    one reproduces given the pinned seed.  Divergence means the code,
    environment, or an unpinned factor changed — precisely what C16
    wants surfaced.
    """
    if relative_tolerance < 0:
        raise ValueError("relative_tolerance must be non-negative")
    rerun = run_experiment(experiment, record.recipe)
    matched = {}
    for name, original in record.metrics.items():
        reproduced = rerun.metrics.get(name)
        if reproduced is None:
            matched[name] = False
            continue
        scale = max(abs(original), abs(reproduced), 1e-12)
        matched[name] = (abs(original - reproduced) / scale
                         <= relative_tolerance)
    for name in rerun.metrics:
        if name not in record.metrics:
            matched[name] = False  # new metric appeared: not a reproduction
    return ReproductionReport(matched=matched, original=dict(record.metrics),
                              reproduced=dict(rerun.metrics))
