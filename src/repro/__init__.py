"""repro: a reproduction of "Massivizing Computer Systems" (ICDCS 2018).

An ecosystem-simulation library implementing the vision paper's
conceptual artifacts as executable systems: a discrete-event simulation
kernel, the §2.1 ecosystem model with first-class NFRs, an OpenDC-style
datacenter substrate with dual-problem scheduling, autoscaling with
SPEC elasticity metrics, correlated-failure models, the Figure 1-5
reference architectures (big data, technology lineage, datacenter,
gaming, FaaS), Graphalytics-style graph processing, the PSD2 banking
scenario, Ecosystem Navigation, the §3.5 problem-solving toolbox, and
the §3.2 evolution dynamics.

Subpackages are imported explicitly (``import repro.datacenter``); the
top level re-exports only the ecosystem core, which every scenario
shares.
"""

from .core import (
    SLA,
    SLO,
    CollectiveFunction,
    Direction,
    Ecosystem,
    NFRKind,
    Requirement,
    System,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "System",
    "Ecosystem",
    "CollectiveFunction",
    "NFRKind",
    "Direction",
    "Requirement",
    "SLO",
    "SLA",
    "__version__",
]
