"""Social meta-gaming: implicit social ties and toxicity (Figure 4).

Two of the paper's own research lines become executable here:

- *Implicit social networks* ([82], [48], C5): players who repeatedly
  play matches together form ties; :func:`implicit_social_network`
  extracts the weighted tie graph from co-play records, and community
  detection (CDLP from the Graphalytics suite) reveals the "collective
  patterns of usage" C5 wants to exploit.
- *Toxicity detection* ([35], P9): a lexicon-based message classifier
  with per-player toxicity scores — the "emergent (anti-)social
  behavior" DevOps teams must detect early and steer (C5, P9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..graphproc.algorithms import cdlp
from ..graphproc.graph import Graph

__all__ = ["Match", "implicit_social_network", "tie_strength",
           "social_communities", "ChatMessage", "ToxicityDetector"]


@dataclass(frozen=True)
class Match:
    """One played match: the players who shared it."""

    match_id: int
    players: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.players) < 1:
            raise ValueError("a match needs at least one player")
        if len(set(self.players)) != len(self.players):
            raise ValueError("duplicate players in a match")


def implicit_social_network(matches: Sequence[Match],
                            min_coplays: int = 2) -> Graph:
    """The implicit tie graph: players linked by repeated co-play [82].

    An edge appears between two players who shared at least
    ``min_coplays`` matches; its weight is the co-play count.  Vertices
    are dense integer ids in first-appearance order; use
    :func:`player_index` semantics via the returned graph's metadata.
    """
    if min_coplays < 1:
        raise ValueError("min_coplays must be >= 1")
    coplays: dict[tuple[str, str], int] = {}
    players: dict[str, int] = {}
    for match in matches:
        for player in match.players:
            players.setdefault(player, len(players))
        roster = sorted(set(match.players))
        for i, a in enumerate(roster):
            for b in roster[i + 1:]:
                coplays[(a, b)] = coplays.get((a, b), 0) + 1
    graph = Graph(directed=False)
    for index in players.values():
        graph.add_vertex(index)
    for (a, b), count in coplays.items():
        if count >= min_coplays:
            graph.add_edge(players[a], players[b], weight=float(count))
    # Attach the name mapping for downstream interpretation.
    graph.player_index = dict(players)  # type: ignore[attr-defined]
    return graph


def tie_strength(matches: Sequence[Match], a: str, b: str) -> int:
    """Number of matches two players shared."""
    return sum(1 for match in matches
               if a in match.players and b in match.players)


def social_communities(graph: Graph, iterations: int = 10,
                       ) -> dict[int, int]:
    """Communities of the tie graph via label propagation (CDLP).

    Uses asynchronous propagation, which converges on the small dense
    cliques typical of friend groups (synchronous CDLP can oscillate).
    """
    labels, _ = cdlp(graph, iterations=iterations, synchronous=False)
    return labels


@dataclass(frozen=True)
class ChatMessage:
    """One in-game chat message."""

    player: str
    text: str


#: Default toxic lexicon (sanitized stand-ins; the method, not the
#: words, is what [35] contributes).
DEFAULT_LEXICON: Mapping[str, float] = {
    "noob": 0.4,
    "trash": 0.6,
    "loser": 0.6,
    "uninstall": 0.8,
    "report": 0.3,
    "toxic": 0.5,
}


class ToxicityDetector:
    """Lexicon-based toxicity scoring of chat ([35]).

    Each message scores the sum of its matched lexicon weights, capped
    at 1.0; a message is *toxic* above ``threshold``.  Per-player
    scores are exponential moving averages, so persistent offenders
    rank above one-off flamers.
    """

    def __init__(self, lexicon: Mapping[str, float] | None = None,
                 threshold: float = 0.5, smoothing: float = 0.3) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.lexicon = dict(DEFAULT_LEXICON if lexicon is None else lexicon)
        self.threshold = threshold
        self.smoothing = smoothing
        self.player_scores: dict[str, float] = {}
        self.flagged: list[ChatMessage] = []

    def score(self, text: str) -> float:
        """Toxicity score of one message in [0, 1]."""
        words = text.lower().split()
        raw = sum(self.lexicon.get(word.strip(".,!?"), 0.0)
                  for word in words)
        return min(1.0, raw)

    def observe(self, message: ChatMessage) -> bool:
        """Ingest a message; returns True when it crosses the threshold."""
        score = self.score(message.text)
        previous = self.player_scores.get(message.player, 0.0)
        self.player_scores[message.player] = (
            (1.0 - self.smoothing) * previous + self.smoothing * score)
        if score > self.threshold:
            self.flagged.append(message)
            return True
        return False

    def worst_offenders(self, n: int = 5) -> list[tuple[str, float]]:
        """Top-n players by running toxicity score."""
        ranked = sorted(self.player_scores.items(),
                        key=lambda pair: -pair[1])
        return ranked[:n]
