"""A zoned virtual world with elastic cloud hosting (§6.3, [167], [168]).

The paper asks: "Can small studios entertain up to one billion people
with near-zero up-front costs?"  The enabler is massivizing the game
onto clouds [167]: zones of the virtual world are hosted on servers
that "can elastically scale with the ups and downs of active players
[170]".

:class:`VirtualWorld` partitions the world into zones with a per-server
player capacity; :class:`SelfHostedProvisioner` (the incumbent
approach: a fixed fleet bought up-front) and
:class:`CloudProvisioner` (elastic, pay-per-use) provide the two
hosting strategies the Table 4 / Figure 4 benchmarks compare on cost
and quality of service.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..sim import Simulator, TimeWeightedMonitor

__all__ = ["Zone", "VirtualWorld", "SelfHostedProvisioner",
           "CloudProvisioner", "diurnal_player_curve"]


def diurnal_player_curve(peak_players: int, period: float = 86400.0,
                         trough_fraction: float = 0.2):
    """Player-count function of time with a day/night cycle.

    Returns a callable ``players(t)`` oscillating between
    ``trough_fraction * peak`` and ``peak`` — the "ups and downs of
    active players" the elastic hosting exploits.
    """
    if peak_players < 1:
        raise ValueError("peak_players must be >= 1")
    if not 0.0 <= trough_fraction <= 1.0:
        raise ValueError("trough_fraction must be in [0, 1]")
    amplitude = (1.0 - trough_fraction) / 2.0
    midpoint = trough_fraction + amplitude

    def players(t: float) -> int:
        phase = math.sin(2.0 * math.pi * t / period - math.pi / 2.0)
        return max(0, round(peak_players * (midpoint + amplitude * phase)))

    return players


@dataclass
class Zone:
    """One contiguous region of the virtual world."""

    name: str
    players: int = 0
    servers: int = 1

    def __post_init__(self) -> None:
        if self.servers < 0:
            raise ValueError("servers must be non-negative")


class VirtualWorld:
    """A virtual world of zones with capacity-driven QoS.

    Args:
        sim: The simulator.
        n_zones: Number of world zones.
        players_per_server: Capacity of one game server; players beyond
            ``servers * capacity`` in a zone experience degraded QoS
            (lag), the paper's seamlessness failure.
    """

    def __init__(self, sim: Simulator, n_zones: int = 4,
                 players_per_server: int = 100) -> None:
        if n_zones < 1:
            raise ValueError("n_zones must be >= 1")
        if players_per_server < 1:
            raise ValueError("players_per_server must be >= 1")
        self.sim = sim
        self.players_per_server = players_per_server
        self.zones = [Zone(f"zone-{i}") for i in range(n_zones)]
        self.lagged_player_time = 0.0
        self.player_time = 0.0
        self._last_account = sim.now

    # ------------------------------------------------------------------
    # Population dynamics
    # ------------------------------------------------------------------
    def set_population(self, total_players: int,
                       rng: random.Random | None = None) -> None:
        """Distribute ``total_players`` over zones (slightly uneven)."""
        if total_players < 0:
            raise ValueError("total_players must be non-negative")
        self._account()
        rng = rng or random.Random(0)
        weights = [1.0 + 0.3 * rng.random() for _ in self.zones]
        total_weight = sum(weights)
        remaining = total_players
        for zone, weight in zip(self.zones[:-1], weights[:-1]):
            zone.players = min(remaining,
                               round(total_players * weight / total_weight))
            remaining -= zone.players
        self.zones[-1].players = remaining

    @property
    def total_players(self) -> int:
        """Players currently in the world."""
        return sum(z.players for z in self.zones)

    @property
    def total_servers(self) -> int:
        """Game servers currently provisioned across zones."""
        return sum(z.servers for z in self.zones)

    # ------------------------------------------------------------------
    # Quality of service
    # ------------------------------------------------------------------
    def lagged_players(self) -> int:
        """Players beyond provisioned capacity (experiencing lag)."""
        return sum(max(0, z.players - z.servers * self.players_per_server)
                   for z in self.zones)

    def _account(self) -> None:
        dt = self.sim.now - self._last_account
        if dt > 0:
            self.player_time += self.total_players * dt
            self.lagged_player_time += self.lagged_players() * dt
            self._last_account = self.sim.now

    def qos(self) -> float:
        """Fraction of player-time served without lag so far (1.0 best)."""
        self._account()
        if self.player_time == 0:
            return 1.0
        return 1.0 - self.lagged_player_time / self.player_time


class SelfHostedProvisioner:
    """The incumbent approach: a fixed fleet bought up-front (§6.3).

    The fleet never changes; cost is the up-front purchase plus flat
    operations.  Under-provisioning at peak means lag; over-
    provisioning at trough means waste — the barrier that keeps small
    studios out.
    """

    def __init__(self, world: VirtualWorld, servers_per_zone: int,
                 server_price: float = 2000.0,
                 ops_cost_per_hour: float = 0.05) -> None:
        if servers_per_zone < 1:
            raise ValueError("servers_per_zone must be >= 1")
        self.world = world
        self.server_price = server_price
        self.ops_cost_per_hour = ops_cost_per_hour
        for zone in world.zones:
            zone.servers = servers_per_zone
        self.upfront_cost = server_price * servers_per_zone * len(world.zones)

    def total_cost(self, hours: float) -> float:
        """Up-front purchase plus flat operations for ``hours``."""
        return (self.upfront_cost
                + self.world.total_servers * self.ops_cost_per_hour * hours)

    def rebalance(self) -> None:
        """Self-hosting cannot add servers; rebalancing is a no-op."""


class CloudProvisioner:
    """Elastic cloud hosting: lease per zone, pay per server-hour [167]."""

    def __init__(self, world: VirtualWorld, sim: Simulator,
                 price_per_server_hour: float = 0.5,
                 headroom: float = 0.2) -> None:
        if price_per_server_hour <= 0:
            raise ValueError("price must be positive")
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        self.world = world
        self.sim = sim
        self.price_per_server_hour = price_per_server_hour
        self.headroom = headroom
        self._server_hours = TimeWeightedMonitor(
            "servers", initial=world.total_servers, start_time=sim.now)

    def rebalance(self) -> None:
        """Resize every zone's lease to current players plus headroom."""
        capacity = self.world.players_per_server
        for zone in self.world.zones:
            needed = math.ceil(zone.players * (1.0 + self.headroom)
                               / capacity)
            zone.servers = max(1, needed)
        self._server_hours.update(self.sim.now,
                                  float(self.world.total_servers))

    def total_cost(self, hours: float | None = None) -> float:
        """Pay-per-use cost: integrated server-hours x price.

        ``hours`` is accepted for interface parity with the self-hosted
        provisioner; the integration always ends at the current time.
        """
        seconds = self.sim.now
        mean_servers = self._server_hours.time_average(until=seconds)
        return mean_servers * (seconds / 3600.0) * self.price_per_server_hour

    @property
    def upfront_cost(self) -> float:
        """Clouds have near-zero up-front cost — the paper's headline."""
        return 0.0
