"""Gaming analytics: session and retention analysis (Figure 4, §6.3).

The paper's gap (ii): "the player activity is rarely analyzed in
depth".  This module provides the core of a gaming-analytics platform:
session reconstruction from raw play events, retention cohorts, and
per-player engagement summaries — the inputs community managers would
otherwise triage "case-by-case".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["PlayEvent", "Session", "sessionize", "retention",
           "engagement_summary"]


@dataclass(frozen=True)
class PlayEvent:
    """One raw telemetry event: a player was active at a time."""

    player: str
    time: float


@dataclass(frozen=True)
class Session:
    """A maximal burst of activity by one player."""

    player: str
    start: float
    end: float
    events: int

    @property
    def duration(self) -> float:
        """Session length in seconds."""
        return self.end - self.start


def sessionize(events: Sequence[PlayEvent],
               gap: float = 1800.0) -> list[Session]:
    """Group events into sessions separated by ``gap`` of inactivity."""
    if gap <= 0:
        raise ValueError("gap must be positive")
    by_player: dict[str, list[float]] = {}
    for event in events:
        by_player.setdefault(event.player, []).append(event.time)
    sessions = []
    for player, times in by_player.items():
        times.sort()
        start = previous = times[0]
        count = 1
        for time in times[1:]:
            if time - previous > gap:
                sessions.append(Session(player, start, previous, count))
                start = time
                count = 0
            previous = time
            count += 1
        sessions.append(Session(player, start, previous, count))
    return sorted(sessions, key=lambda s: (s.start, s.player))


def retention(sessions: Sequence[Session], period: float = 86400.0,
              n_periods: int = 7) -> list[float]:
    """Classic day-N retention: fraction of players active in period N.

    Period 0 contains each player's first session; the returned list
    has ``n_periods`` entries, with entry 0 always 1.0 (everyone is
    active in their own first period) for non-empty input.
    """
    if n_periods < 1:
        raise ValueError("n_periods must be >= 1")
    if not sessions:
        return [0.0] * n_periods
    first_seen: dict[str, float] = {}
    for session in sessions:
        if (session.player not in first_seen
                or session.start < first_seen[session.player]):
            first_seen[session.player] = session.start
    active: list[set[str]] = [set() for _ in range(n_periods)]
    for session in sessions:
        offset = int((session.start - first_seen[session.player]) // period)
        if 0 <= offset < n_periods:
            active[offset].add(session.player)
    population = len(first_seen)
    return [len(cohort) / population for cohort in active]


def engagement_summary(sessions: Sequence[Session]) -> dict[str, float]:
    """Aggregate engagement indicators across the player base."""
    if not sessions:
        raise ValueError("no sessions")
    players = {s.player for s in sessions}
    durations = [s.duration for s in sessions]
    per_player: dict[str, int] = {}
    for session in sessions:
        per_player[session.player] = per_player.get(session.player, 0) + 1
    return {
        "players": float(len(players)),
        "sessions": float(len(sessions)),
        "mean_session_duration": sum(durations) / len(durations),
        "mean_sessions_per_player": len(sessions) / len(players),
        "max_sessions_per_player": float(max(per_player.values())),
    }
