"""The functional reference architecture for online gaming (Figure 4, §6.3).

Figure 4 is a "house" of four key functions: the *Virtual World*
(maintaining a seamless world), *Gaming Analytics* (player/game data
analysis), *Procedural Content Generation* (automated content), and
*Social Meta-Gaming* (community activities around the game).  The
paper pairs each function with the service gap today's industry leaves
open (§6.3 items (i)-(iv)); both are encoded here, with the
implementing module of this reproduction attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["GamingFunction", "GAMING_FUNCTIONS", "GamingArchitecture"]


@dataclass(frozen=True)
class GamingFunction:
    """One of the four Figure 4 functions."""

    name: str
    responsibility: str
    current_gap: str
    main_topics: tuple[str, ...]
    module: str


#: Figure 4 of the paper (1 level of depth), with §6.3's service gaps.
GAMING_FUNCTIONS: tuple[GamingFunction, ...] = (
    GamingFunction(
        "Virtual World",
        "maintaining a seamless virtual world",
        "worlds cannot host more than a few thousands of players in the "
        "same contiguous virtual-space; fast-paced games rarely exceed a "
        "few tens of simultaneous players",
        ("scalability", "consistency", "latency", "elastic hosting"),
        "repro.gaming.virtualworld"),
    GamingFunction(
        "Gaming Analytics",
        "analysis of game and especially player data for business and "
        "operational decisions",
        "player activity is rarely analyzed in depth; social-network "
        "correlation across large groups is not offered as a service",
        ("player behavior", "retention", "social networks", "toxicity"),
        "repro.gaming.analytics"),
    GamingFunction(
        "Procedural Content Generation",
        "generation, curation, and provision of content",
        "game content is rarely updated, rarely player-customized, and "
        "never fresh at the scale of the community",
        ("puzzle instances", "difficulty calibration", "batch generation"),
        "repro.gaming.content"),
    GamingFunction(
        "Social Meta-Gaming",
        "managing and fostering a community using the game as a symbol "
        "for diverse activities",
        "the social platform offers only basic tools beyond viewing and "
        "sharing of basic content",
        ("tournaments", "spectating", "implicit social ties"),
        "repro.gaming.metagaming"),
)


class GamingArchitecture:
    """Queryable regeneration of Figure 4."""

    def __init__(self, functions: tuple[GamingFunction, ...]
                 = GAMING_FUNCTIONS) -> None:
        names = [f.name for f in functions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate function names")
        self._functions = functions

    def __iter__(self) -> Iterator[GamingFunction]:
        return iter(self._functions)

    def __len__(self) -> int:
        return len(self._functions)

    def get(self, name: str) -> GamingFunction:
        """Look up one function by name."""
        for function in self._functions:
            if function.name == name:
                return function
        raise KeyError(name)

    def table_rows(self) -> list[tuple[str, str]]:
        """(function, main topics) rows regenerating Figure 4."""
        return [(f.name, ", ".join(f.main_topics)) for f in self._functions]
