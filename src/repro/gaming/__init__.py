"""Online-gaming substrate (S12): the Figure 4 architecture (§6.3).

The four gaming functions — an elastic zoned virtual world with
self-hosted vs. cloud provisioning, session/retention analytics,
POGGI-style procedural content generation, and social meta-gaming with
implicit tie graphs and toxicity detection.
"""

from .analytics import (
    PlayEvent,
    Session,
    engagement_summary,
    retention,
    sessionize,
)
from .architecture import GAMING_FUNCTIONS, GamingArchitecture, GamingFunction
from .content import PuzzleGenerator, PuzzleInstance, generation_batch
from .metagaming import (
    ChatMessage,
    Match,
    ToxicityDetector,
    implicit_social_network,
    social_communities,
    tie_strength,
)
from .virtualworld import (
    CloudProvisioner,
    SelfHostedProvisioner,
    VirtualWorld,
    Zone,
    diurnal_player_curve,
)

__all__ = [
    "GamingFunction",
    "GAMING_FUNCTIONS",
    "GamingArchitecture",
    "Zone",
    "VirtualWorld",
    "SelfHostedProvisioner",
    "CloudProvisioner",
    "diurnal_player_curve",
    "PlayEvent",
    "Session",
    "sessionize",
    "retention",
    "engagement_summary",
    "PuzzleInstance",
    "PuzzleGenerator",
    "generation_batch",
    "Match",
    "implicit_social_network",
    "tie_strength",
    "social_communities",
    "ChatMessage",
    "ToxicityDetector",
]
