"""Procedural content generation, POGGI-style ([166]; Figure 4).

The paper's gap (iii): "the game content is rarely updated, rarely
player-customized, and never fresh at the scale of the community".
POGGI [166] generated *puzzle instances* on grid infrastructure,
calibrated by difficulty.  This module reproduces that design: a
deterministic puzzle-instance generator with a verifiable solution and
a difficulty model, plus a batcher that turns a content request into a
bag-of-tasks runnable on the datacenter substrate — generation at
community scale is exactly a throughput workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..workload.task import BagOfTasks, Task

__all__ = ["PuzzleInstance", "PuzzleGenerator", "generation_batch"]


@dataclass(frozen=True)
class PuzzleInstance:
    """A sliding-sequence number puzzle with a guaranteed solution.

    The player must reorder ``scrambled`` into ascending order using
    adjacent swaps; ``optimal_moves`` (the inversion count) is the
    minimum number of swaps, which is the difficulty driver.
    """

    puzzle_id: int
    scrambled: tuple[int, ...]
    optimal_moves: int
    difficulty: float

    def is_solvable(self) -> bool:
        """Adjacent-swap puzzles are always solvable; kept for API parity."""
        return sorted(self.scrambled) == list(range(len(self.scrambled)))


def _inversions(sequence: tuple[int, ...]) -> int:
    count = 0
    for i, a in enumerate(sequence):
        for b in sequence[i + 1:]:
            if a > b:
                count += 1
    return count


class PuzzleGenerator:
    """Generates difficulty-calibrated puzzle instances.

    Difficulty in [0, 1] maps to an inversion-count target: 0 yields
    nearly sorted sequences, 1 yields maximally scrambled ones.  The
    generator retries scrambles until the instance lands within
    ``tolerance`` of the requested difficulty — POGGI's calibration.
    """

    def __init__(self, size: int = 8, tolerance: float = 0.15,
                 rng: random.Random | None = None) -> None:
        if size < 2:
            raise ValueError("size must be >= 2")
        if not 0.0 < tolerance <= 1.0:
            raise ValueError("tolerance must be in (0, 1]")
        self.size = size
        self.tolerance = tolerance
        self.rng = rng or random.Random(0)
        self._next_id = 1

    @property
    def max_inversions(self) -> int:
        """Worst-case inversion count for the configured size."""
        return self.size * (self.size - 1) // 2

    def generate(self, difficulty: float,
                 max_attempts: int = 1000) -> PuzzleInstance:
        """One instance whose difficulty is close to the target."""
        if not 0.0 <= difficulty <= 1.0:
            raise ValueError("difficulty must be in [0, 1]")
        target = difficulty * self.max_inversions
        for _ in range(max_attempts):
            sequence = list(range(self.size))
            self.rng.shuffle(sequence)
            inversions = _inversions(tuple(sequence))
            achieved = inversions / self.max_inversions
            if abs(achieved - difficulty) <= self.tolerance:
                instance = PuzzleInstance(
                    puzzle_id=self._next_id,
                    scrambled=tuple(sequence),
                    optimal_moves=inversions,
                    difficulty=achieved)
                self._next_id += 1
                return instance
        raise RuntimeError(
            f"could not calibrate difficulty {difficulty} in "
            f"{max_attempts} attempts")

    def generate_many(self, difficulty: float, count: int,
                      ) -> list[PuzzleInstance]:
        """A batch of calibrated instances."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.generate(difficulty) for _ in range(count)]


def generation_batch(count: int, seconds_per_instance: float = 2.0,
                     submit_time: float = 0.0) -> BagOfTasks:
    """A content-generation request as a datacenter bag-of-tasks.

    POGGI's insight: content generation is conveniently parallel, so a
    community-scale request becomes a bag of independent tasks for the
    scheduling substrate.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if seconds_per_instance <= 0:
        raise ValueError("seconds_per_instance must be positive")
    tasks = [Task(runtime=seconds_per_instance, cores=1,
                  name=f"poggi-{i}", kind="content-generation")
             for i in range(count)]
    return BagOfTasks("poggi-batch", tasks, user="content-pipeline",
                      submit_time=submit_time)
