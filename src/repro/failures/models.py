"""Correlated failure models (paper §2.2 problem 2; [26], [27], [28]).

"We know from grid computing the damage that a failure can trigger in
the entire computer ecosystem [25][26][27], and all the large cloud
operators ... have suffered significant outages [28].  In turn, these
outages have correlated failures."

Two parametric models, directly implementing the cited
characterizations:

- :class:`SpaceCorrelatedModel` (Gallet et al. [26]): failures arrive
  in *bursts* that hit groups of machines at once; group sizes are
  heavy-tailed (truncated Pareto) and groups exhibit spatial locality
  (machines of the same rack fail together).
- :class:`TimeCorrelatedModel` (Yigitbasi et al. [27]): the failure
  rate is non-stationary, with daily peaks — a non-homogeneous Poisson
  process with sinusoidal intensity, thinned from a homogeneous bound.

Repair durations are lognormal in both models, per the grid trace
analyses.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

__all__ = ["FailureEvent", "SpaceCorrelatedModel", "TimeCorrelatedModel"]


@dataclass(frozen=True)
class FailureEvent:
    """One failure burst: which machines go down, when, for how long."""

    time: float
    machine_names: tuple[str, ...]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.machine_names:
            raise ValueError("a failure event must hit at least one machine")


def _truncated_pareto(rng: random.Random, alpha: float, maximum: int) -> int:
    """Heavy-tailed group size in [1, maximum]."""
    u = rng.random()
    size = int(math.floor((1.0 - u) ** (-1.0 / alpha)))
    return max(1, min(size, maximum))


def _lognormal_duration(rng: random.Random, median: float,
                        sigma: float) -> float:
    return max(1e-3, rng.lognormvariate(math.log(median), sigma))


class SpaceCorrelatedModel:
    """Bursty, rack-local failure groups [26].

    Args:
        burst_rate: Mean failure bursts per time unit (Poisson).
        group_alpha: Pareto tail exponent of the burst size; smaller
            alpha means larger correlated groups.
        max_group: Cap on machines hit by one burst.
        locality: Probability that each additional victim comes from
            the same rack as the first (vs. anywhere).
        repair_median / repair_sigma: Lognormal repair time parameters.
    """

    def __init__(self, burst_rate: float, group_alpha: float = 1.5,
                 max_group: int = 16, locality: float = 0.8,
                 repair_median: float = 60.0, repair_sigma: float = 0.8,
                 rng: random.Random | None = None) -> None:
        if burst_rate <= 0:
            raise ValueError("burst_rate must be positive")
        if group_alpha <= 0:
            raise ValueError("group_alpha must be positive")
        if max_group < 1:
            raise ValueError("max_group must be >= 1")
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        self.burst_rate = burst_rate
        self.group_alpha = group_alpha
        self.max_group = max_group
        self.locality = locality
        self.repair_median = repair_median
        self.repair_sigma = repair_sigma
        self.rng = rng or random.Random(0)

    def generate(self, horizon: float,
                 racks: Sequence[Sequence[str]]) -> list[FailureEvent]:
        """Failure events over ``[0, horizon)`` for the given rack layout.

        ``racks`` is a list of racks, each a list of machine names.
        """
        if not racks or not any(racks):
            raise ValueError("need at least one machine")
        all_machines = [name for rack in racks for name in rack]
        rack_of = {name: index for index, rack in enumerate(racks)
                   for name in rack}
        events = []
        t = 0.0
        while True:
            t += self.rng.expovariate(self.burst_rate)
            if t >= horizon:
                break
            size = _truncated_pareto(self.rng, self.group_alpha,
                                     min(self.max_group, len(all_machines)))
            first = self.rng.choice(all_machines)
            victims = {first}
            home_rack = racks[rack_of[first]]
            while len(victims) < size:
                if self.rng.random() < self.locality:
                    pool = home_rack
                else:
                    pool = all_machines
                candidates = [m for m in pool if m not in victims]
                if not candidates:
                    candidates = [m for m in all_machines if m not in victims]
                    if not candidates:
                        break
                victims.add(self.rng.choice(candidates))
            duration = _lognormal_duration(self.rng, self.repair_median,
                                           self.repair_sigma)
            events.append(FailureEvent(time=t,
                                       machine_names=tuple(sorted(victims)),
                                       duration=duration))
        return events


class TimeCorrelatedModel:
    """Non-stationary single-machine failures with daily peaks [27].

    The intensity is ``base_rate * (1 + amplitude * sin(2 pi t /
    period))``, sampled by thinning a homogeneous Poisson process at the
    peak rate.  Failures cluster in the high-intensity parts of each
    period — the time-correlation the paper's model captures.
    """

    def __init__(self, base_rate: float, amplitude: float = 0.8,
                 period: float = 86400.0,
                 repair_median: float = 60.0, repair_sigma: float = 0.8,
                 rng: random.Random | None = None) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period <= 0:
            raise ValueError("period must be positive")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.repair_median = repair_median
        self.repair_sigma = repair_sigma
        self.rng = rng or random.Random(0)

    def intensity(self, time: float) -> float:
        """Instantaneous failure rate at ``time``."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * time
                                            / self.period))

    def generate(self, horizon: float,
                 machines: Sequence[str]) -> list[FailureEvent]:
        """Single-machine failure events over ``[0, horizon)``."""
        if not machines:
            raise ValueError("need at least one machine")
        peak = self.base_rate * (1.0 + self.amplitude)
        events = []
        t = 0.0
        while True:
            t += self.rng.expovariate(peak)
            if t >= horizon:
                break
            if self.rng.random() > self.intensity(t) / peak:
                continue  # thinned out
            victim = self.rng.choice(list(machines))
            duration = _lognormal_duration(self.rng, self.repair_median,
                                           self.repair_sigma)
            events.append(FailureEvent(time=t, machine_names=(victim,),
                                       duration=duration))
        return events
