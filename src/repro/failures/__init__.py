"""Failure substrate (S8): correlated failure models and injection.

Space-correlated bursts [26], time-correlated non-stationary failures
[27], an injector that replays them against a datacenter, and
availability analysis ([25], [28]).
"""

from .availability import (
    failure_correlation_index,
    fleet_availability,
    machine_availability,
    mtbf_mttr,
    peak_concurrent_failures,
)
from .injection import FailureInjector
from .models import FailureEvent, SpaceCorrelatedModel, TimeCorrelatedModel

__all__ = [
    "FailureEvent",
    "SpaceCorrelatedModel",
    "TimeCorrelatedModel",
    "FailureInjector",
    "machine_availability",
    "fleet_availability",
    "mtbf_mttr",
    "failure_correlation_index",
    "peak_concurrent_failures",
]
