"""Availability analysis of failure logs (§2.2, [25], [28]).

Turns machine downtime intervals into the availability indicators the
paper treats as first-class non-functional properties (P3): per-machine
and fleet availability, MTBF/MTTR estimates, and a correlation index
measuring how strongly failures cluster — the signature of [26]'s
space-correlated bursts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .models import FailureEvent

__all__ = ["machine_availability", "fleet_availability", "mtbf_mttr",
           "failure_correlation_index", "peak_concurrent_failures"]


def machine_availability(intervals: Sequence[tuple[float, float]],
                         horizon: float) -> float:
    """Fraction of ``[0, horizon)`` the machine was up."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    down = sum(min(end, horizon) - max(start, 0.0)
               for start, end in intervals
               if end > 0.0 and start < horizon)
    return max(0.0, 1.0 - down / horizon)


def fleet_availability(downtime: Mapping[str, Sequence[tuple[float, float]]],
                       horizon: float) -> float:
    """Mean machine availability across the fleet."""
    if not downtime:
        raise ValueError("empty fleet")
    return sum(machine_availability(intervals, horizon)
               for intervals in downtime.values()) / len(downtime)


def mtbf_mttr(events: Sequence[FailureEvent],
              horizon: float) -> tuple[float, float]:
    """Mean time between failure bursts and mean time to repair.

    MTBF is the horizon divided by the burst count (inf when no
    failures); MTTR is the mean burst duration (0 when no failures).
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not events:
        return float("inf"), 0.0
    mtbf = horizon / len(events)
    mttr = sum(e.duration for e in events) / len(events)
    return mtbf, mttr


def failure_correlation_index(events: Sequence[FailureEvent]) -> float:
    """Fraction of machine-failures that arrived in multi-machine bursts.

    0.0 means all failures were independent single-machine events; 1.0
    means every failure was part of a correlated group — the
    space-correlated regime of [26].
    """
    total = sum(len(e.machine_names) for e in events)
    if total == 0:
        return 0.0
    correlated = sum(len(e.machine_names) for e in events
                     if len(e.machine_names) > 1)
    return correlated / total


def peak_concurrent_failures(events: Sequence[FailureEvent]) -> int:
    """Maximum number of machines simultaneously down.

    The capacity-planning quantity behind "tolerance to correlated
    failures" (P3): replication must survive the peak, not the mean.
    """
    if not events:
        return 0
    changes: list[tuple[float, int]] = []
    for event in events:
        size = len(event.machine_names)
        changes.append((event.time, size))
        changes.append((event.time + event.duration, -size))
    changes.sort()
    concurrent = peak = 0
    for _, delta in changes:
        concurrent += delta
        peak = max(peak, concurrent)
    return peak
