"""Failure injection into running datacenter simulations (S8, C17).

The :class:`FailureInjector` replays a list of
:class:`~repro.failures.models.FailureEvent` objects against a
:class:`~repro.datacenter.datacenter.Datacenter`: at each event time it
takes the victim machines down (interrupting their tasks) and schedules
their repair.  Machine up/down transitions are logged so availability
can be analyzed afterwards.
"""

from __future__ import annotations

from typing import Sequence

from ..datacenter.datacenter import Datacenter
from ..sim import Simulator
from .models import FailureEvent

__all__ = ["FailureInjector"]


class FailureInjector:
    """Replays failure events against a datacenter."""

    def __init__(self, sim: Simulator, datacenter: Datacenter,
                 events: Sequence[FailureEvent]) -> None:
        self.sim = sim
        self.datacenter = datacenter
        self.events = sorted(events, key=lambda e: e.time)
        self._machines = {m.name: m for m in datacenter.machines()}
        unknown = [name for event in self.events
                   for name in event.machine_names
                   if name not in self._machines]
        if unknown:
            raise ValueError(f"events reference unknown machines: {unknown[:3]}")
        #: (time, machine_name, "down"|"up") transition log.
        self.transitions: list[tuple[float, str, str]] = []
        #: Tasks killed by injected failures.
        self.victim_tasks = 0
        #: Repairs still outstanding per machine (handles overlapping hits).
        self._down_depth: dict[str, int] = {}
        sim.process(self._run(), name="failure-injector")

    def _run(self):
        for event in self.events:
            delay = event.time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            for name in event.machine_names:
                self._take_down(name)
            self.sim.process(self._repair_later(event),
                             name=f"repair@{event.time:.0f}")

    def _take_down(self, name: str) -> None:
        machine = self._machines[name]
        depth = self._down_depth.get(name, 0)
        if depth == 0:
            victims = self.datacenter.fail_machine(machine)
            self.victim_tasks += len(victims)
            self.transitions.append((self.sim.now, name, "down"))
        self._down_depth[name] = depth + 1

    def _repair_later(self, event: FailureEvent):
        yield self.sim.timeout(event.duration)
        for name in event.machine_names:
            depth = self._down_depth.get(name, 0)
            if depth <= 1:
                self._down_depth.pop(name, None)
                self.datacenter.repair_machine(self._machines[name])
                self.transitions.append((self.sim.now, name, "up"))
            else:
                self._down_depth[name] = depth - 1

    def downtime_intervals(self) -> dict[str, list[tuple[float, float]]]:
        """Per-machine [down, up) intervals; open intervals end at now."""
        open_since: dict[str, float] = {}
        intervals: dict[str, list[tuple[float, float]]] = {
            name: [] for name in self._machines}
        for time, name, kind in self.transitions:
            if kind == "down":
                open_since[name] = time
            else:
                start = open_since.pop(name)
                intervals[name].append((start, time))
        for name, start in open_since.items():
            intervals[name].append((start, self.sim.now))
        return intervals
