"""Failure injection into running datacenter simulations (S8, C17).

The :class:`FailureInjector` replays a list of
:class:`~repro.failures.models.FailureEvent` objects against a
:class:`~repro.datacenter.datacenter.Datacenter`: at each event time it
takes the victim machines down (interrupting their tasks) and schedules
their repair.  Machine up/down transitions are logged so availability
can be analyzed afterwards.
"""

from __future__ import annotations

from typing import Sequence

from ..datacenter.datacenter import Datacenter
from ..sim import Simulator
from .models import FailureEvent

__all__ = ["FailureInjector"]


class FailureInjector:
    """Replays failure events against a datacenter.

    Args:
        sim: The simulator.
        datacenter: The datacenter to injure.
        events: Failure events to replay (sorted internally).
        streams: Optional :class:`~repro.sim.RandomStreams`; when given
            with ``jitter > 0`` each event's injection time is perturbed
            by ``U(0, jitter)`` drawn from the ``"failure-injection"``
            substream, so the perturbation is bit-reproducible under
            the experiment seed.
        jitter: Maximum injection-time perturbation in sim-seconds.
    """

    def __init__(self, sim: Simulator, datacenter: Datacenter,
                 events: Sequence[FailureEvent],
                 streams=None, jitter: float = 0.0) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter > 0 and streams is None:
            raise ValueError("jitter requires a RandomStreams instance")
        self.sim = sim
        self.datacenter = datacenter
        self.events = sorted(events, key=lambda e: e.time)
        self._machines = {m.name: m for m in datacenter.machines()}
        unknown = [name for event in self.events
                   for name in event.machine_names
                   if name not in self._machines]
        if unknown:
            raise ValueError(f"events reference unknown machines: {unknown[:3]}")
        #: (time, machine_name, "down"|"up") transition log.
        self.transitions: list[tuple[float, str, str]] = []
        #: Tasks killed by injected failures.
        self.victim_tasks = 0
        #: Per-event (scheduled_time, event, victim task list) records.
        self.event_log: list[tuple[float, FailureEvent, list]] = []
        #: Repairs still outstanding per machine (handles overlapping hits).
        self._down_depth: dict[str, int] = {}
        if jitter > 0:
            rng = streams.stream("failure-injection")
            self._schedule = sorted(
                ((event.time + rng.uniform(0.0, jitter), event)
                 for event in self.events),
                key=lambda pair: pair[0])
        else:
            self._schedule = [(event.time, event) for event in self.events]
        sim.process(self._run(), name="failure-injector")

    def _run(self):
        for when, event in self._schedule:
            delay = when - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            victims: list = []
            for name in event.machine_names:
                victims.extend(self._take_down(name))
            self.event_log.append((self.sim.now, event, victims))
            observer = self.sim.observer
            if observer is not None:
                observer.metrics.counter("failures.bursts").inc()
                observer.metrics.counter("failures.victim_tasks").inc(
                    len(victims))
                observer.tracer.instant(
                    "failure-burst", category="resilience",
                    attrs={"machines": len(event.machine_names),
                           "victims": len(victims),
                           "duration": event.duration})
            self.sim.process(self._repair_later(event),
                             name=f"repair@{event.time:.0f}")

    def _take_down(self, name: str) -> list:
        machine = self._machines[name]
        depth = self._down_depth.get(name, 0)
        victims: list = []
        if depth == 0:
            victims = list(self.datacenter.fail_machine(machine))
            self.victim_tasks += len(victims)
            self.transitions.append((self.sim.now, name, "down"))
        self._down_depth[name] = depth + 1
        return victims

    def _repair_later(self, event: FailureEvent):
        yield self.sim.timeout(event.duration)
        for name in event.machine_names:
            depth = self._down_depth.get(name, 0)
            if depth <= 1:
                self._down_depth.pop(name, None)
                self.datacenter.repair_machine(self._machines[name])
                self.transitions.append((self.sim.now, name, "up"))
            else:
                self._down_depth[name] = depth - 1

    def downtime_intervals(self) -> dict[str, list[tuple[float, float]]]:
        """Per-machine [down, up) intervals; open intervals end at now."""
        open_since: dict[str, float] = {}
        intervals: dict[str, list[tuple[float, float]]] = {
            name: [] for name in self._machines}
        for time, name, kind in self.transitions:
            if kind == "down":
                open_since[name] = time
            else:
                start = open_since.pop(name)
                intervals[name].append((start, time))
        for name, start in open_since.items():
            intervals[name].append((start, self.sim.now))
        return intervals
