"""The autoscaling controller: binds an autoscaler to a datacenter.

Every ``interval`` simulated seconds the controller snapshots demand,
asks its :class:`~repro.autoscaling.autoscalers.Autoscaler` for a
target, and adjusts the machine lease.  It records the demand and
supply curves as :class:`~repro.autoscaling.elasticity.StepSeries`, so
a finished run can be scored with the SPEC elasticity metrics —
exactly the experiment design of [43].
"""

from __future__ import annotations

import math
from typing import Callable

from ..datacenter.datacenter import Datacenter
from ..scheduling.scheduler import ClusterScheduler
from ..sim import Simulator
from .autoscalers import Autoscaler, AutoscalerInput
from .elasticity import ElasticityReport, StepSeries, evaluate_elasticity

__all__ = ["AutoscalingController"]


class AutoscalingController:
    """Periodic autoscaling of a datacenter's machine lease.

    Args:
        sim: The simulator.
        datacenter: The elastic platform.
        scheduler: Supplies the queued-demand signal.
        autoscaler: The scaling policy under test.
        interval: Evaluation period in simulated seconds.
        soon_eligible: Optional callable returning the number of tasks
            one dependency away from eligibility (workflow token
            look-ahead); defaults to none.
    """

    def __init__(self, sim: Simulator, datacenter: Datacenter,
                 scheduler: ClusterScheduler, autoscaler: Autoscaler,
                 interval: float = 10.0,
                 soon_eligible: Callable[[], int] | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.datacenter = datacenter
        self.scheduler = scheduler
        self.autoscaler = autoscaler
        self.interval = interval
        self.soon_eligible = soon_eligible or (lambda: 0)
        self._machines = datacenter.machines()
        self._demand_points: list[tuple[float, float]] = []
        self._supply_points: list[tuple[float, float]] = []
        self._stopped = False
        #: Emergency capacity boosts taken in response to SLO alerts
        #: (see :meth:`respond_to_alerts`).
        self.alert_boosts = 0
        self._record(initial=True)
        sim.process(self._run(), name=f"autoscaler-{autoscaler.name}")

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _snapshot(self) -> AutoscalerInput:
        queue = self.scheduler.queue
        cores_per_machine = (self._machines[0].spec.cores
                             if self._machines else 1)
        return AutoscalerInput(
            time=self.sim.now,
            queued_cores=sum(t.cores for t in queue),
            running_cores=sum(m.cores_used for m in self._machines),
            eligible_tasks=len(queue),
            soon_eligible_tasks=self.soon_eligible(),
            machines=sum(1 for m in self._machines if m.available),
            cores_per_machine=cores_per_machine,
            max_machines=len(self._machines),
        )

    def _apply(self, target: int) -> None:
        target = max(0, min(target, len(self._machines)))
        available = [m for m in self._machines if m.available]
        if len(available) < target:
            for machine in self._machines:
                if not machine.available:
                    self.datacenter.repair_machine(machine)
                    available.append(machine)
                    if len(available) >= target:
                        break
            self.scheduler._poke()
        elif len(available) > target:
            for machine in reversed(self._machines):
                if len(available) <= target:
                    break
                if machine.available and not machine.running_tasks:
                    machine.account_energy(self.sim.now)
                    machine.available = False
                    available.remove(machine)

    def _record(self, initial: bool = False) -> None:
        snapshot = self._snapshot()
        cores_per_machine = snapshot.cores_per_machine
        demand = snapshot.demand_cores / cores_per_machine
        supply = snapshot.machines
        time = self.sim.now
        if initial or not self._demand_points or (
                self._demand_points[-1][0] < time):
            self._demand_points.append((time, demand))
            self._supply_points.append((time, float(supply)))

    def _run(self):
        while not self._stopped:
            snapshot = self._snapshot()
            target = self.autoscaler.decide(snapshot)
            before = self.leased_machines
            self._apply(target)
            self._record()
            observer = self.sim.observer
            if observer is not None:
                after = self.leased_machines
                metrics = observer.metrics
                metrics.gauge("autoscaling.machines").set(float(after))
                metrics.gauge("autoscaling.demand_cores").set(
                    float(snapshot.demand_cores))
                if after != before:
                    direction = ("scale_ups" if after > before
                                 else "scale_downs")
                    metrics.counter(f"autoscaling.{direction}").inc()
                    observer.tracer.instant(
                        "autoscale", category="autoscaling",
                        attrs={"target": target, "before": before,
                               "after": after})
            yield self.sim.timeout(self.interval)

    def stop(self) -> None:
        """Stop the control loop at the next tick."""
        self._stopped = True

    def respond_to_alerts(self, engine, boost: int = 1) -> None:
        """Lease extra machines the moment a burn-rate alert fires.

        Subscribes to an :class:`~repro.observability.slo.SLOEngine`
        (anything with an ``on_alert`` list works): every ``fire``
        event immediately leases ``boost`` machines beyond the current
        supply, without waiting for the next periodic evaluation — the
        paper's monitoring → analysis → action loop closed at alert
        latency rather than control-period latency.  Resolve events
        are ignored; the periodic policy scales back down on its own.
        """
        if boost < 1:
            raise ValueError(f"boost must be at least 1, got {boost}")

        def _on_alert(event) -> None:
            if event.kind != "fire":
                return
            self.alert_boosts += 1
            before = self.leased_machines
            self._apply(before + boost)
            self._record()
            observer = self.sim.observer
            if observer is not None:
                observer.metrics.counter("autoscaling.alert_boosts").inc()
                observer.metrics.gauge("autoscaling.machines").set(
                    float(self.leased_machines))
                observer.tracer.instant(
                    "alert-boost", category="autoscaling",
                    attrs={"slo": event.slo, "rule": event.rule,
                           "before": before, "after": self.leased_machines})

        engine.on_alert.append(_on_alert)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @property
    def leased_machines(self) -> int:
        """Machines currently leased."""
        return sum(1 for m in self._machines if m.available)

    def demand_series(self) -> StepSeries:
        """Demand (in machine-equivalents) over the run so far."""
        return StepSeries(self._dedupe(self._demand_points))

    def supply_series(self) -> StepSeries:
        """Leased machines over the run so far."""
        return StepSeries(self._dedupe(self._supply_points))

    @staticmethod
    def _dedupe(points: list[tuple[float, float]]) -> list[tuple[float, float]]:
        deduped: list[tuple[float, float]] = []
        for time, value in points:
            if deduped and math.isclose(deduped[-1][0], time):
                deduped[-1] = (time, value)
            else:
                deduped.append((time, value))
        return deduped

    def elasticity(self, start: float | None = None,
                   end: float | None = None) -> ElasticityReport:
        """SPEC elasticity metrics over ``[start, end)`` of the run."""
        start = 0.0 if start is None else start
        end = self.sim.now if end is None else end
        return evaluate_elasticity(self.demand_series(),
                                   self.supply_series(), start, end)
