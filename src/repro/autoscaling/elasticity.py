"""SPEC elasticity metrics (Herbst et al. [32]; P3, C3, C13).

The paper repeatedly cites "the over ten available metrics" of
elasticity [32].  This module implements the SPEC Research Cloud
group's core set over a pair of piecewise-constant *demand* and
*supply* curves:

- provisioning accuracy (under/over), normalized and raw;
- wrong-provisioning timeshare (under/over);
- instability (supply and demand moving in opposite directions);
- jitter (supply adjustments per time unit);
- an aggregate elastic deviation used to rank autoscalers.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

__all__ = ["StepSeries", "ElasticityReport", "evaluate_elasticity"]


class StepSeries:
    """A right-continuous step function given by change points.

    ``StepSeries([(0, 2), (10, 5)])`` is 2 on [0, 10) and 5 afterwards.
    """

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if not points:
            raise ValueError("a step series needs at least one point")
        times = [t for t, _ in points]
        if times != sorted(times):
            raise ValueError("change points must be time-ordered")
        if len(set(times)) != len(times):
            raise ValueError("duplicate change-point times")
        self.times = list(times)
        self.values = [v for _, v in points]

    def at(self, time: float) -> float:
        """Value of the series at ``time`` (its first value before start)."""
        index = bisect_right(self.times, time) - 1
        return self.values[max(0, index)]

    def change_times(self) -> list[float]:
        """Times at which the value actually changes."""
        changes = [self.times[0]]
        changes.extend(
            t for t, previous, current in zip(self.times[1:], self.values,
                                              self.values[1:])
            if current != previous)
        return changes

    def segments(self, start: float, end: float) -> list[tuple[float, float, float]]:
        """(seg_start, seg_end, value) pieces covering [start, end)."""
        if end <= start:
            raise ValueError("end must exceed start")
        boundaries = sorted({start, end,
                             *(t for t in self.times if start < t < end)})
        return [(a, b, self.at(a))
                for a, b in zip(boundaries, boundaries[1:])]


@dataclass(frozen=True)
class ElasticityReport:
    """The SPEC elasticity metric set for one autoscaler run.

    All accuracies are in resource units (cores or machines) averaged
    over time; timeshares and instability are fractions of the horizon;
    jitter is supply changes per time unit.
    """

    accuracy_under: float
    accuracy_over: float
    timeshare_under: float
    timeshare_over: float
    instability: float
    jitter: float

    def elastic_deviation(self, under_weight: float = 2.0) -> float:
        """Aggregate badness score; lower is better.

        Under-provisioning is weighted more heavily (``under_weight``)
        than over-provisioning because it violates user SLOs rather
        than merely wasting money — the convention of [43]'s ranking.
        """
        return (under_weight * (self.accuracy_under + self.timeshare_under)
                + self.accuracy_over + self.timeshare_over)


def evaluate_elasticity(demand: StepSeries, supply: StepSeries,
                        start: float, end: float) -> ElasticityReport:
    """Compute the SPEC elasticity metrics over ``[start, end)``."""
    if end <= start:
        raise ValueError("end must exceed start")
    horizon = end - start
    boundaries = sorted({start, end,
                         *(t for t in demand.times if start < t < end),
                         *(t for t in supply.times if start < t < end)})
    under_area = over_area = 0.0
    under_time = over_time = 0.0
    for a, b in zip(boundaries, boundaries[1:]):
        dt = b - a
        d = demand.at(a)
        s = supply.at(a)
        if d > s:
            under_area += (d - s) * dt
            under_time += dt
        elif s > d:
            over_area += (s - d) * dt
            over_time += dt

    # Instability: fraction of time supply and demand trend oppositely.
    unstable_time = 0.0
    for a, b in zip(boundaries, boundaries[1:]):
        mid_next = min(b, end)
        d_trend = demand.at(mid_next) - demand.at(a)
        s_trend = supply.at(mid_next) - supply.at(a)
        if d_trend * s_trend < 0:
            unstable_time += b - a

    supply_changes = [t for t in supply.change_times() if start < t < end]
    return ElasticityReport(
        accuracy_under=under_area / horizon,
        accuracy_over=over_area / horizon,
        timeshare_under=under_time / horizon,
        timeshare_over=over_time / horizon,
        instability=unstable_time / horizon,
        jitter=len(supply_changes) / horizon,
    )
