"""Autoscaling substrate (S6): autoscalers and elasticity metrics.

The general and workflow-specific autoscaler families of [43], the
SPEC elasticity metric set of [32], and a controller binding them to
the datacenter substrate.
"""

from .autoscalers import (
    AUTOSCALERS,
    AdaptAutoscaler,
    Autoscaler,
    AutoscalerInput,
    ConPaaSAutoscaler,
    HistAutoscaler,
    ReactAutoscaler,
    RegAutoscaler,
    TokenAutoscaler,
)
from .controller import AutoscalingController
from .elasticity import ElasticityReport, StepSeries, evaluate_elasticity

__all__ = [
    "AutoscalerInput",
    "Autoscaler",
    "ReactAutoscaler",
    "AdaptAutoscaler",
    "HistAutoscaler",
    "RegAutoscaler",
    "ConPaaSAutoscaler",
    "TokenAutoscaler",
    "AUTOSCALERS",
    "StepSeries",
    "ElasticityReport",
    "evaluate_elasticity",
    "AutoscalingController",
]
