"""Autoscalers: the policy families of Ilyushkin et al. [43] (C6, C7).

The paper's autoscaler study compared general autoscalers (React,
Adapt, Hist, Reg, ConPaaS) with workflow-specific ones (Token, Plan)
and found that *no single autoscaler dominates* — the result that
motivates portfolio selection of autoscalers (C7: "selecting a good
autoscaler that matches the needs of the current workload").

Each autoscaler maps an :class:`AutoscalerInput` demand snapshot to a
target machine count.  The implementations are faithful to the
*decision structure* of the originals (reactive, trend-damped,
histogram-predictive, regression-predictive, threshold-hysteretic, and
parallelism-token-based); their original deployment glue is out of
scope.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Protocol

__all__ = [
    "AutoscalerInput",
    "Autoscaler",
    "ReactAutoscaler",
    "AdaptAutoscaler",
    "HistAutoscaler",
    "RegAutoscaler",
    "ConPaaSAutoscaler",
    "TokenAutoscaler",
    "AUTOSCALERS",
]


@dataclass(frozen=True)
class AutoscalerInput:
    """Demand snapshot passed to an autoscaler at each evaluation.

    Attributes:
        time: Current time.
        queued_cores: Cores demanded by queued (eligible) tasks.
        running_cores: Cores of currently running tasks.
        eligible_tasks: Number of tasks ready to run (workflow tokens).
        soon_eligible_tasks: Tasks one dependency away from eligibility
            (the Token autoscaler's look-ahead).
        machines: Currently leased machines.
        cores_per_machine: Capacity of one machine.
        max_machines: Upper bound on the lease.
    """

    time: float
    queued_cores: int
    running_cores: int
    eligible_tasks: int
    soon_eligible_tasks: int
    machines: int
    cores_per_machine: int
    max_machines: int

    @property
    def demand_cores(self) -> int:
        """Total instantaneous demand in cores."""
        return self.queued_cores + self.running_cores

    def machines_for(self, cores: float) -> int:
        """Machines needed to serve ``cores``, clamped to the bounds."""
        needed = math.ceil(max(0.0, cores) / max(1, self.cores_per_machine))
        return max(0, min(needed, self.max_machines))


class Autoscaler(Protocol):
    """Maps a demand snapshot to a target machine count."""

    name: str

    def decide(self, snapshot: AutoscalerInput) -> int:
        """Target number of machines for the next interval."""
        ...  # pragma: no cover


class ReactAutoscaler:
    """Purely reactive: provision exactly the current demand.

    The simplest general autoscaler in [43]: no prediction, immediate
    response, hence fast on rising load and wasteful on spiky load.
    """

    name = "react"

    def decide(self, snapshot: AutoscalerInput) -> int:
        """Provision exactly the current demand."""
        return snapshot.machines_for(snapshot.demand_cores)


class AdaptAutoscaler:
    """Trend-damped reactive scaling.

    Moves toward current demand but limits the per-step change to a
    fraction of the gap, weighted by how consistently demand has been
    moving in one direction — an adaptation of Ali-Eldin's controller.
    """

    name = "adapt"

    def __init__(self, damping: float = 0.5, history: int = 5) -> None:
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        self.damping = damping
        self._demands: deque[int] = deque(maxlen=max(2, history))

    def decide(self, snapshot: AutoscalerInput) -> int:
        """Move toward demand, damped unless the trend is consistent."""
        self._demands.append(snapshot.demand_cores)
        target = snapshot.machines_for(snapshot.demand_cores)
        gap = target - snapshot.machines
        if len(self._demands) >= 2:
            diffs = [b - a for a, b in zip(self._demands, list(self._demands)[1:])]
            consistent = (all(d >= 0 for d in diffs)
                          or all(d <= 0 for d in diffs))
            weight = 1.0 if consistent else self.damping
        else:
            weight = self.damping
        step = int(math.copysign(math.ceil(abs(gap) * weight), gap)) if gap else 0
        return max(0, min(snapshot.machines + step, snapshot.max_machines))


class HistAutoscaler:
    """Histogram-based prediction (after Urgaonkar et al.).

    Keeps a histogram of observed demand and provisions the
    ``percentile`` of history — robust to spikes, slow to adopt new
    regimes.
    """

    name = "hist"

    def __init__(self, percentile: float = 0.95, window: int = 100) -> None:
        if not 0.0 < percentile <= 1.0:
            raise ValueError("percentile must be in (0, 1]")
        self.percentile = percentile
        self._history: deque[int] = deque(maxlen=window)

    def decide(self, snapshot: AutoscalerInput) -> int:
        """Provision the configured percentile of demand history."""
        self._history.append(snapshot.demand_cores)
        ordered = sorted(self._history)
        rank = min(len(ordered) - 1,
                   max(0, math.ceil(self.percentile * len(ordered)) - 1))
        return snapshot.machines_for(ordered[rank])


class RegAutoscaler:
    """Linear-regression extrapolation of demand (after Iqbal et al.).

    Fits a least-squares line through the recent demand history and
    provisions for the value predicted one horizon ahead.
    """

    name = "reg"

    def __init__(self, window: int = 10, horizon: float = 1.0) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.horizon = horizon
        self._samples: deque[tuple[float, int]] = deque(maxlen=window)

    def decide(self, snapshot: AutoscalerInput) -> int:
        """Provision the regression-extrapolated demand."""
        self._samples.append((snapshot.time, snapshot.demand_cores))
        if len(self._samples) < 2:
            return snapshot.machines_for(snapshot.demand_cores)
        times = [t for t, _ in self._samples]
        values = [v for _, v in self._samples]
        n = len(times)
        mean_t = sum(times) / n
        mean_v = sum(values) / n
        denom = sum((t - mean_t) ** 2 for t in times)
        if denom == 0:
            return snapshot.machines_for(mean_v)
        slope = sum((t - mean_t) * (v - mean_v)
                    for t, v in self._samples) / denom
        step = times[-1] - times[-2]
        predicted = mean_v + slope * (times[-1] + self.horizon * step - mean_t)
        return snapshot.machines_for(max(predicted,
                                         float(snapshot.running_cores)))


class ConPaaSAutoscaler:
    """Threshold-plus-hysteresis scaling (after the ConPaaS platform).

    Scales up when utilization of the current lease exceeds ``high``,
    down when it falls below ``low``; in between it holds, avoiding
    oscillation.
    """

    name = "conpaas"

    def __init__(self, low: float = 0.3, high: float = 0.8) -> None:
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        self.low = low
        self.high = high

    def decide(self, snapshot: AutoscalerInput) -> int:
        """Scale up/down on utilization thresholds, hold in between."""
        capacity = max(1, snapshot.machines * snapshot.cores_per_machine)
        utilization = snapshot.demand_cores / capacity
        if utilization > self.high:
            return min(snapshot.machines + max(1, snapshot.machines // 2),
                       snapshot.max_machines)
        if utilization < self.low:
            return max(snapshot.machines_for(snapshot.demand_cores),
                       snapshot.machines - max(1, snapshot.machines // 4), 0)
        return snapshot.machines


class TokenAutoscaler:
    """Workflow-aware token scaling (the Token policy of [43]).

    Provisions for the current level of parallelism of the workflow
    mix: each eligible task is a token, and tasks one dependency away
    count fractionally (``lookahead``) since they may become eligible
    within the provisioning interval.
    """

    name = "token"

    def __init__(self, lookahead: float = 0.5) -> None:
        if not 0.0 <= lookahead <= 1.0:
            raise ValueError("lookahead must be in [0, 1]")
        self.lookahead = lookahead

    def decide(self, snapshot: AutoscalerInput) -> int:
        """Provision for the current workflow parallelism (tokens)."""
        tokens = (snapshot.eligible_tasks
                  + self.lookahead * snapshot.soon_eligible_tasks)
        mean_cores = (snapshot.queued_cores / snapshot.eligible_tasks
                      if snapshot.eligible_tasks else snapshot.cores_per_machine)
        cores = tokens * mean_cores + snapshot.running_cores
        return snapshot.machines_for(cores)


#: Name -> zero-argument factory for every autoscaler family.
AUTOSCALERS = {
    "react": ReactAutoscaler,
    "adapt": AdaptAutoscaler,
    "hist": HistAutoscaler,
    "reg": RegAutoscaler,
    "conpaas": ConPaaSAutoscaler,
    "token": TokenAutoscaler,
}
