"""Trusted provenance recording for e-Science pipelines (§6.2).

"Trusted data-collection and -processing pipelines, which are crucial
when the number of laboratories involved in processing increases,
could leverage ecosystems that use novel trust-ensuring techniques for
provenance recording and checking (e.g., the emerging blockchain
family of technologies)."

:class:`ProvenanceChain` is a hash-chained, append-only log of workflow
execution events: each entry commits to its predecessor, so any
retroactive tampering breaks verification — the property the paper
wants from "blockchain-family" techniques, without the consensus
machinery a single-writer scientific log does not need.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .workflow import Workflow

__all__ = ["ProvenanceEntry", "ProvenanceChain", "record_workflow_run"]

_GENESIS = "0" * 64


def _hash_entry(index: int, previous_hash: str, kind: str,
                payload: Mapping[str, Any]) -> str:
    body = json.dumps({"index": index, "previous": previous_hash,
                       "kind": kind, "payload": dict(payload)},
                      sort_keys=True)
    return hashlib.sha256(body.encode()).hexdigest()


@dataclass(frozen=True)
class ProvenanceEntry:
    """One committed event in the chain."""

    index: int
    previous_hash: str
    kind: str
    payload: Mapping[str, Any]
    entry_hash: str

    def recompute_hash(self) -> str:
        """The hash this entry *should* have given its contents."""
        return _hash_entry(self.index, self.previous_hash, self.kind,
                           self.payload)


class ProvenanceChain:
    """A tamper-evident, append-only provenance log."""

    def __init__(self, pipeline: str) -> None:
        self.pipeline = pipeline
        self._entries: list[ProvenanceEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Sequence[ProvenanceEntry]:
        """All committed entries, oldest first."""
        return tuple(self._entries)

    @property
    def head_hash(self) -> str:
        """Hash of the newest entry (genesis constant when empty)."""
        return self._entries[-1].entry_hash if self._entries else _GENESIS

    def record(self, kind: str, payload: Mapping[str, Any],
               ) -> ProvenanceEntry:
        """Append one event, committing to the current head."""
        index = len(self._entries)
        previous = self.head_hash
        entry = ProvenanceEntry(
            index=index, previous_hash=previous, kind=kind,
            payload=dict(payload),
            entry_hash=_hash_entry(index, previous, kind, payload))
        self._entries.append(entry)
        return entry

    def verify(self) -> list[int]:
        """Indices of entries whose commitments no longer hold.

        Empty list means the chain is intact; any mutation of a
        payload, a reordering, or a removal surfaces here.
        """
        broken = []
        previous = _GENESIS
        for position, entry in enumerate(self._entries):
            if (entry.index != position
                    or entry.previous_hash != previous
                    or entry.recompute_hash() != entry.entry_hash):
                broken.append(position)
            previous = entry.entry_hash
        return broken

    def is_intact(self) -> bool:
        """Whether no tampering is detectable."""
        return not self.verify()


def record_workflow_run(chain: ProvenanceChain,
                        workflow: Workflow) -> list[ProvenanceEntry]:
    """Commit a finished workflow's execution facts to the chain.

    One entry per task (inputs: dependency names; facts: machine,
    start, finish) plus a closing summary entry — the audit trail a
    multi-laboratory pipeline needs.
    """
    if not workflow.is_finished:
        raise ValueError(f"workflow {workflow.name!r} has unfinished tasks")
    entries = [
        chain.record("task", {
            "workflow": workflow.name,
            "task": task.name,
            "inputs": sorted(d.name for d in task.dependencies),
            "machine": task.machine or "",
            "start": task.start_time,
            "finish": task.finish_time,
        })
        for task in workflow.walk_topological()]
    entries.append(chain.record("workflow-complete", {
        "workflow": workflow.name,
        "tasks": len(workflow),
        "makespan": workflow.makespan,
    }))
    return entries
