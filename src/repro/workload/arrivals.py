"""Arrival processes, including the bursty ones grids exhibit (C7, [113]).

The paper (C7) notes that "grid workloads exhibit short-term burstiness"
and that workloads fragment into smaller tasks over long periods [39].
Three arrival processes cover the modeling needs:

- :class:`PoissonArrivals` — the memoryless baseline.
- :class:`MMPPArrivals` — a 2-state Markov-Modulated Poisson Process,
  the standard parsimonious model of short-term burstiness.
- :class:`WeibullArrivals` — heavy-ish tailed inter-arrivals.

Burstiness is quantified by the index of dispersion for counts and the
peak-to-mean rate ratio.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Protocol, Sequence

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "WeibullArrivals",
    "index_of_dispersion",
    "peak_to_mean_ratio",
]


class ArrivalProcess(Protocol):
    """Anything that can produce a stream of arrival times."""

    def arrival_times(self, horizon: float) -> list[float]:
        """All arrival instants in ``[0, horizon)``."""
        ...  # pragma: no cover


class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate`` per time unit."""

    def __init__(self, rate: float, rng: random.Random | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.rng = rng or random.Random(0)

    def inter_arrivals(self) -> Iterator[float]:
        """Infinite stream of exponential inter-arrival gaps."""
        while True:
            yield self.rng.expovariate(self.rate)

    def arrival_times(self, horizon: float) -> list[float]:
        """All arrival instants in ``[0, horizon)``."""
        times = []
        t = 0.0
        for gap in self.inter_arrivals():
            t += gap
            if t >= horizon:
                break
            times.append(t)
        return times


class MMPPArrivals:
    """2-state Markov-Modulated Poisson Process.

    The process alternates between a *quiet* state (low rate) and a
    *burst* state (high rate); state holding times are exponential.
    With ``burst_rate >> quiet_rate`` this reproduces the short-term
    burstiness of grid traces [113] while keeping only four parameters.
    """

    def __init__(self, quiet_rate: float, burst_rate: float,
                 quiet_duration: float, burst_duration: float,
                 rng: random.Random | None = None) -> None:
        if quiet_rate <= 0 or burst_rate <= 0:
            raise ValueError("rates must be positive")
        if quiet_duration <= 0 or burst_duration <= 0:
            raise ValueError("durations must be positive")
        self.quiet_rate = quiet_rate
        self.burst_rate = burst_rate
        self.quiet_duration = quiet_duration
        self.burst_duration = burst_duration
        self.rng = rng or random.Random(0)

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate."""
        total = self.quiet_duration + self.burst_duration
        return (self.quiet_rate * self.quiet_duration
                + self.burst_rate * self.burst_duration) / total

    def arrival_times(self, horizon: float) -> list[float]:
        """All arrival instants in ``[0, horizon)``."""
        times: list[float] = []
        t = 0.0
        in_burst = False
        while t < horizon:
            duration = self.rng.expovariate(
                1.0 / (self.burst_duration if in_burst else self.quiet_duration))
            rate = self.burst_rate if in_burst else self.quiet_rate
            segment_end = min(t + duration, horizon)
            arrival = t + self.rng.expovariate(rate)
            while arrival < segment_end:
                times.append(arrival)
                arrival += self.rng.expovariate(rate)
            t = segment_end
            in_burst = not in_burst
        return times


class WeibullArrivals:
    """Weibull inter-arrival times; ``shape < 1`` gives bursty clumping."""

    def __init__(self, scale: float, shape: float,
                 rng: random.Random | None = None) -> None:
        if scale <= 0 or shape <= 0:
            raise ValueError("scale and shape must be positive")
        self.scale = scale
        self.shape = shape
        self.rng = rng or random.Random(0)

    def arrival_times(self, horizon: float) -> list[float]:
        """All arrival instants in ``[0, horizon)``."""
        times = []
        t = 0.0
        while True:
            t += self.rng.weibullvariate(self.scale, self.shape)
            if t >= horizon:
                return times
            times.append(t)


# ---------------------------------------------------------------------------
# Burstiness metrics
# ---------------------------------------------------------------------------
def _bin_counts(arrivals: Sequence[float], horizon: float,
                bin_width: float) -> list[int]:
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    n_bins = max(1, int(math.ceil(horizon / bin_width)))
    counts = [0] * n_bins
    for t in arrivals:
        index = min(n_bins - 1, int(t / bin_width))
        counts[index] += 1
    return counts


def index_of_dispersion(arrivals: Sequence[float], horizon: float,
                        bin_width: float) -> float:
    """Variance-to-mean ratio of per-bin counts; 1.0 for Poisson, >1 bursty."""
    counts = _bin_counts(arrivals, horizon, bin_width)
    n = len(counts)
    mean = sum(counts) / n
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in counts) / n
    return variance / mean


def peak_to_mean_ratio(arrivals: Sequence[float], horizon: float,
                       bin_width: float) -> float:
    """Max per-bin rate over mean rate; large values signal bursts."""
    counts = _bin_counts(arrivals, horizon, bin_width)
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    return max(counts) / mean
