"""WfCommons WfFormat importer: published workflow instances as workloads.

WfCommons distributes real workflow traces (Montage, Epigenomics,
LIGO/Inspiral, ...) as WfFormat JSON documents — tasks with
parent/child edges, the files they read and write, and per-task
execution measurements.  This module compiles such a document into the
repo's :class:`~repro.workload.workflow.Workflow` model so any
published instance replays through the scenario kernel
(``python -m repro run --spec``) with a pinned digest.

Supported subset (WfFormat schema v1.5):

- ``workflow.specification.tasks``: ``id``, ``name``, ``parents``,
  ``children``, ``inputFiles``, ``outputFiles``.
- ``workflow.specification.files``: ``id``, ``sizeInBytes``.
- ``workflow.execution.tasks``: ``id``, ``runtimeInSeconds``,
  ``coreCount``, ``memoryInBytes``.

Everything else (machines, authors, timestamps) is ignored.  File
sizes become :attr:`~repro.workload.task.Task.input_files` /
``output_files`` entries, which the datacenter's
:class:`~repro.datacenter.datastore.DataStore` turns into stage-in
transfer time — so data-aware placement policies can exploit the
instance's real data-flow structure.

Malformed documents raise :class:`WfFormatError` carrying the
offending task id; the CLI maps it to the same ``error: ... / exit 2``
surface as scenario-spec errors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .task import Task
from .workflow import Workflow

__all__ = ["WfFormatError", "load_wfformat", "wfformat_workflow",
           "scenario_from_wfformat"]

#: Bytes per GiB — WfFormat reports memory in bytes, Task.memory is GiB.
_GIB = float(2 ** 30)


class WfFormatError(ValueError):
    """A WfFormat document is malformed.

    Attributes:
        task_id: Id of the offending task, when one can be named.
    """

    def __init__(self, message: str, task_id: str | None = None) -> None:
        super().__init__(message)
        self.task_id = task_id


def load_wfformat(source: Union[str, Path, dict]) -> dict:
    """Load a WfFormat document from a dict, JSON text, or file path.

    A ``dict`` passes through unchanged; a string containing ``{`` or a
    newline is parsed as JSON text; anything else is treated as a path.
    Raises :class:`WfFormatError` on unparseable JSON or a document
    without the ``workflow`` section.
    """
    if isinstance(source, dict):
        document = source
    else:
        text = str(source)
        if not ("{" in text or "\n" in text):
            try:
                text = Path(text).read_text()
            except OSError as exc:
                raise WfFormatError(
                    f"cannot read WfFormat file {source!s}: {exc}") from exc
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WfFormatError(f"invalid WfFormat JSON: {exc}") from exc
    if not isinstance(document, dict) or "workflow" not in document:
        raise WfFormatError(
            "not a WfFormat document: missing top-level 'workflow' section")
    return document


def _file_sizes(specification: dict) -> dict[str, float]:
    sizes: dict[str, float] = {}
    for entry in specification.get("files", []):
        file_id = str(entry.get("id", ""))
        if not file_id:
            raise WfFormatError("file entry without an 'id'")
        size = float(entry.get("sizeInBytes", 0.0))
        if size < 0:
            raise WfFormatError(
                f"file {file_id!r} has negative sizeInBytes {size}")
        sizes[file_id] = size
    return sizes


def _task_files(entry: dict, key: str, sizes: dict[str, float],
                task_id: str) -> dict[str, float]:
    files: dict[str, float] = {}
    for file_id in entry.get(key, []):
        file_id = str(file_id)
        if file_id not in sizes:
            raise WfFormatError(
                f"task {task_id!r} references undeclared file {file_id!r}",
                task_id=task_id)
        files[file_id] = sizes[file_id]
    return files


def wfformat_workflow(document: Union[str, Path, dict], *,
                      runtime_scale: float = 1.0,
                      submit_time: float = 0.0,
                      default_runtime: float = 1.0,
                      default_cores: int = 1,
                      default_memory: float = 1.0) -> Workflow:
    """Compile a WfFormat document into a :class:`Workflow`.

    Tasks are created in a deterministic topological order (Kahn's
    algorithm seeded and expanded in declaration order), so the same
    document always yields the same workflow — and therefore the same
    scenario digest.

    Args:
        document: WfFormat dict, JSON text, or file path.
        runtime_scale: Multiplier applied to every measured runtime
            (time-scaling a large instance down for fast replay).
        submit_time: Submit time of the resulting workflow job.
        default_runtime: Runtime for tasks without execution data.
        default_cores: Core count for tasks without execution data.
        default_memory: Memory (GiB) for tasks without execution data.

    Raises:
        WfFormatError: Unknown parents, cyclic dependencies, undeclared
            or negative-size files — each naming the offending task id.
    """
    document = load_wfformat(document)
    if runtime_scale <= 0:
        raise WfFormatError(
            f"runtime_scale must be positive, got {runtime_scale}")
    section = document.get("workflow", {})
    specification = section.get("specification", section)
    spec_tasks = specification.get("tasks", [])
    if not spec_tasks:
        raise WfFormatError("WfFormat document declares no tasks")
    sizes = _file_sizes(specification)
    execution = {str(entry.get("id", "")): entry
                 for entry in section.get("execution", {}).get("tasks", [])}

    entries: dict[str, dict] = {}
    order: list[str] = []
    for entry in spec_tasks:
        task_id = str(entry.get("id", ""))
        if not task_id:
            raise WfFormatError("task entry without an 'id'")
        if task_id in entries:
            raise WfFormatError(f"duplicate task id {task_id!r}",
                                task_id=task_id)
        entries[task_id] = entry
        order.append(task_id)

    parents: dict[str, list[str]] = {}
    children: dict[str, list[str]] = {tid: [] for tid in order}
    for task_id in order:
        declared = [str(p) for p in entries[task_id].get("parents", [])]
        for parent in declared:
            if parent not in entries:
                raise WfFormatError(
                    f"task {task_id!r} names unknown parent {parent!r}",
                    task_id=task_id)
            children[parent].append(task_id)
        parents[task_id] = declared

    # Deterministic Kahn order: frontier seeded in declaration order,
    # children appended in declaration order, FIFO expansion.
    indegree = {tid: len(parents[tid]) for tid in order}
    frontier = [tid for tid in order if indegree[tid] == 0]
    topo: list[str] = []
    cursor = 0
    while cursor < len(frontier):
        current = frontier[cursor]
        cursor += 1
        topo.append(current)
        for child in children[current]:
            indegree[child] -= 1
            if indegree[child] == 0:
                frontier.append(child)
    if len(topo) != len(order):
        stuck = next(tid for tid in order if indegree[tid] > 0)
        raise WfFormatError(
            f"cyclic dependencies: task {stuck!r} never becomes eligible",
            task_id=stuck)

    name = str(document.get("name", "wfformat"))
    workflow = Workflow(name, submit_time=submit_time)
    built: dict[str, Task] = {}
    for task_id in topo:
        entry = entries[task_id]
        measured = execution.get(task_id, {})
        runtime = float(measured.get("runtimeInSeconds", default_runtime))
        if runtime < 0:
            raise WfFormatError(
                f"task {task_id!r} has negative runtimeInSeconds {runtime}",
                task_id=task_id)
        cores = int(measured.get("coreCount", default_cores))
        memory_bytes = measured.get("memoryInBytes")
        memory = (float(memory_bytes) / _GIB if memory_bytes is not None
                  else default_memory)
        task = Task(
            runtime=runtime * runtime_scale,
            cores=max(1, cores),
            memory=memory,
            submit_time=submit_time,
            name=task_id,
            kind=str(entry.get("name", "wfformat")),
            input_files=_task_files(entry, "inputFiles", sizes, task_id),
            output_files=_task_files(entry, "outputFiles", sizes, task_id),
        )
        workflow.add_task(task, [built[p] for p in parents[task_id]])
        built[task_id] = task
    return workflow


def scenario_from_wfformat(document: Union[str, Path, dict], *,
                           name: str | None = None,
                           seed: int = 42,
                           machines: int = 8,
                           cores: int = 8,
                           link_bandwidth: float = 1.0e8,
                           runtime_scale: float = 1.0,
                           placement: str = "data-local"):
    """Wrap a WfFormat document in a runnable ``ScenarioSpec``.

    The document is embedded inline in the spec (``params.document``),
    so the resulting spec file is self-contained and digest-pinnable.
    ``placement`` defaults to the data-locality policy so the
    instance's file structure actually shapes placement, and the
    default ``link_bandwidth`` (100 MB/s) is slow enough that transfer
    time is visible next to task runtimes.
    """
    # Imported lazily: scenario.spec imports this module's builders.
    from ..scenario.spec import (
        ClusterSpec,
        ScenarioSpec,
        SchedulerSpec,
        TopologySpec,
        WorkloadSpec,
    )

    document = load_wfformat(document)
    wfformat_workflow(document)  # validate eagerly: fail at build time
    return ScenarioSpec(
        name=name or str(document.get("name", "wfformat")),
        seed=seed,
        topology=TopologySpec(clusters=(
            ClusterSpec(name="cluster-0", machines=machines, cores=cores,
                        link_bandwidth=link_bandwidth),)),
        workload=WorkloadSpec(kind="wfformat", params={
            "document": document,
            "runtime_scale": runtime_scale,
        }),
        scheduler=SchedulerSpec(placement=placement),
    )
