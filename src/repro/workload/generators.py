"""Synthetic workload generators with the paper's long-term trends.

Two phenomena from the paper shape these generators:

- *Fragmentation* [39] (§6.5): over long periods, workloads fragment
  into ever-smaller tasks — so :class:`WorkloadGenerator` supports a
  fragmentation trend that shrinks task runtimes while increasing task
  counts, holding total demand roughly constant.
- *Vicissitude* [22] (C3): "how each of these challenges becomes more
  prominent at seemingly arbitrary moments of time" — modeled by
  :class:`VicissitudeMix`, a phase schedule that switches the
  application mix (compute-, data-, latency-bound) over time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from .arrivals import ArrivalProcess, PoissonArrivals
from .task import BagOfTasks, Job, Task
from .workflow import (
    Workflow,
    epigenomics_workflow,
    ligo_workflow,
    montage_workflow,
)

__all__ = [
    "TaskProfile",
    "VicissitudePhase",
    "VicissitudeMix",
    "WorkloadGenerator",
    "science_workload",
]


@dataclass(frozen=True)
class TaskProfile:
    """Statistical description of one application class (C4 heterogeneity).

    ``runtime_mean``/``runtime_sigma`` parameterize a lognormal runtime;
    ``cores_choices`` the rigid core demand; ``memory_mean`` the
    footprint.
    """

    kind: str
    runtime_mean: float
    runtime_sigma: float = 0.5
    cores_choices: tuple[int, ...] = (1,)
    memory_mean: float = 1.0

    def sample(self, rng: random.Random, runtime_scale: float = 1.0) -> Task:
        """Draw one task from the profile."""
        runtime = max(0.01, rng.lognormvariate(0, self.runtime_sigma)
                      * self.runtime_mean * runtime_scale)
        return Task(runtime=runtime,
                    cores=rng.choice(self.cores_choices),
                    memory=max(0.1, rng.gauss(self.memory_mean,
                                              self.memory_mean / 4)),
                    kind=self.kind)


#: Default heterogeneous profiles: web-like, analytics-like, HPC-like.
DEFAULT_PROFILES: tuple[TaskProfile, ...] = (
    TaskProfile("web", runtime_mean=0.5, cores_choices=(1,), memory_mean=0.5),
    TaskProfile("analytics", runtime_mean=30.0, cores_choices=(1, 2, 4),
                memory_mean=4.0),
    TaskProfile("hpc", runtime_mean=120.0, cores_choices=(4, 8, 16),
                memory_mean=8.0),
)


@dataclass(frozen=True)
class VicissitudePhase:
    """One phase of a workload mix: weights over task profiles."""

    duration: float
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")
        if not self.weights or any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative and non-empty")
        if sum(self.weights) == 0:
            raise ValueError("at least one weight must be positive")


class VicissitudeMix:
    """A cyclic schedule of phases, each with its own application mix."""

    def __init__(self, profiles: Sequence[TaskProfile],
                 phases: Sequence[VicissitudePhase]) -> None:
        if not phases:
            raise ValueError("at least one phase is required")
        for phase in phases:
            if len(phase.weights) != len(profiles):
                raise ValueError("phase weights must match profile count")
        self.profiles = tuple(profiles)
        self.phases = tuple(phases)
        self._cycle = sum(p.duration for p in phases)

    def phase_at(self, time: float) -> VicissitudePhase:
        """The phase active at ``time`` (the schedule cycles)."""
        offset = time % self._cycle
        for phase in self.phases:
            if offset < phase.duration:
                return phase
            offset -= phase.duration
        return self.phases[-1]  # pragma: no cover - float edge

    def sample(self, time: float, rng: random.Random,
               runtime_scale: float = 1.0) -> Task:
        """Draw a task according to the mix active at ``time``."""
        phase = self.phase_at(time)
        profile = rng.choices(self.profiles, weights=phase.weights, k=1)[0]
        return profile.sample(rng, runtime_scale)

    @staticmethod
    def steady(profiles: Sequence[TaskProfile] = DEFAULT_PROFILES,
               weights: Sequence[float] | None = None) -> "VicissitudeMix":
        """A degenerate single-phase (non-vicissitudinous) mix."""
        weights = tuple(weights) if weights else tuple([1.0] * len(profiles))
        return VicissitudeMix(profiles,
                              [VicissitudePhase(duration=1.0, weights=weights)])


class WorkloadGenerator:
    """Generates timestamped jobs from an arrival process and a mix.

    Args:
        arrivals: Job arrival process.
        mix: Application mix, possibly phase-switching (vicissitude).
        tasks_per_job: Mean size of each bag-of-tasks (geometric).
        fragmentation: Long-term fragmentation factor f >= 0.  At time
            ``t`` (fraction of horizon), runtimes scale by ``1/(1+f*t)``
            while the expected task count scales by ``1+f*t`` — total
            demand stays constant but tasks get smaller [39].
        rng: Source of randomness.
    """

    def __init__(self, arrivals: ArrivalProcess,
                 mix: VicissitudeMix | None = None,
                 tasks_per_job: float = 5.0,
                 fragmentation: float = 0.0,
                 rng: random.Random | None = None) -> None:
        if tasks_per_job < 1:
            raise ValueError("tasks_per_job must be >= 1")
        if fragmentation < 0:
            raise ValueError("fragmentation must be non-negative")
        self.arrivals = arrivals
        self.mix = mix or VicissitudeMix.steady()
        self.tasks_per_job = tasks_per_job
        self.fragmentation = fragmentation
        self.rng = rng or random.Random(0)

    def _job_size(self, growth: float) -> int:
        """Geometric job size with mean ``tasks_per_job * growth``."""
        mean = self.tasks_per_job * growth
        p = 1.0 / mean
        size = 1
        while self.rng.random() > p:
            size += 1
        return size

    def generate(self, horizon: float) -> list[Job]:
        """All jobs submitted in ``[0, horizon)``, ordered by submit time."""
        jobs: list[Job] = []
        for index, submit in enumerate(self.arrivals.arrival_times(horizon)):
            progress = submit / horizon
            growth = 1.0 + self.fragmentation * progress
            scale = 1.0 / growth
            size = self._job_size(growth)
            tasks = [self.mix.sample(submit, self.rng, runtime_scale=scale)
                     for _ in range(size)]
            jobs.append(BagOfTasks(f"job-{index}", tasks,
                                   user=f"user-{index % 10}",
                                   submit_time=submit))
        return jobs


def science_workload(n_workflows: int = 10, rate: float = 0.01,
                     seed: int = 0) -> list[Workflow]:
    """An e-Science mix of Montage / LIGO / Epigenomics workflows (§6.2)."""
    if n_workflows < 1:
        raise ValueError("n_workflows must be >= 1")
    rng = random.Random(seed)
    arrivals = PoissonArrivals(rate, rng=random.Random(seed + 1))
    factories: tuple[Callable[..., Workflow], ...] = (
        montage_workflow, ligo_workflow, epigenomics_workflow)
    submits = iter(arrivals.arrival_times(horizon=n_workflows / rate * 2))
    workflows = []
    for i in range(n_workflows):
        submit = next(submits, float(i) / rate)
        factory = factories[i % len(factories)]
        workflow = factory(rng=random.Random(seed + 10 + i),
                           submit_time=submit)
        workflow.name = f"{workflow.name}-{i}"
        workflows.append(workflow)
    return workflows
