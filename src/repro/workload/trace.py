"""Grid Workloads Archive (GWA) trace support (paper [139], C16).

The paper's group maintains the Grid Workloads Archive, distributing
real traces in the Grid Workloads Format (GWF): a whitespace-separated
text format with ``#`` comment headers, one job per line.  This module
implements a documented subset of GWF — the fields every published
analysis of the archive uses — with a reader, a writer, round-trip
fidelity, conversion to :class:`~repro.workload.task.Job` objects, and
the summary statistics used to characterize traces ([107], [39]).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from .task import BagOfTasks, Job, Task

__all__ = ["GWFRecord", "GWF_FIELDS", "read_gwf", "write_gwf",
           "records_to_jobs", "jobs_to_records", "trace_statistics",
           "downsample_records", "rescale_records"]

#: Field order of the supported GWF subset (names follow the archive docs).
GWF_FIELDS: tuple[str, ...] = (
    "JobID", "SubmitTime", "WaitTime", "RunTime", "NProcs",
    "ReqNProcs", "ReqMemory", "Status", "UserID", "JobStructure",
)

#: GWF status code for a successfully completed job.
STATUS_COMPLETED = 1
#: GWF status code for a failed job.
STATUS_FAILED = 0
#: GWF missing-value marker.
MISSING = -1


@dataclass(frozen=True)
class GWFRecord:
    """One GWF line: a job (or bag-of-tasks member) observation."""

    job_id: int
    submit_time: float
    wait_time: float
    run_time: float
    n_procs: int
    req_n_procs: int = MISSING
    req_memory: float = MISSING
    status: int = STATUS_COMPLETED
    user_id: str = "U0"
    job_structure: str = "UNITARY"

    def to_line(self) -> str:
        """Serialize as one whitespace-separated GWF line."""
        return " ".join(str(v) for v in (
            self.job_id, self.submit_time, self.wait_time, self.run_time,
            self.n_procs, self.req_n_procs, self.req_memory, self.status,
            self.user_id, self.job_structure))

    @classmethod
    def from_line(cls, line: str) -> "GWFRecord":
        """Parse one GWF line; raises ``ValueError`` on malformed input."""
        parts = line.split()
        if len(parts) != len(GWF_FIELDS):
            raise ValueError(
                f"expected {len(GWF_FIELDS)} fields, got {len(parts)}: {line!r}")
        return cls(
            job_id=int(parts[0]),
            submit_time=float(parts[1]),
            wait_time=float(parts[2]),
            run_time=float(parts[3]),
            n_procs=int(parts[4]),
            req_n_procs=int(parts[5]),
            req_memory=float(parts[6]),
            status=int(parts[7]),
            user_id=parts[8],
            job_structure=parts[9],
        )


def write_gwf(records: Iterable[GWFRecord], destination: Path | TextIO,
              comments: Sequence[str] = ()) -> None:
    """Write records in GWF format, with optional ``#`` header comments."""
    own = isinstance(destination, (str, Path))
    handle: TextIO = open(destination, "w") if own else destination
    try:
        for comment in comments:
            handle.write(f"# {comment}\n")
        handle.write("# " + " ".join(GWF_FIELDS) + "\n")
        for record in records:
            handle.write(record.to_line() + "\n")
    finally:
        if own:
            handle.close()


def read_gwf(source: Path | TextIO | str) -> list[GWFRecord]:
    """Read a GWF trace; comment and blank lines are skipped."""
    if isinstance(source, (str, Path)) and not (
            isinstance(source, str) and "\n" in source):
        with open(source) as handle:
            return _read_lines(handle)
    if isinstance(source, str):
        return _read_lines(io.StringIO(source))
    return _read_lines(source)


def _read_lines(handle: TextIO) -> list[GWFRecord]:
    records = []
    for line in handle:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        records.append(GWFRecord.from_line(stripped))
    return records


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------
def records_to_jobs(records: Iterable[GWFRecord]) -> list[Job]:
    """Convert GWF records to simulator jobs (one single-task job each)."""
    jobs = []
    for record in records:
        task = Task(runtime=max(0.0, record.run_time),
                    cores=max(1, record.n_procs),
                    submit_time=record.submit_time,
                    name=f"gwf-{record.job_id}")
        jobs.append(BagOfTasks(f"gwf-job-{record.job_id}", [task],
                               user=record.user_id,
                               submit_time=record.submit_time))
    return jobs


def jobs_to_records(jobs: Iterable[Job]) -> list[GWFRecord]:
    """Convert finished (or pending) jobs back to GWF records."""
    records = []
    job_id = 0
    for job in jobs:
        for task in job:
            job_id += 1
            wait = (task.start_time - task.submit_time
                    if task.start_time is not None else MISSING)
            records.append(GWFRecord(
                job_id=job_id,
                submit_time=task.submit_time,
                wait_time=wait,
                run_time=task.runtime,
                n_procs=task.cores,
                req_n_procs=task.cores,
                req_memory=task.memory,
                status=STATUS_COMPLETED,
                user_id=job.user,
                job_structure=("BOT" if len(job.tasks) > 1 else "UNITARY"),
            ))
    return records


# ---------------------------------------------------------------------------
# Trace characterization ([107]: "How are Real Grids Used?")
# ---------------------------------------------------------------------------
def trace_statistics(records: Sequence[GWFRecord]) -> dict[str, float]:
    """Summary statistics used to characterize archive traces.

    Returns job count, distinct users, total core-seconds, mean/max
    runtime, mean inter-arrival gap, bag-of-tasks fraction, and the
    dominant-user load share (the paper's pioneering observation [107]
    that few users dominate grid load).
    """
    if not records:
        raise ValueError("empty trace")
    n = len(records)
    runtimes = [r.run_time for r in records]
    submits = sorted(r.submit_time for r in records)
    gaps = [b - a for a, b in zip(submits, submits[1:])]
    by_user: dict[str, float] = {}
    for record in records:
        by_user[record.user_id] = (by_user.get(record.user_id, 0.0)
                                   + record.run_time * record.n_procs)
    total_demand = sum(by_user.values())
    dominant_share = (max(by_user.values()) / total_demand
                      if total_demand > 0 else 0.0)
    return {
        "jobs": float(n),
        "users": float(len(by_user)),
        "total_core_seconds": total_demand,
        "mean_runtime": sum(runtimes) / n,
        "max_runtime": max(runtimes),
        "mean_interarrival": (sum(gaps) / len(gaps)) if gaps else 0.0,
        "bot_fraction": sum(
            1 for r in records if r.job_structure == "BOT") / n,
        "dominant_user_share": dominant_share,
    }


# ---------------------------------------------------------------------------
# Trace shaping: downsampling and time scaling (C16 replay controls)
# ---------------------------------------------------------------------------
def downsample_records(records: Sequence[GWFRecord], fraction: float,
                       rng) -> list[GWFRecord]:
    """A seeded random sample of ``fraction`` of the trace, in order.

    Sampling is without replacement via ``rng.sample`` over the record
    indices, then sorted back to the original order — so the same
    ``rng`` state and fraction always select the same jobs, and the
    result is still a valid (submit-ordered, if the input was) trace.
    At least one record is always kept.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(
            f"fraction must be in (0, 1], got {fraction}")
    if not records:
        return []
    k = max(1, round(len(records) * fraction))
    chosen = sorted(rng.sample(range(len(records)), k))
    return [records[i] for i in chosen]


def rescale_records(records: Sequence[GWFRecord], *,
                    time_scale: float = 1.0,
                    runtime_scale: float = 1.0,
                    align: bool = False) -> list[GWFRecord]:
    """Records with the time axis rescaled (trace replay speed control).

    ``time_scale`` multiplies submit times (and recorded wait times,
    where present) — compressing a week-long trace into a short run;
    ``runtime_scale`` independently multiplies runtimes.  ``align``
    first shifts submit times so the earliest becomes zero.  Missing
    markers (negative wait times) are preserved untouched.
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    if runtime_scale <= 0:
        raise ValueError(
            f"runtime_scale must be positive, got {runtime_scale}")
    if not records:
        return []
    base = min(r.submit_time for r in records) if align else 0.0
    rescaled = []
    for record in records:
        rescaled.append(replace(
            record,
            submit_time=(record.submit_time - base) * time_scale,
            wait_time=(record.wait_time * time_scale
                       if record.wait_time >= 0 else record.wait_time),
            run_time=record.run_time * runtime_scale,
        ))
    return rescaled
