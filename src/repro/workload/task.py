"""Tasks, jobs, and bags-of-tasks — the paper's core workload models.

The paper (§3.5) lists "core workload models such as workflows and
dataflows" as imports from Computer Systems; grids and clouds run
bags-of-tasks and workflows ([39], [107], [114]).  A :class:`Task` is
the unit of allocation; a :class:`Job` groups tasks submitted together;
a :class:`BagOfTasks` is a job of independent tasks.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = ["TaskState", "Task", "Job", "BagOfTasks"]

_task_ids = itertools.count(1)


class TaskState(enum.Enum):
    """Lifecycle of a task inside the simulator."""

    PENDING = "pending"
    ELIGIBLE = "eligible"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    SHED = "shed"


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes:
        runtime: Service demand in seconds on one dedicated core-set.
        cores: Number of cores needed simultaneously (rigid allocation).
        memory: Memory footprint in GiB.
        submit_time: Time the task entered the system.
        dependencies: Tasks that must finish before this one is eligible.
        kind: Application class, used by vicissitude mixes and
            heterogeneity-aware policies (C4).
        deadline: Optional absolute completion deadline (banking, C3).
        priority: Admission priority; load shedding drops low values
            first (graceful degradation, C17).
        checkpoint_interval: Work between checkpoints, in task-runtime
            seconds; ``None`` disables checkpointing.
        checkpoint_overhead: Extra service time per checkpoint written.
        input_files: Files the task reads, as ``{name: size_in_bytes}``.
            Inputs not resident on the placement machine are staged in
            over its link before execution (data-aware scheduling, C7).
        output_files: Files the task writes, as ``{name: size_in_bytes}``;
            published to the executing machine's data store on success.
    """

    runtime: float
    cores: int = 1
    memory: float = 1.0
    submit_time: float = 0.0
    name: str = ""
    kind: str = "generic"
    deadline: Optional[float] = None
    priority: int = 0
    checkpoint_interval: Optional[float] = None
    checkpoint_overhead: float = 0.0
    dependencies: list["Task"] = field(default_factory=list)
    input_files: dict[str, float] = field(default_factory=dict)
    output_files: dict[str, float] = field(default_factory=dict)
    task_id: int = field(default_factory=lambda: next(_task_ids))

    state: TaskState = TaskState.PENDING
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    machine: Optional[str] = None
    #: Work preserved at the last checkpoint; a restart resumes here.
    checkpointed_work: float = 0.0
    #: Execution attempts started (retries and hedges each count one).
    attempts: int = 0
    #: Set by load shedding when the task was admitted degraded.
    degraded: bool = False
    #: Marks speculative (hedge) clones so observers can tell them apart.
    speculative: bool = False

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ValueError(f"runtime must be non-negative, got {self.runtime}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.memory < 0:
            raise ValueError(f"memory must be non-negative, got {self.memory}")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {self.checkpoint_interval}")
        if self.checkpoint_overhead < 0:
            raise ValueError(
                f"checkpoint_overhead must be non-negative, got {self.checkpoint_overhead}")
        if self.input_files or self.output_files:
            for file_name, size in (*self.input_files.items(),
                                    *self.output_files.items()):
                if size < 0:
                    raise ValueError(
                        f"file {file_name!r} has negative size {size}")
        if not self.name:
            self.name = f"task-{self.task_id}"

    @property
    def input_bytes(self) -> float:
        """Total bytes of declared input files."""
        return sum(self.input_files.values())

    @property
    def output_bytes(self) -> float:
        """Total bytes of declared output files."""
        return sum(self.output_files.values())

    # ------------------------------------------------------------------
    # Dependency handling
    # ------------------------------------------------------------------
    def add_dependency(self, task: "Task") -> None:
        """Require ``task`` to finish before this one may start."""
        if task is self:
            raise ValueError("a task cannot depend on itself")
        self.dependencies.append(task)

    @property
    def is_eligible(self) -> bool:
        """Whether all dependencies have finished."""
        return all(dep.state is TaskState.FINISHED for dep in self.dependencies)

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def start(self, time: float, machine: str = "") -> None:
        """Mark the task running at ``time`` on ``machine``."""
        if self.state is TaskState.RUNNING:
            raise RuntimeError(f"{self.name} is already running")
        if self.state is TaskState.FINISHED:
            raise RuntimeError(f"{self.name} has already finished")
        self.state = TaskState.RUNNING
        self.start_time = time
        self.machine = machine or None
        self.attempts += 1

    def finish(self, time: float) -> None:
        """Mark the task finished at ``time``."""
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"{self.name} is not running")
        self.state = TaskState.FINISHED
        self.finish_time = time

    def fail(self, time: float) -> None:
        """Mark the task failed at ``time``; it may later restart."""
        self.state = TaskState.FAILED
        self.finish_time = time

    def reset_for_retry(self) -> None:
        """Return a failed task to the pending state for re-execution.

        ``checkpointed_work`` survives the reset: a restart resumes
        from the last checkpoint (shared-storage semantics), not from
        scratch.
        """
        if self.state is not TaskState.FAILED:
            raise RuntimeError(f"{self.name} has not failed")
        self.state = TaskState.PENDING
        self.start_time = None
        self.finish_time = None
        self.machine = None

    # ------------------------------------------------------------------
    # Checkpoint/restart (C17)
    # ------------------------------------------------------------------
    @property
    def remaining_work(self) -> float:
        """Runtime still to execute after the last checkpoint."""
        return max(0.0, self.runtime - self.checkpointed_work)

    def checkpoint_adjusted_work(self) -> float:
        """Remaining work plus the checkpoint writes that fall inside it.

        This is the machine-independent numerator of
        :meth:`Machine.effective_runtime`; placement kernels divide it
        by a whole fleet's speed column at once, so it must stay the
        single source of truth for the checkpoint adjustment.
        """
        remaining = self.remaining_work
        if self.checkpoint_interval is not None and remaining > 0:
            n_checkpoints = max(
                0, math.ceil(remaining / self.checkpoint_interval) - 1)
            remaining += n_checkpoints * self.checkpoint_overhead
        return remaining

    def record_progress(self, work_done: float) -> tuple[float, float]:
        """Fold ``work_done`` (since the last restart) into checkpoints.

        Returns ``(preserved, lost)``: how much of the new work survived
        into ``checkpointed_work`` and how much must be redone.  Without
        a checkpoint interval everything is lost.
        """
        if work_done < 0:
            raise ValueError(f"work_done must be non-negative, got {work_done}")
        if self.checkpoint_interval is None:
            return 0.0, work_done
        total = min(self.runtime, self.checkpointed_work + work_done)
        # The 1e-9 guards against float noise just under a boundary.
        boundary = ((total + 1e-9) // self.checkpoint_interval
                    ) * self.checkpoint_interval
        preserved = max(0.0, boundary - self.checkpointed_work)
        self.checkpointed_work = max(self.checkpointed_work, boundary)
        return preserved, max(0.0, work_done - preserved)

    # ------------------------------------------------------------------
    # Hedged execution (speculative copies)
    # ------------------------------------------------------------------
    def clone_for_speculation(self) -> "Task":
        """A fresh speculative copy racing this task from its checkpoint."""
        clone = Task(runtime=self.runtime, cores=self.cores,
                     memory=self.memory, submit_time=self.submit_time,
                     name=f"{self.name}~hedge", kind=self.kind,
                     deadline=self.deadline, priority=self.priority,
                     checkpoint_interval=self.checkpoint_interval,
                     checkpoint_overhead=self.checkpoint_overhead,
                     input_files=dict(self.input_files),
                     output_files=dict(self.output_files))
        clone.checkpointed_work = self.checkpointed_work
        clone.speculative = True
        return clone

    def complete_from(self, winner: "Task") -> None:
        """Adopt the result of a winning speculative copy.

        The original may be FAILED (it was cancelled once the copy won)
        or still RUNNING bookkeeping-wise; either way it becomes
        FINISHED with the winner's timing.
        """
        if self.state is TaskState.FINISHED:
            raise RuntimeError(f"{self.name} has already finished")
        self.state = TaskState.FINISHED
        self.finish_time = winner.finish_time
        self.machine = winner.machine
        if self.start_time is None:
            self.start_time = winner.start_time

    # ------------------------------------------------------------------
    # Metrics (Performance Engineering imports, §3.5)
    # ------------------------------------------------------------------
    @property
    def wait_time(self) -> float:
        """Queueing delay from submission to start."""
        if self.start_time is None:
            raise RuntimeError(f"{self.name} has not started")
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        """Submission-to-completion latency (a.k.a. turnaround)."""
        if self.finish_time is None:
            raise RuntimeError(f"{self.name} has not finished")
        return self.finish_time - self.submit_time

    @property
    def slowdown(self) -> float:
        """Bounded slowdown: response time over runtime (>= 1)."""
        return self.response_time / max(self.runtime, 1e-9)

    @property
    def core_seconds(self) -> float:
        """Resource demand: runtime x cores."""
        return self.runtime * self.cores

    @property
    def met_deadline(self) -> bool:
        """Whether the task finished by its deadline (True if none set)."""
        if self.deadline is None:
            return True
        if self.finish_time is None:
            return False
        return self.finish_time <= self.deadline

    def __hash__(self) -> int:
        return self.task_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Task {self.name} rt={self.runtime} cores={self.cores} "
                f"{self.state.value}>")


class Job:
    """A named group of tasks submitted together by one user."""

    def __init__(self, name: str, tasks: Iterable[Task] = (),
                 user: str = "anonymous", submit_time: float = 0.0) -> None:
        self.name = name
        self.user = user
        self.submit_time = submit_time
        self.tasks: list[Task] = list(tasks)
        for task in self.tasks:
            task.submit_time = submit_time

    def add(self, task: Task) -> Task:
        """Add a task, aligning its submit time to the job's."""
        task.submit_time = self.submit_time
        self.tasks.append(task)
        return task

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    @property
    def is_finished(self) -> bool:
        """Whether every task finished."""
        return bool(self.tasks) and all(
            t.state is TaskState.FINISHED for t in self.tasks)

    @property
    def makespan(self) -> float:
        """Completion time of the last task minus job submission."""
        if not self.is_finished:
            raise RuntimeError(f"job {self.name} has unfinished tasks")
        return max(t.finish_time for t in self.tasks) - self.submit_time

    @property
    def total_core_seconds(self) -> float:
        """Aggregate resource demand of the job."""
        return sum(t.core_seconds for t in self.tasks)


class BagOfTasks(Job):
    """A job of independent tasks — the dominant grid workload [107]."""

    def __init__(self, name: str, tasks: Iterable[Task] = (),
                 user: str = "anonymous", submit_time: float = 0.0) -> None:
        tasks = list(tasks)
        for task in tasks:
            if task.dependencies:
                raise ValueError(
                    f"bag-of-tasks {name!r} contains dependent task {task.name!r}")
        super().__init__(name, tasks, user=user, submit_time=submit_time)
