"""Workload substrate (S4): tasks, workflows, traces, and generators.

Implements the paper's workload models: bags-of-tasks and scientific
workflows ([107], [114]), Grid-Workloads-Archive traces [139], bursty
arrival processes [113], long-term fragmentation [39], and vicissitude
mixes [22].
"""

from .arrivals import (
    MMPPArrivals,
    PoissonArrivals,
    WeibullArrivals,
    index_of_dispersion,
    peak_to_mean_ratio,
)
from .generators import (
    DEFAULT_PROFILES,
    TaskProfile,
    VicissitudeMix,
    VicissitudePhase,
    WorkloadGenerator,
    science_workload,
)
from .provenance import ProvenanceChain, ProvenanceEntry, record_workflow_run
from .task import BagOfTasks, Job, Task, TaskState
from .trace import (
    GWF_FIELDS,
    GWFRecord,
    downsample_records,
    jobs_to_records,
    read_gwf,
    records_to_jobs,
    rescale_records,
    trace_statistics,
    write_gwf,
)
from .wfformat import (
    WfFormatError,
    load_wfformat,
    scenario_from_wfformat,
    wfformat_workflow,
)
from .workflow import (
    Workflow,
    chain_workflow,
    epigenomics_workflow,
    fork_join_workflow,
    ligo_workflow,
    montage_workflow,
    random_workflow,
)

__all__ = [
    "Task",
    "TaskState",
    "Job",
    "BagOfTasks",
    "Workflow",
    "montage_workflow",
    "ligo_workflow",
    "epigenomics_workflow",
    "chain_workflow",
    "fork_join_workflow",
    "random_workflow",
    "PoissonArrivals",
    "MMPPArrivals",
    "WeibullArrivals",
    "index_of_dispersion",
    "peak_to_mean_ratio",
    "TaskProfile",
    "VicissitudePhase",
    "VicissitudeMix",
    "WorkloadGenerator",
    "DEFAULT_PROFILES",
    "science_workload",
    "GWFRecord",
    "GWF_FIELDS",
    "read_gwf",
    "write_gwf",
    "records_to_jobs",
    "jobs_to_records",
    "trace_statistics",
    "downsample_records",
    "rescale_records",
    "WfFormatError",
    "load_wfformat",
    "wfformat_workflow",
    "scenario_from_wfformat",
    "ProvenanceChain",
    "ProvenanceEntry",
    "record_workflow_run",
]
