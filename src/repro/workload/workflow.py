"""Scientific workflows as DAGs of tasks (paper §6.2, [114]).

The paper names the classic workflow families — Montage (astronomy
mosaics, fan-out/fan-in), LIGO Inspiral (gravitational-wave pipelines),
Epigenomics (sequencing pipelines), and BLAST (bag-of-task-like search)
— as the shareable workloads of e-Science.  The shape generators here
follow the structural characterizations of Bharathi et al. [114]:
the absolute runtimes are synthetic, but the DAG topology, fan-in and
fan-out degrees, and level structure match the published ones.
"""

from __future__ import annotations

import random
from typing import Iterator

from .task import Job, Task

__all__ = [
    "Workflow",
    "montage_workflow",
    "ligo_workflow",
    "epigenomics_workflow",
    "random_workflow",
    "chain_workflow",
    "fork_join_workflow",
]


class Workflow(Job):
    """A job whose tasks form a directed acyclic graph."""

    def __init__(self, name: str, user: str = "anonymous",
                 submit_time: float = 0.0) -> None:
        super().__init__(name, user=user, submit_time=submit_time)

    def add_task(self, task: Task,
                 dependencies: list[Task] | tuple[Task, ...] = ()) -> Task:
        """Add ``task`` depending on previously added ``dependencies``."""
        known = set(self.tasks)
        for dep in dependencies:
            if dep not in known:
                raise ValueError(
                    f"dependency {dep.name!r} is not part of workflow {self.name!r}")
            task.add_dependency(dep)
        return self.add(task)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if the dependency graph has a cycle."""
        # Kahn's algorithm over the internal tasks.
        indegree = {task: 0 for task in self.tasks}
        dependents: dict[Task, list[Task]] = {task: [] for task in self.tasks}
        for task in self.tasks:
            for dep in task.dependencies:
                if dep in indegree:
                    indegree[task] += 1
                    dependents[dep].append(task)
        frontier = [t for t, d in indegree.items() if d == 0]
        visited = 0
        while frontier:
            current = frontier.pop()
            visited += 1
            for child in dependents[current]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        if visited != len(self.tasks):
            raise ValueError(f"workflow {self.name!r} contains a cycle")

    def entry_tasks(self) -> list[Task]:
        """Tasks with no dependencies inside the workflow."""
        internal = set(self.tasks)
        return [t for t in self.tasks
                if not any(d in internal for d in t.dependencies)]

    def exit_tasks(self) -> list[Task]:
        """Tasks no other workflow task depends on."""
        depended_on = {d for t in self.tasks for d in t.dependencies}
        return [t for t in self.tasks if t not in depended_on]

    def levels(self) -> list[list[Task]]:
        """Topological levels: level i tasks depend only on levels < i."""
        self.validate()
        level_of: dict[Task, int] = {}
        remaining = list(self.tasks)
        while remaining:
            progressed = False
            for task in list(remaining):
                deps = [d for d in task.dependencies if d in set(self.tasks)]
                if all(d in level_of for d in deps):
                    level_of[task] = 1 + max(
                        (level_of[d] for d in deps), default=-1)
                    remaining.remove(task)
                    progressed = True
            if not progressed:  # pragma: no cover - guarded by validate()
                raise ValueError("cycle detected while leveling")
        depth = max(level_of.values(), default=-1) + 1
        levels: list[list[Task]] = [[] for _ in range(depth)]
        for task in self.tasks:
            levels[level_of[task]].append(task)
        return levels

    @property
    def depth(self) -> int:
        """Number of topological levels."""
        return len(self.levels())

    def critical_path_length(self) -> float:
        """Sum of runtimes along the longest dependency chain.

        This lower-bounds the makespan on unlimited resources, the
        standard workflow-scheduling baseline.
        """
        self.validate()
        longest: dict[Task, float] = {}

        def visit(task: Task) -> float:
            if task in longest:
                return longest[task]
            deps = [d for d in task.dependencies if d in set(self.tasks)]
            longest[task] = task.runtime + max(
                (visit(d) for d in deps), default=0.0)
            return longest[task]

        return max((visit(t) for t in self.tasks), default=0.0)

    def walk_topological(self) -> Iterator[Task]:
        """Iterate tasks in a valid execution order."""
        for level in self.levels():
            yield from level


# ---------------------------------------------------------------------------
# Workflow shape generators (Bharathi et al. characterizations [114])
# ---------------------------------------------------------------------------
def _runtime(rng: random.Random, mean: float) -> float:
    """Lognormal-ish positive runtime with the given mean."""
    return max(0.1, rng.lognormvariate(0, 0.5) * mean)


def montage_workflow(width: int = 8, rng: random.Random | None = None,
                     mean_runtime: float = 10.0,
                     submit_time: float = 0.0) -> Workflow:
    """Montage-like mosaic workflow: fan-out, pairwise overlap, fan-in.

    Structure (per [114]): ``width`` parallel mProjectPP tasks, mDiffFit
    tasks joining neighbouring projections, a concentrating mConcatFit,
    a mBgModel/mBackground re-fan-out, and a final mAdd fan-in.
    """
    if width < 2:
        raise ValueError("montage width must be >= 2")
    rng = rng or random.Random(0)
    wf = Workflow("montage", submit_time=submit_time)
    projects = [wf.add_task(Task(_runtime(rng, mean_runtime),
                                 name=f"mProjectPP-{i}", kind="montage"))
                for i in range(width)]
    diffs = [wf.add_task(Task(_runtime(rng, mean_runtime / 2),
                              name=f"mDiffFit-{i}", kind="montage"),
                         dependencies=[projects[i], projects[i + 1]])
             for i in range(width - 1)]
    concat = wf.add_task(Task(_runtime(rng, mean_runtime),
                              name="mConcatFit", kind="montage"),
                         dependencies=diffs)
    backgrounds = [wf.add_task(Task(_runtime(rng, mean_runtime / 2),
                                    name=f"mBackground-{i}", kind="montage"),
                               dependencies=[concat])
                   for i in range(width)]
    wf.add_task(Task(_runtime(rng, mean_runtime * 2), name="mAdd",
                     kind="montage"), dependencies=backgrounds)
    wf.validate()
    return wf


def ligo_workflow(branches: int = 4, branch_length: int = 3,
                  rng: random.Random | None = None,
                  mean_runtime: float = 20.0,
                  submit_time: float = 0.0) -> Workflow:
    """LIGO-Inspiral-like workflow: parallel pipelines merged twice."""
    if branches < 1 or branch_length < 1:
        raise ValueError("branches and branch_length must be >= 1")
    rng = rng or random.Random(0)
    wf = Workflow("ligo", submit_time=submit_time)
    merge_inputs = []
    for b in range(branches):
        previous: Task | None = None
        for s in range(branch_length):
            deps = [previous] if previous is not None else []
            previous = wf.add_task(
                Task(_runtime(rng, mean_runtime), name=f"tmplt-{b}-{s}",
                     kind="ligo"), dependencies=deps)
        merge_inputs.append(previous)
    thinca = wf.add_task(Task(_runtime(rng, mean_runtime), name="thinca",
                              kind="ligo"), dependencies=merge_inputs)
    trigs = [wf.add_task(Task(_runtime(rng, mean_runtime / 2),
                              name=f"trigbank-{b}", kind="ligo"),
                         dependencies=[thinca])
             for b in range(branches)]
    wf.add_task(Task(_runtime(rng, mean_runtime), name="thinca-2",
                     kind="ligo"), dependencies=trigs)
    wf.validate()
    return wf


def epigenomics_workflow(lanes: int = 4, pipeline_length: int = 4,
                         rng: random.Random | None = None,
                         mean_runtime: float = 15.0,
                         submit_time: float = 0.0) -> Workflow:
    """Epigenomics-like workflow: split, parallel pipelines, merge."""
    if lanes < 1 or pipeline_length < 1:
        raise ValueError("lanes and pipeline_length must be >= 1")
    rng = rng or random.Random(0)
    wf = Workflow("epigenomics", submit_time=submit_time)
    split = wf.add_task(Task(_runtime(rng, mean_runtime), name="fastqSplit",
                             kind="epigenomics"))
    tails = []
    stages = ("filterContams", "sol2sanger", "fastq2bfq", "map")
    for lane in range(lanes):
        previous = split
        for s in range(pipeline_length):
            stage = stages[s % len(stages)]
            previous = wf.add_task(
                Task(_runtime(rng, mean_runtime), name=f"{stage}-{lane}-{s}",
                     kind="epigenomics"), dependencies=[previous])
        tails.append(previous)
    merge = wf.add_task(Task(_runtime(rng, mean_runtime), name="mapMerge",
                             kind="epigenomics"), dependencies=tails)
    wf.add_task(Task(_runtime(rng, mean_runtime * 2), name="pileup",
                     kind="epigenomics"), dependencies=[merge])
    wf.validate()
    return wf


def chain_workflow(length: int = 5, runtime: float = 10.0,
                   submit_time: float = 0.0) -> Workflow:
    """A simple linear pipeline; critical path == total work."""
    if length < 1:
        raise ValueError("length must be >= 1")
    wf = Workflow("chain", submit_time=submit_time)
    previous: Task | None = None
    for i in range(length):
        deps = [previous] if previous is not None else []
        previous = wf.add_task(Task(runtime, name=f"stage-{i}", kind="chain"),
                               dependencies=deps)
    return wf


def fork_join_workflow(width: int = 8, runtime: float = 10.0,
                       submit_time: float = 0.0) -> Workflow:
    """Fork-join: one source, ``width`` parallel tasks, one sink."""
    if width < 1:
        raise ValueError("width must be >= 1")
    wf = Workflow("fork-join", submit_time=submit_time)
    source = wf.add_task(Task(runtime, name="fork", kind="fork-join"))
    middles = [wf.add_task(Task(runtime, name=f"work-{i}", kind="fork-join"),
                           dependencies=[source])
               for i in range(width)]
    wf.add_task(Task(runtime, name="join", kind="fork-join"),
                dependencies=middles)
    return wf


def random_workflow(n_tasks: int = 20, edge_probability: float = 0.2,
                    rng: random.Random | None = None,
                    mean_runtime: float = 10.0,
                    submit_time: float = 0.0) -> Workflow:
    """A random layered DAG (edges only point forward, hence acyclic)."""
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = rng or random.Random(0)
    wf = Workflow("random", submit_time=submit_time)
    created: list[Task] = []
    for i in range(n_tasks):
        deps = [t for t in created if rng.random() < edge_probability]
        task = wf.add_task(Task(_runtime(rng, mean_runtime),
                                name=f"t{i}", kind="random"),
                           dependencies=deps)
        created.append(task)
    wf.validate()
    return wf
