"""Wide-area analytics across federated sites (C10; [125], [129]).

Two C10 requirements become executable:

- *Efficient wide-area analytics* (JetStream [125]): federated queries
  over geo-distributed data under a bandwidth budget, with
  **aggregation** and **degradation** (sampling) as the accuracy /
  traffic trade-off — "aggregation and degradation in JetStream".
- *Computation on protected data* ([129], P²-SWAN): a secure
  additive-masking sum, so the federation learns the total "without
  analyzing in the clear and exposing data on compromised (or
  malicious) sites" — each site only ever reveals a masked share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["SiteData", "QueryResult", "WideAreaAnalytics", "WideAreaLink",
           "min_lookahead", "secure_sum"]


@dataclass(frozen=True)
class WideAreaLink:
    """One wide-area link between two regions, with a one-way latency.

    The typed cross-shard channel of the sharded simulation: every
    message between two per-region event loops travels over a declared
    link, and the link's latency is the physical guarantee behind
    conservative coupling — a message sent at time *t* cannot take
    effect before *t + latency*, so the minimum latency over all links
    (:func:`min_lookahead`) bounds how far shards may run ahead of each
    other without risking causality.
    """

    src: str
    dst: str
    latency: float

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ValueError("a wide-area link needs two region names")
        if self.src == self.dst:
            raise ValueError(
                f"link endpoints must differ, got {self.src!r} twice")
        if self.latency <= 0:
            raise ValueError(
                f"link {self.src!r}->{self.dst!r} needs a positive "
                f"latency, got {self.latency}; zero-latency links make "
                f"conservative lookahead vanish")

    @property
    def pair(self) -> tuple[str, str]:
        """The endpoints as an order-independent (sorted) pair."""
        return tuple(sorted((self.src, self.dst)))  # type: ignore[return-value]


def min_lookahead(links: Sequence[WideAreaLink]) -> float:
    """The conservative lookahead a set of links permits.

    The smallest one-way latency over all links — the classic
    conservative-synchronization bound: inside a window of this width
    no shard can observe an effect another shard caused within the
    same window.  An empty link set means the shards are fully
    decoupled and returns ``inf``.
    """
    if not links:
        return float("inf")
    return min(link.latency for link in links)


@dataclass(frozen=True)
class SiteData:
    """One site's local records (numeric measurements)."""

    site: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"site {self.site!r} has no data")


@dataclass(frozen=True)
class QueryResult:
    """Outcome of a federated query."""

    strategy: str
    estimate: float
    exact: float
    bytes_transferred: int

    @property
    def relative_error(self) -> float:
        """|estimate - exact| / |exact| (0 when exact is 0 and matched)."""
        if self.exact == 0:
            return abs(self.estimate)
        return abs(self.estimate - self.exact) / abs(self.exact)


#: Bytes to ship one float record across the wide area.
_RECORD_BYTES = 8


class WideAreaAnalytics:
    """Federated mean queries under three transfer strategies.

    - ``"full"``: ship every record (exact, maximal traffic);
    - ``"aggregate"``: each site ships (sum, count) — exact for the
      mean, constant traffic per site;
    - ``"sample"``: each site ships a random fraction of records —
      degraded accuracy, proportional traffic (the JetStream
      degradation knob).
    """

    def __init__(self, sites: Sequence[SiteData],
                 rng: random.Random | None = None) -> None:
        if not sites:
            raise ValueError("need at least one site")
        names = [s.site for s in sites]
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")
        self.sites = list(sites)
        self.rng = rng or random.Random(0)

    def _exact_mean(self) -> float:
        values = [v for site in self.sites for v in site.values]
        return sum(values) / len(values)

    def query_mean(self, strategy: str = "aggregate",
                   sample_fraction: float = 0.1) -> QueryResult:
        """Run a federated mean query under the chosen strategy."""
        exact = self._exact_mean()
        if strategy == "full":
            n = sum(len(site.values) for site in self.sites)
            return QueryResult("full", exact, exact, n * _RECORD_BYTES)
        if strategy == "aggregate":
            # Each site ships exactly two numbers.
            transferred = len(self.sites) * 2 * _RECORD_BYTES
            total = sum(sum(site.values) for site in self.sites)
            count = sum(len(site.values) for site in self.sites)
            return QueryResult("aggregate", total / count, exact,
                               transferred)
        if strategy == "sample":
            if not 0.0 < sample_fraction <= 1.0:
                raise ValueError("sample_fraction must be in (0, 1]")
            shipped: list[float] = []
            for site in self.sites:
                k = max(1, round(len(site.values) * sample_fraction))
                shipped.extend(self.rng.sample(list(site.values), k))
            estimate = sum(shipped) / len(shipped)
            return QueryResult("sample", estimate, exact,
                               len(shipped) * _RECORD_BYTES)
        raise ValueError(f"unknown strategy {strategy!r}")

    def pareto_frontier(self, sample_fractions: Sequence[float] = (
            0.01, 0.05, 0.1, 0.25, 0.5)) -> list[QueryResult]:
        """The accuracy/traffic trade-off curve across strategies."""
        results = [self.query_mean("aggregate"),
                   self.query_mean("full")]
        results.extend(self.query_mean("sample", sample_fraction=fraction)
                       for fraction in sample_fractions)
        return sorted(results, key=lambda r: r.bytes_transferred)


def secure_sum(site_values: Mapping[str, float],
               rng: random.Random | None = None,
               mask_range: float = 1e6) -> tuple[float, dict[str, float]]:
    """Additive-masking secure aggregation ([129]).

    Every site splits its value into random shares, one per peer, such
    that the shares sum to the value; each site then publishes only the
    sum of the shares it *received*.  The grand total equals the true
    sum, yet no published number reveals any single site's value.

    Returns ``(total, published)`` where ``published`` maps each site
    to the masked aggregate it revealed.
    """
    if len(site_values) < 2:
        raise ValueError("secure aggregation needs at least two sites")
    rng = rng or random.Random(0)
    names = sorted(site_values)
    received: dict[str, float] = {name: 0.0 for name in names}
    for name in names:
        value = site_values[name]
        shares = [rng.uniform(-mask_range, mask_range)
                  for _ in range(len(names) - 1)]
        last_share = value - sum(shares)
        all_shares = shares + [last_share]
        for peer, share in zip(names, all_shares):
            received[peer] += share
    total = sum(received.values())
    return total, received
