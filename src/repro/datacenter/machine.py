"""Machines: the leaf resources of the datacenter substrate.

Machines model the *infrastructure heterogeneity* of C4: different core
counts, memory sizes, relative speeds, and accelerator kinds (CPU, GPU,
TPU, FPGA) — "this is different from the past, when datacenters were
filled with similar hardware".  Each machine exposes capacity
book-keeping (used by schedulers) and a linear power model (used by the
energy accounting of C6's energy-proportionality problems).

Capacity book-keeping is *incremental*: ``cores_used`` and
``memory_used`` are counters maintained on allocate/release rather than
sums over the allocation table, so schedulers can probe thousands of
machines per round in O(1) each.  Machines also accept *watchers*
(see :class:`repro.datacenter.capacity.CapacityIndex`) that are
notified on every capacity or availability change, which lets
datacenter-level indexes stay consistent without rescans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..workload.task import Task

__all__ = ["MachineKind", "MachineSpec", "Machine"]


class MachineKind(enum.Enum):
    """Hardware classes named by the paper (C4)."""

    CPU = "cpu"
    GPU = "gpu"
    TPU = "tpu"
    FPGA = "fpga"


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a machine model.

    Attributes:
        cores: Number of cores (or accelerator slots).
        memory: Memory in GiB.
        speed: Relative speed factor; a task's effective runtime is
            ``task.runtime / speed``.
        kind: Hardware class.
        idle_watts / max_watts: Endpoints of the linear power model
            ``P(u) = idle + (max - idle) * u`` at utilization ``u``.
        cost_per_hour: Price used by cost-aware policies (C3).
        link_bandwidth: Network link speed in bytes/second, used to
            convert remote input bytes into stage-in transfer time
            (data-aware scheduling).  Default is 10 Gbit/s.
    """

    cores: int = 8
    memory: float = 32.0
    speed: float = 1.0
    kind: MachineKind = MachineKind.CPU
    idle_watts: float = 100.0
    max_watts: float = 250.0
    cost_per_hour: float = 1.0
    link_bandwidth: float = 1.25e9

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.memory <= 0:
            raise ValueError(f"memory must be positive, got {self.memory}")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")
        if self.idle_watts < 0 or self.max_watts < self.idle_watts:
            raise ValueError("need 0 <= idle_watts <= max_watts")
        if self.link_bandwidth <= 0:
            raise ValueError(
                f"link_bandwidth must be positive, got {self.link_bandwidth}")


class Machine:
    """A machine instance with allocation book-keeping.

    The machine tracks which tasks hold how many cores and how much
    memory, its availability (failures flip it off), and the energy it
    has consumed under the linear utilization-power model.
    """

    __slots__ = ("name", "spec", "_allocations", "_memory_reservations",
                 "_available", "_cores_used", "_alloc_memory",
                 "_reserved_memory", "_watchers", "energy_joules",
                 "_last_energy_time")

    def __init__(self, name: str, spec: MachineSpec = MachineSpec()) -> None:
        self.name = name
        self.spec = spec
        self._allocations: dict[Task, tuple[int, float]] = {}
        #: Named memory reservations by remote borrowers (scavenging).
        self._memory_reservations: dict[str, float] = {}
        self._available = True
        self._cores_used = 0
        self._alloc_memory = 0.0
        self._reserved_memory = 0.0
        #: Capacity watchers (duck-typed: ``machine_delta(machine,
        #: cores_delta)`` and ``machine_availability(machine)``).
        self._watchers: list = []
        #: Accumulated energy in watt-seconds (joules).
        self.energy_joules = 0.0
        self._last_energy_time = 0.0

    # ------------------------------------------------------------------
    # Watchers (capacity indexes)
    # ------------------------------------------------------------------
    def add_watcher(self, watcher) -> None:
        """Subscribe a capacity watcher (idempotent)."""
        if watcher not in self._watchers:
            self._watchers.append(watcher)

    def _notify_delta(self, cores_delta: int) -> None:
        for watcher in self._watchers:
            watcher.machine_delta(self, cores_delta)

    def _notify_availability(self) -> None:
        for watcher in self._watchers:
            watcher.machine_availability(self)

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether the machine is up (False while failed/decommissioned)."""
        return self._available

    @available.setter
    def available(self, value: bool) -> None:
        value = bool(value)
        if value != self._available:
            self._available = value
            self._notify_availability()

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def cores_used(self) -> int:
        """Cores currently allocated."""
        return self._cores_used

    @property
    def cores_free(self) -> int:
        """Cores currently free (0 when the machine is down)."""
        if not self._available:
            return 0
        return self.spec.cores - self._cores_used

    @property
    def memory_used(self) -> float:
        """Memory currently allocated (local tasks + remote borrows), GiB."""
        return self._alloc_memory + self._reserved_memory

    @property
    def memory_free(self) -> float:
        """Memory currently free, GiB (0 when the machine is down)."""
        if not self._available:
            return 0.0
        return self.spec.memory - (self._alloc_memory + self._reserved_memory)

    @property
    def utilization(self) -> float:
        """Core utilization in [0, 1]."""
        return self._cores_used / self.spec.cores

    @property
    def running_tasks(self) -> list[Task]:
        """Tasks currently holding an allocation."""
        return list(self._allocations)

    def can_fit(self, task: Task) -> bool:
        """Whether the task's cores and memory fit right now."""
        if not self._available:
            return False
        spec = self.spec
        return (task.cores <= spec.cores - self._cores_used
                and task.memory <= (spec.memory - self._alloc_memory
                                    - self._reserved_memory) + 1e-12)

    def allocate(self, task: Task) -> None:
        """Claim the task's cores and memory."""
        if not self.can_fit(task):
            raise RuntimeError(
                f"task {task.name} does not fit on machine {self.name}")
        if task in self._allocations:
            raise RuntimeError(f"task {task.name} already allocated here")
        self._allocations[task] = (task.cores, task.memory)
        self._cores_used += task.cores
        self._alloc_memory += task.memory
        if self._watchers:
            self._notify_delta(task.cores)

    def release(self, task: Task) -> None:
        """Return the task's cores and memory."""
        allocation = self._allocations.pop(task, None)
        if allocation is None:
            raise RuntimeError(f"task {task.name} holds no allocation here")
        cores, memory = allocation
        self._cores_used -= cores
        self._alloc_memory -= memory
        if not self._allocations:
            # Re-anchor the float accumulator so incremental updates
            # can never drift away from the exact recomputed sum.
            self._cores_used = 0
            self._alloc_memory = 0.0
        if self._watchers:
            self._notify_delta(-cores)

    def effective_runtime(self, task: Task) -> float:
        """Service time of the task on this machine's speed.

        Honors checkpoint/restart (C17): only the work past the task's
        last checkpoint must execute, plus the cost of writing the
        checkpoints that fall inside it.
        """
        return task.checkpoint_adjusted_work() / self.spec.speed

    # ------------------------------------------------------------------
    # Remote-memory reservations (scavenging, [118])
    # ------------------------------------------------------------------
    def reserve_memory(self, key: str, amount: float) -> None:
        """Lend ``amount`` GiB to a remote borrower under ``key``."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if key in self._memory_reservations:
            raise RuntimeError(f"reservation {key!r} already exists")
        if amount > self.memory_free + 1e-12:
            raise RuntimeError(
                f"machine {self.name} cannot lend {amount} GiB")
        self._memory_reservations[key] = amount
        self._reserved_memory += amount
        if self._watchers:
            # Zero core delta: cluster counters are untouched, but
            # capacity watchers must refresh their memory view.
            self._notify_delta(0)

    def release_memory(self, key: str) -> None:
        """Return a lent reservation (idempotent on missing keys)."""
        amount = self._memory_reservations.pop(key, None)
        if amount is not None:
            self._reserved_memory -= amount
            if not self._memory_reservations:
                self._reserved_memory = 0.0
            if self._watchers:
                self._notify_delta(0)

    # ------------------------------------------------------------------
    # Failures (S8 hooks)
    # ------------------------------------------------------------------
    def fail(self) -> list[Task]:
        """Take the machine down; returns (and evicts) the victims."""
        victims = list(self._allocations)
        self._allocations.clear()
        self._cores_used = 0
        self._alloc_memory = 0.0
        if self._available:
            self._available = False
            self._notify_availability()
        elif self._watchers and victims:
            self._notify_availability()
        return victims

    def repair(self) -> None:
        """Bring the machine back up, empty."""
        self.available = True

    # ------------------------------------------------------------------
    # Power / energy
    # ------------------------------------------------------------------
    def power_watts(self) -> float:
        """Instantaneous power draw under the linear model."""
        if not self._available:
            return 0.0
        spec = self.spec
        return spec.idle_watts + (spec.max_watts
                                  - spec.idle_watts) * self.utilization

    def account_energy(self, now: float) -> None:
        """Integrate energy since the previous accounting call.

        Call this immediately *before* any utilization change so the
        elapsed interval is charged at the old utilization.
        """
        if now < self._last_energy_time:
            raise ValueError("time moved backwards")
        self.energy_joules += self.power_watts() * (now - self._last_energy_time)
        self._last_energy_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Machine {self.name} {self.spec.kind.value} "
                f"{self._cores_used}/{self.spec.cores} cores>")
