"""Memory scavenging across machines (C7; Uta et al. [118]).

"Memory scavenging is a method applied to reduce compute resource
consumption ... By using small portions of available memory from other
tenants or nodes, a relative small performance overhead can be traded
for significant gains in resource consumption."

The :class:`ScavengingCoordinator` places tasks whose memory demand
exceeds any single machine's free memory by *borrowing* idle memory
from lender machines in the same cluster: the task runs on a host that
has the cores, its memory overflow is reserved on lenders, and its
runtime is inflated by a per-remote-fraction penalty.  The E8 ablation
shows the paper's trade-off: more work placed, modest slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Process
from ..workload.task import Task
from .datacenter import Datacenter
from .machine import Machine

__all__ = ["ScavengingCoordinator", "BorrowRecord"]


@dataclass
class BorrowRecord:
    """One active memory borrow: who lends how much to which task."""

    task: Task
    host: Machine
    lenders: dict[str, float]
    penalty_factor: float


class ScavengingCoordinator:
    """Places memory-overflowing tasks by borrowing remote memory.

    Args:
        datacenter: The substrate.
        penalty_per_remote_fraction: Runtime inflation per unit of the
            task's memory that is remote; borrowing 50% of the
            footprint with penalty 0.3 inflates runtime by 15%.
        max_remote_fraction: Refuse placements needing more than this
            fraction of the footprint remotely.
    """

    def __init__(self, datacenter: Datacenter,
                 penalty_per_remote_fraction: float = 0.3,
                 max_remote_fraction: float = 0.75) -> None:
        if penalty_per_remote_fraction < 0:
            raise ValueError("penalty must be non-negative")
        if not 0.0 < max_remote_fraction <= 1.0:
            raise ValueError("max_remote_fraction must be in (0, 1]")
        self.datacenter = datacenter
        self.penalty_per_remote_fraction = penalty_per_remote_fraction
        self.max_remote_fraction = max_remote_fraction
        self.active: list[BorrowRecord] = []
        #: Completed scavenged placements, for the ablation report.
        self.total_scavenged = 0
        self.total_borrowed_gb = 0.0

    def try_place(self, task: Task) -> Process | None:
        """Place ``task``, scavenging memory if needed.

        Returns the execution process, or ``None`` when neither a
        direct nor a scavenged placement is possible right now.
        """
        machines = self.datacenter.available_machines()
        # Prefer a direct fit — scavenging is the fallback.
        for machine in machines:
            if machine.can_fit(task):
                return self.datacenter.execute(task, machine)
        return self._place_scavenged(task, machines)

    def _place_scavenged(self, task: Task,
                         machines: list[Machine]) -> Process | None:
        hosts = [m for m in machines
                 if task.cores <= m.cores_free and m.memory_free > 0]
        hosts.sort(key=lambda m: -m.memory_free)
        for host in hosts:
            local = min(task.memory, host.memory_free)
            needed_remote = task.memory - local
            if needed_remote <= 0:
                continue  # would have fit directly
            if needed_remote / task.memory > self.max_remote_fraction:
                continue
            lenders = self._find_lenders(host, machines, needed_remote)
            if lenders is None:
                continue
            return self._execute_borrowed(task, host, local, lenders)
        return None

    def _find_lenders(self, host: Machine, machines: list[Machine],
                      needed: float) -> dict[str, float] | None:
        lenders: dict[str, float] = {}
        for lender in sorted((m for m in machines if m is not host),
                             key=lambda m: -m.memory_free):
            if needed <= 1e-9:
                break
            grab = min(lender.memory_free, needed)
            if grab > 0:
                lenders[lender.name] = grab
                needed -= grab
        if needed > 1e-9:
            return None
        return lenders

    def _execute_borrowed(self, task: Task, host: Machine, local: float,
                          lenders: dict[str, float]) -> Process:
        remote = task.memory - local
        remote_fraction = remote / task.memory
        penalty = 1.0 + self.penalty_per_remote_fraction * remote_fraction
        by_name = {m.name: m for m in self.datacenter.machines()}
        for name, amount in lenders.items():
            by_name[name].reserve_memory(f"scavenge-{task.task_id}", amount)
        # Shrink the task's local footprint for host book-keeping and
        # stretch its runtime by the remote-access penalty.
        original_memory = task.memory
        original_runtime = task.runtime
        task.memory = local
        task.runtime = original_runtime * penalty
        record = BorrowRecord(task=task, host=host, lenders=dict(lenders),
                              penalty_factor=penalty)
        self.active.append(record)
        self.total_scavenged += 1
        self.total_borrowed_gb += remote
        process = self.datacenter.execute(task, host)

        def release(event, record=record, memory=original_memory,
                    runtime=original_runtime):
            for name, _ in record.lenders.items():
                by_name[name].release_memory(
                    f"scavenge-{record.task.task_id}")
            record.task.memory = memory
            record.task.runtime = runtime
            if record in self.active:
                self.active.remove(record)

        process.add_callback(release)
        return process
