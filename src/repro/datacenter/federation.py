"""Federated, geo-distributed multi-datacenter operation (C10, P5).

The paper envisions "the need for many and eventually all MCS to
operate over multiple, federated, and geo-distributed
(micro-)datacenters".  A :class:`Federation` groups datacenters with a
latency matrix and implements *service delegation*: jobs submitted at a
home datacenter may be offloaded to a peer when the home site is
overloaded, trading wide-area latency for load balance ([116]).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..sim import Simulator
from ..workload.task import Task, TaskState
from .datacenter import Datacenter
from .machine import Machine

__all__ = ["Federation", "OffloadDecision", "OffloadGate",
           "least_loaded_offload", "never_offload"]

#: Signature of an offload policy: (home, peers, task) -> chosen datacenter.
OffloadDecision = Callable[[Datacenter, Sequence[Datacenter], Task],
                           Datacenter]


def never_offload(home: Datacenter, peers: Sequence[Datacenter],
                  task: Task) -> Datacenter:
    """Baseline policy: always run at the home datacenter."""
    return home


def least_loaded_offload(threshold: float = 0.9) -> OffloadDecision:
    """Offload to the least-utilized peer when home exceeds ``threshold``.

    Implements the user-operator collaboration technique of C7
    ("offloading, that is, sending a part of the workload for execution
    to other resources and possibly other operators").
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")

    def decide(home: Datacenter, peers: Sequence[Datacenter],
               task: Task) -> Datacenter:
        if home.utilization() < threshold or not peers:
            return home
        candidates = [home, *peers]
        return min(candidates, key=lambda dc: dc.utilization())

    return decide


class OffloadGate:
    """Threshold gate for dynamic offload decisions at one site.

    The submit-time half of :func:`least_loaded_offload`, factored out
    so layers that only see the *local* datacenter — the sharded
    simulation's per-region event loops, where the peer lives behind a
    wide-area message channel — share the same semantics: a task is a
    candidate for delegation exactly when the home site's instantaneous
    utilization has reached ``threshold``.  The decision reads local
    state only, which is what keeps it deterministic when regions run
    on decoupled clocks.
    """

    def __init__(self, datacenter: Datacenter, threshold: float) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.datacenter = datacenter
        self.threshold = threshold
        #: Tasks the gate sent away.
        self.offloaded = 0
        #: Tasks the gate kept home.
        self.kept = 0

    def should_offload(self, task: Task | None = None) -> bool:
        """Whether to delegate ``task`` given current local load."""
        if self.datacenter.utilization() >= self.threshold:
            self.offloaded += 1
            return True
        self.kept += 1
        return False


class Federation:
    """A set of datacenters with inter-site latencies and delegation.

    Offloading is guarded per peer (C17): an optional circuit breaker
    rejects delegation to a peer that keeps failing, and an optional
    deadline bounds how long a delegated task may wait for remote
    capacity before falling back to its home site.

    Args:
        sim: The shared simulator.
        datacenters: Member sites.
        latency: Symmetric map of ``(site_a, site_b) -> seconds`` for
            the wide-area transfer penalty charged on offloaded tasks.
        policy: Offload policy deciding where each task runs.
        peer_breakers: Optional per-site-name breaker objects
            (duck-typed ``allow`` / ``record_success`` /
            ``record_failure``, e.g.
            :class:`~repro.resilience.breakers.CircuitBreaker`).  A
            task is not delegated to a peer whose breaker is open.
        offload_deadline: Maximum sim-time an offloaded task may wait
            for a remote machine before being recalled home (the
            breaker, if any, records the timeout as a failure).
    """

    def __init__(self, sim: Simulator, datacenters: Sequence[Datacenter],
                 latency: Mapping[tuple[str, str], float] | None = None,
                 policy: OffloadDecision = never_offload,
                 peer_breakers: Mapping[str, object] | None = None,
                 offload_deadline: float | None = None) -> None:
        if not datacenters:
            raise ValueError("a federation needs at least one datacenter")
        names = [dc.name for dc in datacenters]
        if len(set(names)) != len(names):
            raise ValueError("datacenter names must be unique")
        if offload_deadline is not None and offload_deadline <= 0:
            raise ValueError("offload_deadline must be positive")
        self.sim = sim
        self.datacenters = list(datacenters)
        self._latency = dict(latency or {})
        self.policy = policy
        self.peer_breakers = dict(peer_breakers or {})
        unknown = set(self.peer_breakers) - set(names)
        if unknown:
            raise ValueError(f"breakers reference unknown sites: {sorted(unknown)}")
        self.offload_deadline = offload_deadline
        #: Count of tasks executed away from their home site.
        self.offloaded_tasks = 0
        #: Aggregate wide-area latency paid, in seconds.
        self.wide_area_seconds = 0.0
        #: Delegations vetoed by an open peer breaker.
        self.offloads_rejected = 0
        #: Offloaded tasks recalled home after the offload deadline.
        self.offload_fallbacks = 0

    def get(self, name: str) -> Datacenter:
        """Look up a member site by name."""
        for dc in self.datacenters:
            if dc.name == name:
                return dc
        raise KeyError(name)

    def latency(self, a: str, b: str) -> float:
        """One-way latency between two sites (0 within a site)."""
        if a == b:
            return 0.0
        if (a, b) in self._latency:
            return self._latency[(a, b)]
        if (b, a) in self._latency:
            return self._latency[(b, a)]
        raise KeyError(f"no latency configured between {a!r} and {b!r}")

    def peers_of(self, home: Datacenter) -> list[Datacenter]:
        """All member sites other than ``home``."""
        return [dc for dc in self.datacenters if dc is not home]

    def submit(self, task: Task, home_name: str):
        """Run ``task``, possibly delegated; returns the process.

        The offload policy picks the execution site; offloaded tasks pay
        the inter-site latency before starting, then run on the least
        loaded fitting machine of the chosen site.  A peer whose
        breaker is open is vetoed (the task runs at home instead), and
        a delegated task that cannot start remotely within
        ``offload_deadline`` is recalled to the home site.
        """
        home = self.get(home_name)
        target = self.policy(home, self.peers_of(home), task)
        if target is not home:
            breaker = self.peer_breakers.get(target.name)
            if breaker is not None and not breaker.allow():
                self.offloads_rejected += 1
                target = home
        transfer = self.latency(home.name, target.name)
        if target is not home:
            self.offloaded_tasks += 1
            self.wide_area_seconds += transfer
        return self.sim.process(self._delegated(task, home, target, transfer),
                                name=f"federated-{task.name}")

    def _delegated(self, task: Task, home: Datacenter, target: Datacenter,
                   transfer: float):
        if transfer > 0:
            yield self.sim.timeout(transfer)
        deadline = (None if target is home or self.offload_deadline is None
                    else self.sim.now + self.offload_deadline)
        machine = self._pick_machine(target, task)
        if machine is None and target is not home:
            target, machine = self._recall(task, home, target, "unfit")
        if machine is None:
            raise RuntimeError(
                f"no machine in {target.name} can ever fit task {task.name}")
        while not machine.can_fit(task):
            if deadline is not None and self.sim.now >= deadline:
                target, machine = self._recall(task, home, target, "deadline")
                deadline = None
                continue
            yield self.sim.timeout(1.0)
            machine = self._pick_machine(target, task) or machine
        breaker = (self.peer_breakers.get(target.name)
                   if target is not home else None)
        result = yield target.execute(task, machine)
        if breaker is not None:
            if task.state is TaskState.FINISHED:
                breaker.record_success()
            else:
                breaker.record_failure()
        return result

    def _recall(self, task: Task, home: Datacenter, target: Datacenter,
                reason: str) -> tuple[Datacenter, Machine]:
        """Fall back to the home site after a failed delegation attempt."""
        self.offload_fallbacks += 1
        breaker = self.peer_breakers.get(target.name)
        if breaker is not None:
            breaker.record_failure()
        # The recalled task pays the wide-area transfer back home.
        self.wide_area_seconds += self.latency(home.name, target.name)
        machine = self._pick_machine(home, task)
        if machine is None:
            raise RuntimeError(
                f"no machine in {home.name} can ever fit task {task.name}"
                f" (recalled from {target.name}: {reason})")
        return home, machine

    @staticmethod
    def _pick_machine(dc: Datacenter, task: Task) -> Machine | None:
        fitting = [m for m in dc.available_machines()
                   if m.spec.cores >= task.cores
                   and m.spec.memory >= task.memory]
        if not fitting:
            return None
        free_now = [m for m in fitting if m.can_fit(task)]
        pool = free_now or fitting
        return min(pool, key=lambda m: m.utilization)

    def total_utilization(self) -> float:
        """Federation-wide instantaneous core utilization."""
        total = sum(dc.total_cores for dc in self.datacenters)
        if total == 0:
            return 0.0
        used = sum(sum(m.cores_used for m in dc.machines())
                   for dc in self.datacenters)
        return used / total
