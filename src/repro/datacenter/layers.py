"""The reference architecture for datacenters (paper Figure 3, §6.1).

Figure 3 organizes a datacenter into five core layers plus an
orthogonal DevOps layer:

5. *Front-end* — application-level functionality;
4. *Back-end* — task/resource/service management on behalf of the
   application;
3. *Resources* — task/resource/service management on behalf of the
   operator;
2. *Operations Service* — basic (distributed) operating services;
1. *Infrastructure* — physical and virtual resource management;
6. *DevOps* — monitoring, logging, benchmarking (orthogonal).

Layers 5 and 4 are refined into three sub-layers each — High Level
Languages, Programming Models, and Execution / Memory & Storage engines
— which correspond to the similarly named layers of the big-data stack
(Figure 1).  The registry supports placing components, validating that
an assembled stack covers the mandatory layers, and mapping components
of the FaaS architecture (Figure 5) onto these layers, as the paper
does explicitly (§6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["Layer", "DATACENTER_LAYERS", "ReferenceArchitecture",
           "LayeredComponent", "DatacenterStack"]


@dataclass(frozen=True)
class Layer:
    """One layer of the Figure 3 reference architecture."""

    number: int
    name: str
    responsibility: str
    sublayers: tuple[str, ...] = ()
    orthogonal: bool = False


#: Figure 3 of the paper, 2 levels of depth.
DATACENTER_LAYERS: tuple[Layer, ...] = (
    Layer(5, "Front-end", "application-level functionality",
          sublayers=("High Level Languages", "Programming Models",
                     "Execution Engine", "Memory & Storage Engine")),
    Layer(4, "Back-end",
          "task, resource, and service management on behalf of the "
          "application",
          sublayers=("High Level Languages", "Programming Models",
                     "Execution Engine", "Memory & Storage Engine")),
    Layer(3, "Resources",
          "task, resource, and service management on behalf of the cloud "
          "operator"),
    Layer(2, "Operations Service",
          "basic services typically associated with (distributed) "
          "operating systems"),
    Layer(1, "Infrastructure", "managing physical and virtual resources"),
    Layer(6, "DevOps",
          "monitoring, logging, and benchmarking — orthogonal to the "
          "service provided to customers", orthogonal=True),
)


@dataclass
class LayeredComponent:
    """A concrete component placed at a layer (and optional sub-layer)."""

    name: str
    layer_number: int
    sublayer: str = ""
    vendor: str = ""


class ReferenceArchitecture:
    """Queryable form of the Figure 3 layer model."""

    def __init__(self, layers: Sequence[Layer] = DATACENTER_LAYERS) -> None:
        numbers = [layer.number for layer in layers]
        if len(set(numbers)) != len(numbers):
            raise ValueError("duplicate layer numbers")
        self._layers = tuple(layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, number: int) -> Layer:
        """Look up a layer by its Figure 3 number."""
        for layer in self._layers:
            if layer.number == number:
                return layer
        raise KeyError(number)

    def core_layers(self) -> list[Layer]:
        """The five non-orthogonal layers, top (5) to bottom (1)."""
        core = [layer for layer in self._layers if not layer.orthogonal]
        return sorted(core, key=lambda l: -l.number)

    def table_rows(self) -> list[tuple[int, str, str]]:
        """(number, name, responsibility) rows regenerating Figure 3."""
        return [(l.number, l.name, l.responsibility) for l in self._layers]


class DatacenterStack:
    """An assembled stack of components placed on the reference layers.

    The paper envisions the reference architecture as "guiding,
    non-mandatory"; :meth:`missing_layers` reports which core layers an
    assembly leaves uncovered, which is how the architecture "captures
    and helps manage the diversity of offered services".
    """

    def __init__(self, name: str,
                 architecture: ReferenceArchitecture | None = None) -> None:
        self.name = name
        self.architecture = architecture or ReferenceArchitecture()
        self._components: list[LayeredComponent] = []

    def place(self, component: LayeredComponent) -> LayeredComponent:
        """Place a component, validating its layer and sub-layer."""
        layer = self.architecture.layer(component.layer_number)
        if component.sublayer and component.sublayer not in layer.sublayers:
            raise ValueError(
                f"layer {layer.name!r} has no sublayer {component.sublayer!r}")
        self._components.append(component)
        return component

    @property
    def components(self) -> list[LayeredComponent]:
        """All placed components."""
        return list(self._components)

    def at_layer(self, number: int) -> list[LayeredComponent]:
        """Components placed on one layer."""
        return [c for c in self._components if c.layer_number == number]

    def covered_layers(self) -> set[int]:
        """Numbers of layers that have at least one component."""
        return {c.layer_number for c in self._components}

    def missing_layers(self) -> list[Layer]:
        """Core layers without any component (DevOps is optional)."""
        covered = self.covered_layers()
        return [layer for layer in self.architecture.core_layers()
                if layer.number not in covered]

    def is_complete(self) -> bool:
        """Whether every core layer is covered."""
        return not self.missing_layers()
