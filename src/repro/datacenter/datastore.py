"""Datacenter file residency and transfer accounting (data-aware C7).

The SC18 reference architecture for datacenter scheduling makes data
movement a first-class scheduling stage: where a task runs determines
how many of its input bytes must cross the network first.  The
:class:`DataStore` is the datacenter's view of that state — which
files are resident on which machine — plus the deterministic transfer
model the execution engine charges against.

The model is deliberately simple and fully deterministic:

- Every machine has a local disk cache; a shared backing store holds
  every file ever declared (workflow inputs with no producer are
  served from it on first access).
- Staging in a task's inputs costs ``remote_bytes / link_bandwidth``
  seconds on the destination machine's link
  (:attr:`~repro.datacenter.machine.MachineSpec.link_bandwidth`);
  bytes already resident cost nothing.
- Once staged (or published by a finishing producer), files stay
  resident — shared-disk semantics that survive machine failures, so a
  retry on the same machine pays no second transfer.

The store is inert for workloads that declare no files: no counters
move and no execution path changes, which is what keeps every
pre-existing scenario digest byte-identical.
"""

from __future__ import annotations

from ..workload.task import Task
from .machine import Machine

__all__ = ["DataStore"]


class DataStore:
    """Tracks file residency per machine and accounts transfers."""

    __slots__ = ("_resident", "transfer_seconds", "transfer_bytes",
                 "local_bytes", "transfers", "stagings")

    def __init__(self) -> None:
        #: machine name -> set of resident file names.
        self._resident: dict[str, set[str]] = {}
        #: Total stage-in time charged, in seconds.
        self.transfer_seconds = 0.0
        #: Total bytes moved over machine links.
        self.transfer_bytes = 0.0
        #: Total input bytes served from the local cache (no transfer).
        self.local_bytes = 0.0
        #: Stage-ins that actually moved at least one byte.
        self.transfers = 0
        #: Stage-in operations performed (tasks with inputs executed).
        self.stagings = 0

    # ------------------------------------------------------------------
    # Queries (used by placement policies)
    # ------------------------------------------------------------------
    def resident_files(self, machine_name: str) -> frozenset[str]:
        """Files currently resident on ``machine_name``."""
        return frozenset(self._resident.get(machine_name, ()))

    def holds(self, machine_name: str, file_name: str) -> bool:
        """Whether ``file_name`` is resident on ``machine_name``."""
        resident = self._resident.get(machine_name)
        return resident is not None and file_name in resident

    def remote_bytes(self, task: Task, machine_name: str) -> float:
        """Input bytes of ``task`` that are *not* resident on the machine.

        This is the quantity a data-locality placement policy
        minimizes; zero means every input is already local.
        """
        if not task.input_files:
            return 0.0
        resident = self._resident.get(machine_name)
        if not resident:
            return sum(task.input_files.values())
        return sum(size for name, size in task.input_files.items()
                   if name not in resident)

    # ------------------------------------------------------------------
    # Mutations (driven by the execution engine)
    # ------------------------------------------------------------------
    def stage_in(self, task: Task, machine: Machine) -> float:
        """Stage the task's inputs onto ``machine``; return the delay.

        Called synchronously at allocation time, so placements later in
        the same scheduling epoch already see the inputs resident.
        Returns the transfer time in seconds — remote bytes divided by
        the machine's link bandwidth — and updates the counters.
        """
        if not task.input_files:
            return 0.0
        resident = self._resident.setdefault(machine.name, set())
        moved = 0.0
        local = 0.0
        for name, size in task.input_files.items():
            if name in resident:
                local += size
            else:
                moved += size
                resident.add(name)
        self.stagings += 1
        self.local_bytes += local
        if not moved:
            return 0.0
        self.transfers += 1
        self.transfer_bytes += moved
        delay = moved / machine.spec.link_bandwidth
        self.transfer_seconds += delay
        return delay

    def publish(self, task: Task, machine_name: str) -> None:
        """Register the task's outputs as resident on ``machine_name``.

        Called when an execution finishes successfully; children placed
        on the same machine then read those outputs locally.
        """
        if not task.output_files:
            return
        resident = self._resident.setdefault(machine_name, set())
        resident.update(task.output_files)

    def statistics(self) -> dict[str, float]:
        """Flat numeric summary of the transfer accounting."""
        return {
            "transfer_seconds": self.transfer_seconds,
            "transfer_bytes": self.transfer_bytes,
            "local_bytes": self.local_bytes,
            "transfers": float(self.transfers),
            "stagings": float(self.stagings),
        }
