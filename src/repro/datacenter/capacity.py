"""Incremental capacity index over a datacenter topology.

The placement hot path of a cluster scheduler asks two questions tens of
thousands of times per simulated hour: *which machines are up?* and
*which machines can fit this task?*  Answering them by rescanning the
cluster/rack/machine tree is O(machines) per query and dominates
large-scale runs.  :class:`CapacityIndex` answers both incrementally:

- a flat, cached machine tuple (invalidated only on topology changes);
- per-cluster free/used core counters maintained from machine watcher
  notifications (O(1) per allocate/release, O(cluster) per
  failure/repair, which are rare);
- a :meth:`candidates` iterator that skips entire clusters whose free
  cores cannot satisfy a task before touching any machine;
- a :class:`CapacityVectors` view — numpy arrays of per-machine free
  cores and free memory, maintained as an exact mirror of the machine
  counters — on which vectorized placement policies evaluate a whole
  fleet in one C-speed pass instead of a per-machine attribute walk.

The index is deliberately *order-preserving*: machines are always
yielded in topology order (clusters, then racks, then mount order),
exactly the order the old ``Datacenter.available_machines()`` scan
produced, so placement decisions — and therefore whole simulations —
stay bit-identical.  The vector view obeys the same contract: array
slot ``i`` is machine ``i`` in topology order, every stored value is
computed by the same float expression :meth:`Machine.can_fit` uses, and
a down machine stores ``cores_free == -1`` so no task (``cores >= 1``)
can match it.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..workload.task import Task
from . import cluster as _topology
from .cluster import Cluster
from .machine import Machine

try:  # numpy backs the vectorized placement view; the scalar
    import numpy as _np  # candidates() path below works without it.
except ImportError:  # pragma: no cover - exercised via stubbed tests
    _np = None

__all__ = ["CapacityIndex", "CapacityVectors"]


class _ClusterEntry:
    """Per-cluster aggregate counters plus the cached machine list."""

    __slots__ = ("cluster", "machines", "free_cores", "used_cores",
                 "total_cores")

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.machines: tuple[Machine, ...] = ()
        self.free_cores = 0
        self.used_cores = 0
        self.total_cores = 0

    def recount(self) -> None:
        """Rebuild the machine list and counters from scratch."""
        self.machines = tuple(self.cluster.machines())
        free = 0
        used = 0
        total = 0
        for machine in self.machines:
            total += machine.spec.cores
            used += machine._cores_used
            if machine._available:
                free += machine.spec.cores - machine._cores_used
        self.free_cores = free
        self.used_cores = used
        self.total_cores = total


class CapacityVectors:
    """Numpy mirror of per-machine capacity, in topology order.

    Maintained by :class:`CapacityIndex` from the same machine watcher
    notifications that keep its cluster counters fresh.  Vectorized
    placement policies evaluate fit over these arrays instead of
    walking machine attributes; the arrays therefore replicate
    :meth:`Machine.can_fit` exactly:

    - ``cores_free[i]`` is ``spec.cores - machine._cores_used`` for an
      available machine and ``-1`` for a down one.  Tasks always demand
      at least one core, so ``task.cores <= cores_free[i]`` is
      bit-equivalent to ``machine.available and can-fit-cores``.
    - ``memory_free[i]`` stores the exact float produced by
      ``spec.memory - _alloc_memory - _reserved_memory`` — the same
      left-to-right expression ``can_fit`` evaluates — refreshed (not
      accumulated) on every notification, so no float drift is possible.
    - static columns (``speed``, ``cost_per_hour``, ``delta_watts``,
      ``cores_total``, ``name_rank``) feed the scoring placement
      policies; ``name_rank`` is the lexicographic rank of each machine
      name, replicating the ``(key, name)`` tie-breaks of the scalar
      policies without string comparisons.
    """

    __slots__ = ("machines", "cores_free", "memory_free",
                 "memory_free_eps", "speed", "cost_per_hour",
                 "delta_watts", "cores_total", "name_rank",
                 "_avail_positions", "_avail_epoch", "_index",
                 "_mask_a", "_mask_b")

    def __init__(self, machines: tuple[Machine, ...]) -> None:
        assert _np is not None
        n = len(machines)
        self.machines = machines
        self.cores_free = _np.empty(n, dtype=_np.int64)
        self.memory_free = _np.empty(n, dtype=_np.float64)
        #: ``memory_free + 1e-12`` maintained alongside, so the fit
        #: mask is two comparisons with no temporary allocation.
        self.memory_free_eps = _np.empty(n, dtype=_np.float64)
        self._mask_a = _np.empty(n, dtype=_np.bool_)
        self._mask_b = _np.empty(n, dtype=_np.bool_)
        self.speed = _np.empty(n, dtype=_np.float64)
        self.cost_per_hour = _np.empty(n, dtype=_np.float64)
        self.delta_watts = _np.empty(n, dtype=_np.float64)
        self.cores_total = _np.empty(n, dtype=_np.int64)
        self._index = {}
        for i, machine in enumerate(machines):
            spec = machine.spec
            self.speed[i] = spec.speed
            self.cost_per_hour[i] = spec.cost_per_hour
            self.delta_watts[i] = spec.max_watts - spec.idle_watts
            self.cores_total[i] = spec.cores
            self._index[machine.name] = i
            self.refresh(machine, i)
        self.name_rank = _np.empty(n, dtype=_np.int64)
        order = sorted(range(n), key=lambda i: machines[i].name)
        for rank, i in enumerate(order):
            self.name_rank[i] = rank
        self._avail_positions = None
        self._avail_epoch = -1

    def refresh(self, machine: Machine, i: int | None = None) -> None:
        """Re-derive machine ``i``'s row from its exact counters."""
        if i is None:
            i = self._index.get(machine.name)
            if i is None:
                return
        spec = machine.spec
        if machine._available:
            self.cores_free[i] = spec.cores - machine._cores_used
        else:
            self.cores_free[i] = -1
        free = (spec.memory - machine._alloc_memory
                - machine._reserved_memory)
        self.memory_free[i] = free
        self.memory_free_eps[i] = free + 1e-12

    def fit_mask(self, cores: int, memory: float):
        """Boolean fit mask over all machines for one task shape.

        Bit-equivalent to ``machine.available and machine.can_fit``:
        the memory comparison keeps ``can_fit``'s exact
        ``demand <= free + 1e-12`` form and operand order (the epsilon
        sum is precomputed per machine, which stores the identical
        float).  The returned array is a reused buffer, valid until the
        next ``fit_mask`` call on this view.
        """
        mask = self._mask_a
        _np.less_equal(cores, self.cores_free, out=mask)
        _np.less_equal(memory, self.memory_free_eps, out=self._mask_b)
        _np.logical_and(mask, self._mask_b, out=mask)
        return mask

    def available_positions(self, epoch: int):
        """Indices of up machines in topology order (epoch-cached)."""
        if self._avail_epoch != epoch:
            self._avail_positions = _np.flatnonzero(self.cores_free >= 0)
            self._avail_epoch = epoch
        return self._avail_positions


class CapacityIndex:
    """Watches machines and keeps datacenter-wide capacity aggregates.

    The index subscribes itself as a watcher on every machine; machines
    call back on every allocate/release (``machine_delta``) and on every
    availability flip (``machine_availability``).  Topology changes
    (racks/machines added after construction) are detected lazily via a
    cheap machine-count check on each query.
    """

    def __init__(self, clusters: Sequence[Cluster]) -> None:
        self.clusters = clusters
        self._entries: list[_ClusterEntry] = []
        self._by_cluster: dict[int, _ClusterEntry] = {}
        self._machines: tuple[Machine, ...] = ()
        self._machine_cluster: dict[str, _ClusterEntry] = {}
        #: Bumped whenever the set of *available* machines may have
        #: changed; lets callers cache availability-derived views.
        self.availability_epoch = 0
        #: Bumped whenever capacity may have *grown* anywhere (core or
        #: memory release, availability flip, topology rebuild).  While
        #: it stands still, a demand shape proven unplaceable stays
        #: unplaceable — the scheduler's dominated-demand skip carries
        #: its failed set across rounds on this guarantee.
        self.release_epoch = 0
        self._available_cache: tuple[Machine, ...] | None = None
        self._available_cache_epoch = -1
        self._topology_version = -1
        #: Numpy capacity mirror; ``None`` when numpy is unavailable,
        #: in which case callers fall back to :meth:`candidates`.
        self.vectors: CapacityVectors | None = None
        self._rebuild()

    # ------------------------------------------------------------------
    # Construction / topology maintenance
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Full re-index; called at construction and on topology growth."""
        self._entries = []
        self._by_cluster = {}
        self._machine_cluster = {}
        machines: list[Machine] = []
        for cluster in self.clusters:
            entry = _ClusterEntry(cluster)
            entry.recount()
            self._entries.append(entry)
            self._by_cluster[id(cluster)] = entry
            for machine in entry.machines:
                machine.add_watcher(self)
                self._machine_cluster[machine.name] = entry
            machines.extend(entry.machines)
        self._machines = tuple(machines)
        self.vectors = (CapacityVectors(self._machines)
                        if _np is not None else None)
        self.availability_epoch += 1
        self.release_epoch += 1
        self._available_cache = None

    def _check_topology(self) -> None:
        """Detect machines added since the last (re)build.

        Topology only ever *grows* (racks and machines are added, never
        removed), and every growth path bumps the process-wide
        ``cluster.topology_version()`` counter, so an unchanged version
        makes this probe O(1).  On a version change (possibly from an
        unrelated topology) a total-count comparison decides whether
        *this* index is stale.
        """
        version = _topology.topology_version()
        if version == self._topology_version:
            return
        count = 0
        for cluster in self.clusters:
            for rack in cluster.racks:
                count += len(rack.machines)
        if count != len(self._machines):
            self._rebuild()
        self._topology_version = version

    # ------------------------------------------------------------------
    # Watcher callbacks (invoked by Machine)
    # ------------------------------------------------------------------
    def machine_delta(self, machine: Machine, cores_delta: int) -> None:
        """An allocation changed by ``cores_delta`` cores on ``machine``."""
        entry = self._machine_cluster.get(machine.name)
        if entry is None:
            return
        entry.used_cores += cores_delta
        if machine._available:
            entry.free_cores -= cores_delta
        if cores_delta <= 0:
            # A release (or a zero-delta memory-reservation change) may
            # have grown capacity; invalidate carried failure proofs.
            self.release_epoch += 1
        if self.vectors is not None:
            self.vectors.refresh(machine)

    def machine_availability(self, machine: Machine) -> None:
        """``machine`` flipped availability (fail/repair/decommission)."""
        entry = self._machine_cluster.get(machine.name)
        if entry is not None:
            entry.recount()
        if self.vectors is not None:
            self.vectors.refresh(machine)
        self.availability_epoch += 1
        self.release_epoch += 1

    def sync(self) -> CapacityVectors | None:
        """Run the topology staleness check once and return the vectors.

        The scheduler calls this at the top of each epoch so the
        vectorized kernels inside the round can use the arrays without
        paying the per-query topology scan.  Topology can only change
        between events, never inside a synchronous scheduling round, so
        one check per round gives the same guarantee the per-query
        check gives the scalar paths.
        """
        self._check_topology()
        return self.vectors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def machines(self) -> tuple[Machine, ...]:
        """All machines in topology order (cached)."""
        self._check_topology()
        return self._machines

    def available_machines(self) -> tuple[Machine, ...]:
        """Machines that are up, in topology order (epoch-cached)."""
        self._check_topology()
        if self._available_cache_epoch != self.availability_epoch:
            self._available_cache = tuple(
                m for m in self._machines if m._available)
            self._available_cache_epoch = self.availability_epoch
        assert self._available_cache is not None
        return self._available_cache

    def used_cores_total(self) -> int:
        """Cores currently allocated across the datacenter."""
        self._check_topology()
        return sum(entry.used_cores for entry in self._entries)

    def total_cores(self) -> int:
        """Installed cores across the datacenter (cached)."""
        self._check_topology()
        return sum(entry.total_cores for entry in self._entries)

    def free_cores_total(self) -> int:
        """Cores currently free on available machines."""
        self._check_topology()
        return sum(entry.free_cores for entry in self._entries)

    def cluster_free_cores(self, cluster: Cluster) -> int:
        """Free cores of one cluster (counter lookup, no scan)."""
        self._check_topology()
        entry = self._by_cluster.get(id(cluster))
        return entry.free_cores if entry is not None else 0

    def cluster_used_cores(self, cluster: Cluster) -> int:
        """Used cores of one cluster (counter lookup, no scan)."""
        self._check_topology()
        entry = self._by_cluster.get(id(cluster))
        return entry.used_cores if entry is not None else 0

    def candidates(self, task: Task) -> Iterator[Machine]:
        """Machines that can fit ``task`` right now, in topology order.

        Equivalent to ``[m for m in available_machines() if
        m.can_fit(task)]`` but skips whole clusters whose free-core
        counter already rules them out.
        """
        self._check_topology()
        cores = task.cores
        memory = task.memory
        for entry in self._entries:
            if entry.free_cores < cores:
                continue
            for machine in entry.machines:
                if machine._available:
                    spec = machine.spec
                    if (cores <= spec.cores - machine._cores_used
                            and memory <= (spec.memory
                                           - machine._alloc_memory
                                           - machine._reserved_memory)
                            + 1e-12):
                        yield machine

    def has_candidate(self, task: Task) -> bool:
        """Whether at least one machine can fit ``task`` right now."""
        for _ in self.candidates(task):
            return True
        return False
