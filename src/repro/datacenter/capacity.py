"""Incremental capacity index over a datacenter topology.

The placement hot path of a cluster scheduler asks two questions tens of
thousands of times per simulated hour: *which machines are up?* and
*which machines can fit this task?*  Answering them by rescanning the
cluster/rack/machine tree is O(machines) per query and dominates
large-scale runs.  :class:`CapacityIndex` answers both incrementally:

- a flat, cached machine tuple (invalidated only on topology changes);
- per-cluster free/used core counters maintained from machine watcher
  notifications (O(1) per allocate/release, O(cluster) per
  failure/repair, which are rare);
- a :meth:`candidates` iterator that skips entire clusters whose free
  cores cannot satisfy a task before touching any machine.

The index is deliberately *order-preserving*: machines are always
yielded in topology order (clusters, then racks, then mount order),
exactly the order the old ``Datacenter.available_machines()`` scan
produced, so placement decisions — and therefore whole simulations —
stay bit-identical.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..workload.task import Task
from .cluster import Cluster
from .machine import Machine

__all__ = ["CapacityIndex"]


class _ClusterEntry:
    """Per-cluster aggregate counters plus the cached machine list."""

    __slots__ = ("cluster", "machines", "free_cores", "used_cores",
                 "total_cores")

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.machines: tuple[Machine, ...] = ()
        self.free_cores = 0
        self.used_cores = 0
        self.total_cores = 0

    def recount(self) -> None:
        """Rebuild the machine list and counters from scratch."""
        self.machines = tuple(self.cluster.machines())
        free = 0
        used = 0
        total = 0
        for machine in self.machines:
            total += machine.spec.cores
            used += machine._cores_used
            if machine._available:
                free += machine.spec.cores - machine._cores_used
        self.free_cores = free
        self.used_cores = used
        self.total_cores = total


class CapacityIndex:
    """Watches machines and keeps datacenter-wide capacity aggregates.

    The index subscribes itself as a watcher on every machine; machines
    call back on every allocate/release (``machine_delta``) and on every
    availability flip (``machine_availability``).  Topology changes
    (racks/machines added after construction) are detected lazily via a
    cheap machine-count check on each query.
    """

    def __init__(self, clusters: Sequence[Cluster]) -> None:
        self.clusters = clusters
        self._entries: list[_ClusterEntry] = []
        self._by_cluster: dict[int, _ClusterEntry] = {}
        self._machines: tuple[Machine, ...] = ()
        self._machine_cluster: dict[str, _ClusterEntry] = {}
        #: Bumped whenever the set of *available* machines may have
        #: changed; lets callers cache availability-derived views.
        self.availability_epoch = 0
        self._available_cache: tuple[Machine, ...] | None = None
        self._available_cache_epoch = -1
        self._rebuild()

    # ------------------------------------------------------------------
    # Construction / topology maintenance
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Full re-index; called at construction and on topology growth."""
        self._entries = []
        self._by_cluster = {}
        self._machine_cluster = {}
        machines: list[Machine] = []
        for cluster in self.clusters:
            entry = _ClusterEntry(cluster)
            entry.recount()
            self._entries.append(entry)
            self._by_cluster[id(cluster)] = entry
            for machine in entry.machines:
                machine.add_watcher(self)
                self._machine_cluster[machine.name] = entry
            machines.extend(entry.machines)
        self._machines = tuple(machines)
        self.availability_epoch += 1
        self._available_cache = None

    def _check_topology(self) -> None:
        """Detect machines added since the last (re)build.

        Topology only ever *grows* (racks and machines are added, never
        removed), so a total-count comparison is a sufficient and cheap
        staleness check.
        """
        count = 0
        for cluster in self.clusters:
            for rack in cluster.racks:
                count += len(rack.machines)
        if count != len(self._machines):
            self._rebuild()

    # ------------------------------------------------------------------
    # Watcher callbacks (invoked by Machine)
    # ------------------------------------------------------------------
    def machine_delta(self, machine: Machine, cores_delta: int) -> None:
        """An allocation changed by ``cores_delta`` cores on ``machine``."""
        entry = self._machine_cluster.get(machine.name)
        if entry is None:
            return
        entry.used_cores += cores_delta
        if machine._available:
            entry.free_cores -= cores_delta

    def machine_availability(self, machine: Machine) -> None:
        """``machine`` flipped availability (fail/repair/decommission)."""
        entry = self._machine_cluster.get(machine.name)
        if entry is not None:
            entry.recount()
        self.availability_epoch += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def machines(self) -> tuple[Machine, ...]:
        """All machines in topology order (cached)."""
        self._check_topology()
        return self._machines

    def available_machines(self) -> tuple[Machine, ...]:
        """Machines that are up, in topology order (epoch-cached)."""
        self._check_topology()
        if self._available_cache_epoch != self.availability_epoch:
            self._available_cache = tuple(
                m for m in self._machines if m._available)
            self._available_cache_epoch = self.availability_epoch
        assert self._available_cache is not None
        return self._available_cache

    def used_cores_total(self) -> int:
        """Cores currently allocated across the datacenter."""
        self._check_topology()
        return sum(entry.used_cores for entry in self._entries)

    def total_cores(self) -> int:
        """Installed cores across the datacenter (cached)."""
        self._check_topology()
        return sum(entry.total_cores for entry in self._entries)

    def free_cores_total(self) -> int:
        """Cores currently free on available machines."""
        self._check_topology()
        return sum(entry.free_cores for entry in self._entries)

    def cluster_free_cores(self, cluster: Cluster) -> int:
        """Free cores of one cluster (counter lookup, no scan)."""
        self._check_topology()
        entry = self._by_cluster.get(id(cluster))
        return entry.free_cores if entry is not None else 0

    def cluster_used_cores(self, cluster: Cluster) -> int:
        """Used cores of one cluster (counter lookup, no scan)."""
        self._check_topology()
        entry = self._by_cluster.get(id(cluster))
        return entry.used_cores if entry is not None else 0

    def candidates(self, task: Task) -> Iterator[Machine]:
        """Machines that can fit ``task`` right now, in topology order.

        Equivalent to ``[m for m in available_machines() if
        m.can_fit(task)]`` but skips whole clusters whose free-core
        counter already rules them out.
        """
        self._check_topology()
        cores = task.cores
        memory = task.memory
        for entry in self._entries:
            if entry.free_cores < cores:
                continue
            for machine in entry.machines:
                if machine._available:
                    spec = machine.spec
                    if (cores <= spec.cores - machine._cores_used
                            and memory <= (spec.memory
                                           - machine._alloc_memory
                                           - machine._reserved_memory)
                            + 1e-12):
                        yield machine

    def has_candidate(self, task: Task) -> bool:
        """Whether at least one machine can fit ``task`` right now."""
        for _ in self.candidates(task):
            return True
        return False
