"""Datacenter substrate (S3): machines, clusters, execution, layers.

Implements the paper's §6.1 "digital factories": heterogeneous machines
(C4), multi-cluster topologies, a task-execution engine with energy
accounting, the Figure 3 reference architecture, and federated
multi-datacenter delegation (C10).
"""

from .capacity import CapacityIndex
from .cluster import Cluster, Rack, heterogeneous_cluster, homogeneous_cluster
from .datacenter import Datacenter
from .datastore import DataStore
from .federation import (
    Federation,
    OffloadDecision,
    OffloadGate,
    least_loaded_offload,
    never_offload,
)
from .layers import (
    DATACENTER_LAYERS,
    DatacenterStack,
    Layer,
    LayeredComponent,
    ReferenceArchitecture,
)
from .machine import Machine, MachineKind, MachineSpec
from .scavenging import BorrowRecord, ScavengingCoordinator
from .softwaredefined import ControlPlane, ControlResult, MetaMiddleware
from .wide_area import (
    QueryResult,
    SiteData,
    WideAreaAnalytics,
    WideAreaLink,
    min_lookahead,
    secure_sum,
)

__all__ = [
    "Machine",
    "MachineKind",
    "MachineSpec",
    "Rack",
    "Cluster",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "Datacenter",
    "DataStore",
    "CapacityIndex",
    "Federation",
    "OffloadDecision",
    "OffloadGate",
    "never_offload",
    "least_loaded_offload",
    "Layer",
    "DATACENTER_LAYERS",
    "ReferenceArchitecture",
    "LayeredComponent",
    "DatacenterStack",
    "ScavengingCoordinator",
    "BorrowRecord",
    "ControlPlane",
    "ControlResult",
    "MetaMiddleware",
    "SiteData",
    "QueryResult",
    "WideAreaAnalytics",
    "WideAreaLink",
    "min_lookahead",
    "secure_sum",
]
