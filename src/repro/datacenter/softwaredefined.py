"""Software-defined control and legacy integration (C2).

"An important challenge of fully software-defined ecosystems is the
integration with *legacy* systems, i.e., partially software-defined
... Such problems have been successfully tackled in grid computing by
using an additional layer of indirection, such as a meta-middleware
[91][92] that reconciles many different sub-components and brokers
their inter-operation."

Two pieces:

- :class:`ControlPlane` — the software-defined control surface of a
  datacenter.  Fully software-defined machines accept dynamic lease /
  release / reconfigure commands; *legacy* machines reject them (they
  were racked once and run until decommissioned), so control actions
  report what they actually changed.
- :class:`MetaMiddleware` — the layer of indirection: it wraps legacy
  machines behind adapters that emulate the software-defined verbs the
  best they can (a release becomes "drain and park"), letting one
  policy drive a mixed fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .datacenter import Datacenter
from .machine import Machine

__all__ = ["ControlPlane", "ControlResult", "MetaMiddleware"]


@dataclass(frozen=True)
class ControlResult:
    """Outcome of a control-plane action over a set of machines."""

    action: str
    applied: tuple[str, ...]
    rejected: tuple[str, ...]

    @property
    def fully_applied(self) -> bool:
        """Whether no machine rejected the action."""
        return not self.rejected


class ControlPlane:
    """Software-defined control over a (possibly partly legacy) fleet.

    ``legacy`` names machines that are *not* software-defined: dynamic
    lease/release is rejected for them, reproducing the C2 reality that
    re-provisioning legacy systems "is an inefficient and intricate
    endeavor".
    """

    def __init__(self, datacenter: Datacenter,
                 legacy: Sequence[str] = ()) -> None:
        self.datacenter = datacenter
        self._machines = {m.name: m for m in datacenter.machines()}
        unknown = [name for name in legacy if name not in self._machines]
        if unknown:
            raise ValueError(f"unknown legacy machines: {unknown[:3]}")
        self._legacy = set(legacy)
        self._adapted: set[str] = set()
        #: Log of all control actions, audit-style.
        self.log: list[ControlResult] = []

    def is_software_defined(self, name: str) -> bool:
        """Whether dynamic control works on this machine."""
        return name not in self._legacy or name in self._adapted

    def software_defined_fraction(self) -> float:
        """How much of the fleet accepts dynamic control."""
        if not self._machines:
            return 1.0
        controllable = sum(1 for name in self._machines
                           if self.is_software_defined(name))
        return controllable / len(self._machines)

    def _apply(self, action: str, names: Sequence[str],
               operation) -> ControlResult:
        applied, rejected = [], []
        for name in names:
            if name not in self._machines:
                raise KeyError(name)
            if not self.is_software_defined(name):
                rejected.append(name)
                continue
            operation(self._machines[name])
            applied.append(name)
        result = ControlResult(action=action, applied=tuple(applied),
                               rejected=tuple(rejected))
        self.log.append(result)
        return result

    def release(self, names: Sequence[str]) -> ControlResult:
        """Dynamically power machines down (busy ones are skipped)."""
        def operation(machine: Machine) -> None:
            if not machine.running_tasks and machine.available:
                machine.account_energy(self.datacenter.sim.now)
                machine.available = False

        return self._apply("release", names, operation)

    def lease(self, names: Sequence[str]) -> ControlResult:
        """Dynamically power machines up."""
        def operation(machine: Machine) -> None:
            if not machine.available:
                self.datacenter.repair_machine(machine)

        return self._apply("lease", names, operation)

    # Used by MetaMiddleware to register adapters.
    def _adapt(self, name: str) -> None:
        if name not in self._legacy:
            raise ValueError(f"{name} is not a legacy machine")
        self._adapted.add(name)


class MetaMiddleware:
    """The C2 layer of indirection over a mixed fleet.

    Wrapping a legacy machine installs an adapter that emulates the
    software-defined verbs, raising the control plane's
    software-defined fraction — exactly how grid meta-middleware
    "reconciles many different sub-components".
    """

    def __init__(self, control_plane: ControlPlane) -> None:
        self.control_plane = control_plane
        self.adapters: list[str] = []

    def wrap_legacy(self, names: Sequence[str]) -> list[str]:
        """Install adapters for the given legacy machines.

        Returns the machines actually adapted; already-software-defined
        names are skipped (no adapter needed).
        """
        adapted = []
        for name in names:
            if self.control_plane.is_software_defined(name):
                continue
            self.control_plane._adapt(name)
            self.adapters.append(name)
            adapted.append(name)
        return adapted

    def wrap_all(self) -> list[str]:
        """Adapt every remaining legacy machine in the fleet."""
        legacy = [name for name in self.control_plane._machines
                  if not self.control_plane.is_software_defined(name)]
        return self.wrap_legacy(legacy)
