"""Racks and clusters: the physical topology of a datacenter.

The paper (C2) sizes the largest datacenters at "hundreds of thousands
of compute servers, and tens of thousands of switches"; the topology
here — machines in racks in clusters — is the standard multi-cluster
model of IaaS datacenters (§6.1) and matches the OpenDC topology model.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .machine import Machine, MachineKind, MachineSpec

__all__ = ["Rack", "Cluster", "homogeneous_cluster", "heterogeneous_cluster",
           "topology_version"]

#: Process-wide count of topology mutations (racks built or extended).
#: CapacityIndex snapshots it to make its staleness probe O(1): an
#: unchanged version proves no machine was mounted anywhere, so the
#: per-rack recount can be skipped entirely.
_TOPOLOGY_VERSION = 0


def topology_version() -> int:
    """Current global topology-mutation count."""
    return _TOPOLOGY_VERSION


def _bump_topology() -> None:
    global _TOPOLOGY_VERSION
    _TOPOLOGY_VERSION += 1


class Rack:
    """A rack of machines sharing a top-of-rack switch."""

    def __init__(self, name: str, machines: Sequence[Machine] = ()) -> None:
        self.name = name
        self.machines: list[Machine] = list(machines)
        _bump_topology()

    def add(self, machine: Machine) -> Machine:
        """Mount a machine in this rack."""
        self.machines.append(machine)
        _bump_topology()
        return machine

    def __iter__(self) -> Iterator[Machine]:
        return iter(self.machines)

    def __len__(self) -> int:
        return len(self.machines)

    @property
    def total_cores(self) -> int:
        """Sum of core counts across mounted machines."""
        return sum(m.spec.cores for m in self.machines)


class Cluster:
    """A named group of racks, typically one scheduling domain."""

    def __init__(self, name: str, racks: Sequence[Rack] = ()) -> None:
        self.name = name
        self.racks: list[Rack] = list(racks)
        _bump_topology()

    def add_rack(self, rack: Rack) -> Rack:
        """Add a rack to the cluster."""
        self.racks.append(rack)
        _bump_topology()
        return rack

    def machines(self) -> list[Machine]:
        """All machines in rack order."""
        return [machine for rack in self.racks for machine in rack]

    def __len__(self) -> int:
        return sum(len(rack) for rack in self.racks)

    @property
    def total_cores(self) -> int:
        """Total cores in the cluster."""
        return sum(rack.total_cores for rack in self.racks)

    @property
    def available_cores(self) -> int:
        """Currently free cores across available machines."""
        return sum(m.cores_free for m in self.machines())

    def utilization(self) -> float:
        """Aggregate core utilization in [0, 1]."""
        total = self.total_cores
        if total == 0:
            return 0.0
        return sum(m.cores_used for m in self.machines()) / total


def homogeneous_cluster(name: str, n_machines: int,
                        spec: MachineSpec = MachineSpec(),
                        machines_per_rack: int = 16) -> Cluster:
    """A cluster of identical machines — the cloud-core baseline (§1)."""
    if n_machines < 1:
        raise ValueError("n_machines must be >= 1")
    if machines_per_rack < 1:
        raise ValueError("machines_per_rack must be >= 1")
    cluster = Cluster(name)
    rack: Rack | None = None
    for i in range(n_machines):
        if i % machines_per_rack == 0:
            rack = cluster.add_rack(Rack(f"{name}-rack-{i // machines_per_rack}"))
        assert rack is not None
        rack.add(Machine(f"{name}-m{i}", spec))
    return cluster


def heterogeneous_cluster(name: str, n_cpu: int = 12, n_gpu: int = 3,
                          n_fpga: int = 1,
                          machines_per_rack: int = 8) -> Cluster:
    """A mixed CPU/GPU/FPGA cluster exhibiting C4's extreme heterogeneity."""
    cluster = Cluster(name)
    specs = (
        [MachineSpec(cores=16, memory=64.0, speed=1.0,
                     kind=MachineKind.CPU)] * n_cpu
        + [MachineSpec(cores=8, memory=32.0, speed=4.0,
                       kind=MachineKind.GPU, idle_watts=150.0,
                       max_watts=500.0, cost_per_hour=4.0)] * n_gpu
        + [MachineSpec(cores=4, memory=16.0, speed=2.0,
                       kind=MachineKind.FPGA, idle_watts=40.0,
                       max_watts=120.0, cost_per_hour=2.0)] * n_fpga
    )
    rack: Rack | None = None
    for i, spec in enumerate(specs):
        if i % machines_per_rack == 0:
            rack = cluster.add_rack(Rack(f"{name}-rack-{i // machines_per_rack}"))
        assert rack is not None
        rack.add(Machine(f"{name}-{spec.kind.value}{i}", spec))
    return cluster
