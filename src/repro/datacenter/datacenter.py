"""The datacenter: clusters plus a task-execution engine.

A :class:`Datacenter` binds a physical topology (clusters of racks of
machines) to a simulator and executes tasks on machines as simulation
processes.  It is the "digital factory" of §6.1 — schedulers
(:mod:`repro.scheduling`) decide *where* work runs; the datacenter
carries it out, accounts energy, and reacts to machine failures.
"""

from __future__ import annotations

from typing import Sequence

from ..core.entity import CollectiveFunction, Ecosystem, System
from ..sim import Interrupt, Process, Simulator, TimeWeightedMonitor
from ..workload.task import Task
from .capacity import CapacityIndex
from .cluster import Cluster
from .datastore import DataStore
from .machine import Machine

__all__ = ["Datacenter"]


class Datacenter:
    """Executes tasks on the machines of one or more clusters."""

    def __init__(self, sim: Simulator, clusters: Sequence[Cluster],
                 name: str = "dc", operator: str = "operator") -> None:
        if not clusters:
            raise ValueError("a datacenter needs at least one cluster")
        self.sim = sim
        self.name = name
        self.operator = operator
        self.clusters: list[Cluster] = list(clusters)
        #: Incremental capacity aggregates; schedulers use it to probe
        #: fitting machines without rescanning the topology.
        self.capacity = CapacityIndex(self.clusters)
        #: File residency + transfer accounting for data-aware
        #: scheduling; inert (no counters, no timing changes) for
        #: workloads that declare no input/output files.
        self.data = DataStore()
        self.used_cores = TimeWeightedMonitor(f"{name}.used_cores",
                                              start_time=sim.now)
        self.completed_tasks: list[Task] = []
        self.failed_executions = 0
        #: Core-seconds of work destroyed by interrupted executions
        #: (work since the victim's last checkpoint).
        self.wasted_core_seconds = 0.0
        #: Core-seconds preserved by checkpoints across interruptions.
        self.preserved_core_seconds = 0.0
        #: Per-interruption (task, lost_work) log, in task-runtime
        #: seconds — the chaos harness checks checkpoint invariants here.
        self.execution_losses: list[tuple[Task, float]] = []
        self._running: dict[Task, Process] = {}
        #: Deferred-flush seam for scheduling epochs: while a scheduler
        #: round is open (``begin_epoch``), per-execution ``used_cores``
        #: monitor adds and gauge sets are accumulated here and flushed
        #: once at ``end_epoch``.  A round is synchronous — no other
        #: event can observe the monitor mid-round — and same-timestamp
        #: updates carry zero weighted time, so one merged add is
        #: bit-identical to the per-execution adds it replaces.
        self._epoch_depth = 0
        self._epoch_cores = 0
        #: Called whenever capacity reappears (machine repair); cluster
        #: schedulers subscribe their wake-up here.
        self.on_capacity_change: list = []

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def machines(self) -> list[Machine]:
        """All machines across all clusters (cached topology order)."""
        return list(self.capacity.machines())

    def available_machines(self) -> list[Machine]:
        """Machines that are up (cached between availability changes)."""
        return list(self.capacity.available_machines())

    @property
    def total_cores(self) -> int:
        """Total installed cores."""
        return self.capacity.total_cores()

    def utilization(self) -> float:
        """Instantaneous aggregate core utilization in [0, 1]."""
        total = self.capacity.total_cores()
        if total == 0:
            return 0.0
        return self.capacity.used_cores_total() / total

    def mean_utilization(self) -> float:
        """Time-weighted mean utilization since the simulation start."""
        total = self.total_cores
        if total == 0:
            return 0.0
        return self.used_cores.time_average(until=self.sim.now) / total

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, task: Task, machine: Machine) -> Process:
        """Run ``task`` on ``machine`` as a simulation process.

        Capacity is claimed *synchronously* — by the time this method
        returns, the task holds its cores, so a scheduler's fit-check
        cannot be invalidated by a concurrent placement.  The process
        holds the allocation for the machine-speed-adjusted runtime
        (plus any input stage-in time, see :class:`DataStore`), then
        releases it.  If interrupted (failure or preemption) the task
        is marked failed and capacity released.  The returned process
        event succeeds with the task on normal completion.
        """
        machine.account_energy(self.sim.now)
        machine.allocate(task)
        # Stage-in is synchronous too: the inputs become resident the
        # instant placement commits, so later placements in the same
        # scheduling epoch already see them for locality scoring.
        transfer = (self.data.stage_in(task, machine)
                    if task.input_files else 0.0)
        if self._epoch_depth:
            self._epoch_cores += task.cores
        else:
            self.used_cores.add(self.sim.now, task.cores)
        task.start(self.sim.now, machine.name)
        observer = self.sim.observer
        span = None
        if observer is not None:
            observer.metrics.counter("datacenter.executions_started").inc()
            if not self._epoch_depth:
                observer.metrics.gauge("datacenter.used_cores").set(
                    float(self.capacity.used_cores_total()))
            span = observer.tracer.begin(
                "exec " + task.name, category="datacenter",
                parent=observer.tracer.active(("task", task.task_id)),
                attrs={"task": task.name, "machine": machine.name,
                       "cores": task.cores, "attempt": task.attempts})
        process = self.sim.process(self._execute(task, machine, span,
                                                 transfer),
                                   name=f"exec-{task.name}")
        self._running[task] = process
        return process

    def begin_epoch(self) -> None:
        """Open a deferred-flush epoch (one scheduler round)."""
        self._epoch_depth += 1

    def end_epoch(self) -> None:
        """Close an epoch, flushing the batched bookkeeping once."""
        self._epoch_depth -= 1
        if self._epoch_depth:
            return
        cores = self._epoch_cores
        if cores:
            self._epoch_cores = 0
            self.used_cores.add(self.sim.now, cores)
            observer = self.sim.observer
            if observer is not None:
                observer.metrics.gauge("datacenter.used_cores").set(
                    float(self.capacity.used_cores_total()))

    def _execute(self, task: Task, machine: Machine, span=None,
                 transfer: float = 0.0):
        remaining_before = task.remaining_work
        service = machine.effective_runtime(task)
        if transfer:
            # Input stage-in extends the service interval; the guard
            # keeps file-less executions on the exact historical float
            # path (service + 0.0 is an op, skipping it is not).
            service += transfer
        started = self.sim.now
        try:
            yield self.sim.timeout(service)
        except Interrupt:
            machine.account_energy(self.sim.now)
            if task in machine.running_tasks:
                machine.release(task)
            self.used_cores.add(self.sim.now, -task.cores)
            # Progress scales with the fraction of the service time
            # served; checkpoints preserve the part up to the last
            # interval boundary, the rest is wasted work.
            work_done = 0.0
            if service > 0:
                work_done = remaining_before * (self.sim.now - started) / service
            preserved, lost = task.record_progress(work_done)
            self.preserved_core_seconds += preserved * task.cores
            self.wasted_core_seconds += lost * task.cores
            self.execution_losses.append((task, lost))
            task.fail(self.sim.now)
            self.failed_executions += 1
            self._running.pop(task, None)
            observer = self.sim.observer
            if observer is not None:
                observer.metrics.counter(
                    "datacenter.executions_interrupted").inc()
                observer.metrics.counter(
                    "datacenter.wasted_core_seconds").inc(lost * task.cores)
                observer.metrics.gauge("datacenter.used_cores").set(
                    float(self.capacity.used_cores_total()))
                if span is not None:
                    observer.tracer.end(span,
                                        attrs={"outcome": "interrupted"})
            return None
        machine.account_energy(self.sim.now)
        machine.release(task)
        self.used_cores.add(self.sim.now, -task.cores)
        task.finish(self.sim.now)
        if task.output_files:
            self.data.publish(task, machine.name)
        self.completed_tasks.append(task)
        self._running.pop(task, None)
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.counter("datacenter.executions_finished").inc()
            observer.metrics.gauge("datacenter.used_cores").set(
                float(self.capacity.used_cores_total()))
            if span is not None:
                observer.tracer.end(span, attrs={"outcome": "finished"})
        return task

    def interrupt_task(self, task: Task, cause: str = "preempted") -> None:
        """Interrupt a running execution (failure injection, preemption)."""
        process = self._running.get(task)
        if process is None:
            raise KeyError(f"task {task.name} is not running here")
        process.interrupt(cause)

    def fail_machine(self, machine: Machine) -> list[Task]:
        """Bring a machine down, interrupting everything on it (S8)."""
        victims = machine.running_tasks
        machine.account_energy(self.sim.now)
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.counter("datacenter.machine_failures").inc()
            observer.tracer.instant(
                "machine-failure " + machine.name, category="resilience",
                attrs={"machine": machine.name, "victims": len(victims)})
        for task in victims:
            self.interrupt_task(task, cause=f"machine-failure:{machine.name}")
        machine.available = False
        return victims

    def repair_machine(self, machine: Machine) -> None:
        """Bring a failed machine back into service."""
        machine.account_energy(self.sim.now)
        machine.repair()
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.counter("datacenter.machine_repairs").inc()
            observer.tracer.instant(
                "machine-repair " + machine.name, category="resilience",
                attrs={"machine": machine.name})
        # Copy first: callbacks may (un)register observers reentrantly.
        for callback in tuple(self.on_capacity_change):
            callback()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_energy_joules(self) -> float:
        """Energy consumed by all machines up to the current sim time."""
        now = self.sim.now
        total = 0.0
        for machine in self.capacity.machines():
            machine.account_energy(now)
            total += machine.energy_joules
        return total

    # ------------------------------------------------------------------
    # Ecosystem view (§2.1)
    # ------------------------------------------------------------------
    def as_ecosystem(self) -> Ecosystem:
        """Expose the datacenter as a paper-§2.1 ecosystem.

        Clusters become sub-ecosystems of machine systems; the
        collective function is serving the customer workload, which
        requires most machines to collaborate.
        """
        eco = Ecosystem(self.name, function="datacenter services",
                        owner=self.operator)
        for cluster in self.clusters:
            sub = Ecosystem(cluster.name, function="scheduling domain",
                            owner=self.operator)
            for machine in cluster.machines():
                sub.add(System(machine.name, function="task execution",
                               owner=self.operator,
                               kind=machine.spec.kind.value))
            eco.add(sub)
        eco.register_collective_function(
            CollectiveFunction("serve-customer-workload",
                               required_fraction=0.8))
        return eco
