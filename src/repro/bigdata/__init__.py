"""Big-data ecosystem substrate (S9): the Figure 1 stack made executable.

The four-layer component catalog with the MapReduce and Pregel
sub-ecosystems, plus workflow-DAG simulators of both engines.
"""

from .engines import mapreduce_job, pregel_job, straggler_slowdown
from .stack import (
    BIGDATA_COMPONENTS,
    EXECUTION_LAYERS,
    SUB_ECOSYSTEMS,
    BigDataStack,
    StackComponent,
    StackLayer,
)

__all__ = [
    "StackLayer",
    "StackComponent",
    "BIGDATA_COMPONENTS",
    "SUB_ECOSYSTEMS",
    "EXECUTION_LAYERS",
    "BigDataStack",
    "mapreduce_job",
    "pregel_job",
    "straggler_slowdown",
]
