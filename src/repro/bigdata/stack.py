"""The big-data ecosystem stack (paper Figure 1, §2.1).

Figure 1 shows the four-layer reference architecture of the big-data
ecosystem — *High-Level Language*, *Programming Model*, *Execution
Engine*, *Storage Engine* — with the components of the MapReduce and
Pregel sub-ecosystems highlighted as "the minimum set of layers
necessary for execution".

This module regenerates the figure as a component catalog and makes
the minimum-set rule checkable: :meth:`BigDataStack.execution_ready`
verifies an assembly covers the bottom three layers, exactly the
figure's highlighted criterion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["StackLayer", "StackComponent", "BIGDATA_COMPONENTS",
           "SUB_ECOSYSTEMS", "BigDataStack"]


class StackLayer(enum.Enum):
    """The four conceptual layers of Figure 1, top to bottom."""

    HIGH_LEVEL_LANGUAGE = "High-Level Language"
    PROGRAMMING_MODEL = "Programming Model"
    EXECUTION_ENGINE = "Execution Engine"
    STORAGE_ENGINE = "Storage Engine"


#: Layers an application must cover to execute (Figure 1's highlight:
#: "the minimum set of layers necessary for execution" excludes the
#: optional high-level language).
EXECUTION_LAYERS = (StackLayer.PROGRAMMING_MODEL,
                    StackLayer.EXECUTION_ENGINE,
                    StackLayer.STORAGE_ENGINE)


@dataclass(frozen=True)
class StackComponent:
    """One component box of Figure 1."""

    name: str
    layer: StackLayer
    vendor: str = "apache"


#: The component catalog of Figure 1 (representative, as in the paper).
BIGDATA_COMPONENTS: tuple[StackComponent, ...] = (
    StackComponent("Hive", StackLayer.HIGH_LEVEL_LANGUAGE),
    StackComponent("Pig", StackLayer.HIGH_LEVEL_LANGUAGE),
    StackComponent("SQL", StackLayer.HIGH_LEVEL_LANGUAGE, vendor="ansi"),
    StackComponent("MapReduce", StackLayer.PROGRAMMING_MODEL),
    StackComponent("Pregel", StackLayer.PROGRAMMING_MODEL, vendor="google"),
    StackComponent("Dataflow", StackLayer.PROGRAMMING_MODEL, vendor="google"),
    StackComponent("Hadoop", StackLayer.EXECUTION_ENGINE),
    StackComponent("Spark", StackLayer.EXECUTION_ENGINE, vendor="databricks"),
    StackComponent("Giraph", StackLayer.EXECUTION_ENGINE),
    StackComponent("HDFS", StackLayer.STORAGE_ENGINE),
    StackComponent("S3", StackLayer.STORAGE_ENGINE, vendor="amazon"),
    StackComponent("HBase", StackLayer.STORAGE_ENGINE),
)

#: The two sub-ecosystems Figure 1 highlights, as component-name sets.
SUB_ECOSYSTEMS: dict[str, tuple[str, ...]] = {
    "mapreduce": ("MapReduce", "Hadoop", "HDFS"),
    "pregel": ("Pregel", "Giraph", "HDFS"),
}


class BigDataStack:
    """An assembled big-data application stack."""

    def __init__(self, name: str,
                 components: Iterable[StackComponent] = ()) -> None:
        self.name = name
        self._components: list[StackComponent] = list(components)

    @classmethod
    def sub_ecosystem(cls, name: str) -> "BigDataStack":
        """Build one of the Figure 1 highlighted sub-ecosystems."""
        if name not in SUB_ECOSYSTEMS:
            raise KeyError(f"unknown sub-ecosystem {name!r}; "
                           f"known: {sorted(SUB_ECOSYSTEMS)}")
        catalog = {c.name: c for c in BIGDATA_COMPONENTS}
        return cls(name, [catalog[n] for n in SUB_ECOSYSTEMS[name]])

    def add(self, component: StackComponent) -> StackComponent:
        """Place one component in the stack."""
        self._components.append(component)
        return component

    def __iter__(self) -> Iterator[StackComponent]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def at_layer(self, layer: StackLayer) -> list[StackComponent]:
        """Components at one Figure 1 layer."""
        return [c for c in self._components if c.layer is layer]

    def covered_layers(self) -> set[StackLayer]:
        """Layers with at least one component."""
        return {c.layer for c in self._components}

    def missing_execution_layers(self) -> list[StackLayer]:
        """Execution-critical layers not yet covered."""
        covered = self.covered_layers()
        return [layer for layer in EXECUTION_LAYERS if layer not in covered]

    def execution_ready(self) -> bool:
        """Figure 1's criterion: bottom three layers are all covered."""
        return not self.missing_execution_layers()

    def vendors(self) -> set[str]:
        """Distinct vendors — a heterogeneity signal (§2.1)."""
        return {c.vendor for c in self._components}
