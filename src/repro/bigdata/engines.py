"""MapReduce and Pregel execution-engine simulators (Figure 1, §2.1).

The two sub-ecosystems Figure 1 highlights become executable here:

- :func:`mapreduce_job` builds the classic two-phase DAG — M map tasks,
  a shuffle barrier, R reduce tasks — whose makespan exhibits the
  straggler sensitivity that motivates the paper's *vicissitude*
  discussion [22].
- :func:`pregel_job` builds a BSP (Valiant's Bulk Synchronous Parallel,
  one of the paper's §3.5 computational-model imports) superstep chain:
  W workers per superstep with a global barrier between supersteps,
  and per-superstep work that decays as vertices converge.

Both produce :class:`~repro.workload.workflow.Workflow` objects, so the
same scheduler, autoscaler, and failure machinery applies to them —
the point of an ecosystem: components compose across layers.
"""

from __future__ import annotations

import random

from ..workload.task import Task
from ..workload.workflow import Workflow

__all__ = ["mapreduce_job", "pregel_job", "straggler_slowdown"]


def mapreduce_job(n_maps: int = 16, n_reduces: int = 4,
                  map_runtime: float = 10.0, reduce_runtime: float = 20.0,
                  shuffle_overhead: float = 2.0,
                  straggler_fraction: float = 0.0,
                  straggler_factor: float = 5.0,
                  rng: random.Random | None = None,
                  submit_time: float = 0.0) -> Workflow:
    """A MapReduce job as a workflow DAG.

    Every reduce depends on every map (the shuffle barrier); the
    shuffle cost is charged to the reduce runtimes.  A fraction of map
    tasks can be made stragglers (``straggler_factor`` x slower), the
    classic MapReduce tail pathology.
    """
    if n_maps < 1 or n_reduces < 0:
        raise ValueError("need n_maps >= 1 and n_reduces >= 0")
    if not 0.0 <= straggler_fraction <= 1.0:
        raise ValueError("straggler_fraction must be in [0, 1]")
    if straggler_factor < 1.0:
        raise ValueError("straggler_factor must be >= 1")
    rng = rng or random.Random(0)
    wf = Workflow("mapreduce", submit_time=submit_time)
    n_stragglers = round(n_maps * straggler_fraction)
    maps = []
    for i in range(n_maps):
        runtime = max(0.1, rng.gauss(map_runtime, map_runtime / 10))
        if i < n_stragglers:
            runtime *= straggler_factor
        maps.append(wf.add_task(Task(runtime, name=f"map-{i}",
                                     kind="mapreduce")))
    for j in range(n_reduces):
        runtime = max(0.1, rng.gauss(reduce_runtime, reduce_runtime / 10))
        wf.add_task(Task(runtime + shuffle_overhead, name=f"reduce-{j}",
                         kind="mapreduce"), dependencies=maps)
    wf.validate()
    return wf


def pregel_job(n_workers: int = 8, n_supersteps: int = 6,
               superstep_runtime: float = 10.0,
               convergence: float = 0.7,
               rng: random.Random | None = None,
               submit_time: float = 0.0) -> Workflow:
    """A Pregel/BSP job as a workflow DAG.

    Each superstep has ``n_workers`` tasks separated from the next
    superstep by a global barrier (every worker of step s+1 depends on
    every worker of step s).  Per-superstep work decays geometrically
    by ``convergence`` — modeling active-vertex sets shrinking as the
    computation converges (BFS frontiers, PageRank residuals).
    """
    if n_workers < 1 or n_supersteps < 1:
        raise ValueError("need n_workers >= 1 and n_supersteps >= 1")
    if not 0.0 < convergence <= 1.0:
        raise ValueError("convergence must be in (0, 1]")
    rng = rng or random.Random(0)
    wf = Workflow("pregel", submit_time=submit_time)
    previous: list[Task] = []
    work = superstep_runtime
    for s in range(n_supersteps):
        current = []
        for w in range(n_workers):
            runtime = max(0.05, rng.gauss(work, work / 10))
            current.append(wf.add_task(
                Task(runtime, name=f"ss{s}-w{w}", kind="pregel"),
                dependencies=previous))
        previous = current
        work *= convergence
    wf.validate()
    return wf


def straggler_slowdown(clean_makespan: float,
                       straggler_makespan: float) -> float:
    """Relative makespan inflation caused by stragglers (>= 1)."""
    if clean_makespan <= 0:
        raise ValueError("clean_makespan must be positive")
    return straggler_makespan / clean_makespan
