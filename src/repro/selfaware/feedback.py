"""Feedback loops up to MAPE-K self-awareness (P4, C6, [17], [95]).

The paper (P4) makes self-awareness "a key building block":
"Self-awareness includes monitoring and sensing, which give input
(feedback) to Resource Management and Scheduling."  Kounev et al.'s
definition [17] is the MAPE-K loop: Monitor, Analyze, Plan, Execute
over a shared Knowledge base.

:class:`MAPEKLoop` runs that loop periodically inside a simulation;
:class:`PIDController` is the "simple feedback loop" end of C6's
spectrum, usable as the Analyze+Plan stages for scalar targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..sim import Simulator

__all__ = ["Knowledge", "MAPEKLoop", "PIDController", "AlertDrivenAdaptation"]


@dataclass
class Knowledge:
    """The K of MAPE-K: models and state shared across loop stages."""

    facts: dict[str, Any] = field(default_factory=dict)
    history: list[tuple[float, dict[str, float]]] = field(default_factory=list)

    def remember(self, time: float, observations: Mapping[str, float]) -> None:
        """Append one observation snapshot to the history."""
        self.history.append((time, dict(observations)))

    def recent(self, metric: str, n: int = 10) -> list[float]:
        """The last ``n`` observed values of ``metric``."""
        values = [obs[metric] for _, obs in self.history if metric in obs]
        return values[-n:]


#: Monitor: () -> metric snapshot.
SensorFn = Callable[[], Mapping[str, float]]
#: Analyze: (knowledge, observations) -> symptoms.
AnalyzeFn = Callable[[Knowledge, Mapping[str, float]], Mapping[str, float]]
#: Plan: (knowledge, symptoms) -> actions.
PlanFn = Callable[[Knowledge, Mapping[str, float]], Mapping[str, float]]
#: Execute: (actions) -> None.
ExecuteFn = Callable[[Mapping[str, float]], None]


class MAPEKLoop:
    """A periodic Monitor-Analyze-Plan-Execute loop over Knowledge."""

    def __init__(self, sim: Simulator, sensor: SensorFn, analyze: AnalyzeFn,
                 plan: PlanFn, execute: ExecuteFn,
                 interval: float = 10.0,
                 knowledge: Knowledge | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.sensor = sensor
        self.analyze = analyze
        self.plan = plan
        self.execute = execute
        self.interval = interval
        self.knowledge = knowledge or Knowledge()
        self.iterations = 0
        self._stopped = False
        sim.process(self._run(), name="mape-k")

    def step(self) -> Mapping[str, float]:
        """Run one full M-A-P-E iteration; returns the actions taken."""
        observations = self.sensor()
        self.knowledge.remember(self.sim.now, observations)
        symptoms = self.analyze(self.knowledge, observations)
        actions = self.plan(self.knowledge, symptoms)
        self.execute(actions)
        self.iterations += 1
        return actions

    def _run(self):
        while not self._stopped:
            self.step()
            yield self.sim.timeout(self.interval)

    def stop(self) -> None:
        """Stop the loop at the next tick."""
        self._stopped = True


class AlertDrivenAdaptation:
    """Turns SLO burn-rate alerts into immediate adaptation triggers.

    The periodic :class:`MAPEKLoop` senses on a fixed cadence; this
    bridge adds the event-driven path the paper's P4 asks for —
    "monitoring and sensing, which give input (feedback) to Resource
    Management and Scheduling" — by subscribing to an
    :class:`~repro.observability.slo.SLOEngine` (anything with an
    ``on_alert`` list) and reacting the instant an alert lands.

    Args:
        engine: The alert source; its ``on_alert`` list gains this
            bridge as a subscriber.
        loop: Optional :class:`MAPEKLoop` whose :meth:`MAPEKLoop.step`
            runs out-of-cadence on every ``fire`` event.
        handler: Optional callable invoked with *every*
            :class:`~repro.observability.slo.AlertEvent` (fires and
            resolves) for custom reactions.

    At least one of ``loop`` / ``handler`` is required.  Every
    received event is kept in :attr:`triggered` for assertions.
    """

    def __init__(self, engine: Any, loop: MAPEKLoop | None = None,
                 handler: Callable[[Any], None] | None = None) -> None:
        if loop is None and handler is None:
            raise ValueError(
                "AlertDrivenAdaptation needs a MAPE-K loop, a handler, "
                "or both — with neither it could not adapt anything")
        self.engine = engine
        self.loop = loop
        self.handler = handler
        #: Every alert event received, in arrival order.
        self.triggered: list[Any] = []
        engine.on_alert.append(self._on_alert)

    def _on_alert(self, event: Any) -> None:
        self.triggered.append(event)
        if self.handler is not None:
            self.handler(event)
        if self.loop is not None and event.kind == "fire":
            self.loop.step()


class PIDController:
    """A discrete PID controller for scalar setpoint tracking.

    C6 approach class (i): "feedback control-based techniques".  Call
    :meth:`update` once per control period with the measured value; the
    returned control signal is the adjustment to apply.
    """

    def __init__(self, setpoint: float, kp: float = 1.0, ki: float = 0.0,
                 kd: float = 0.0,
                 output_limits: tuple[float, float] = (-float("inf"),
                                                       float("inf"))) -> None:
        if output_limits[0] > output_limits[1]:
            raise ValueError("invalid output limits")
        self.setpoint = setpoint
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.output_limits = output_limits
        self._integral = 0.0
        self._previous_error: float | None = None

    def update(self, measured: float, dt: float = 1.0) -> float:
        """One control step; returns the clamped control output."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        error = self.setpoint - measured
        self._integral += error * dt
        derivative = (0.0 if self._previous_error is None
                      else (error - self._previous_error) / dt)
        self._previous_error = error
        output = (self.kp * error + self.ki * self._integral
                  + self.kd * derivative)
        low, high = self.output_limits
        return max(low, min(high, output))

    def reset(self) -> None:
        """Clear integral and derivative state."""
        self._integral = 0.0
        self._previous_error = None
