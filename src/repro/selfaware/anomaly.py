"""Anomaly detection and recovery planning (C6 problems (i) and (viii)).

Two streaming detectors — a robust z-score detector and a static
threshold detector — plus a :class:`RecoveryPlanner` that watches a
scheduler for failed tasks and resubmits them with bounded retries,
the smallest useful instance of C6's "recovery planning" problem class.
"""

from __future__ import annotations

import math
from collections import deque

from ..scheduling.scheduler import ClusterScheduler
from ..workload.task import Task, TaskState

__all__ = ["ZScoreDetector", "ThresholdDetector", "RecoveryPlanner"]


class ZScoreDetector:
    """Flags values far from the sliding-window mean.

    A value is anomalous when ``|value - mean| > threshold * std`` over
    the last ``window`` observations.  Warm-up observations (fewer than
    ``min_samples``) are never flagged.
    """

    def __init__(self, window: int = 50, threshold: float = 3.0,
                 min_samples: int = 10) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self._values: deque[float] = deque(maxlen=window)
        self.anomalies: list[tuple[int, float]] = []
        self._count = 0

    def observe(self, value: float) -> bool:
        """Feed one observation; returns True if it is anomalous.

        Anomalous observations are recorded but *not* added to the
        window, so a burst of outliers cannot mask itself.
        """
        self._count += 1
        if len(self._values) >= self.min_samples:
            mean = sum(self._values) / len(self._values)
            variance = sum((v - mean) ** 2
                           for v in self._values) / len(self._values)
            std = math.sqrt(variance)
            if std > 0 and abs(value - mean) > self.threshold * std:
                self.anomalies.append((self._count, value))
                return True
        self._values.append(value)
        return False


class ThresholdDetector:
    """Flags values outside a static [low, high] band."""

    def __init__(self, low: float = -float("inf"),
                 high: float = float("inf")) -> None:
        if low > high:
            raise ValueError("low must not exceed high")
        self.low = low
        self.high = high
        self.anomalies: list[float] = []

    def observe(self, value: float) -> bool:
        """Feed one observation; returns True if outside the band."""
        if value < self.low or value > self.high:
            self.anomalies.append(value)
            return True
        return False


class RecoveryPlanner:
    """Resubmits failed tasks under a composable retry policy.

    Registers on the scheduler's completion hook; every task that
    arrives in the FAILED state is reset and resubmitted according to
    a :class:`~repro.resilience.policies.RetryPolicy` — after the
    policy's backoff delay, until its attempt budget is spent, after
    which the task is recorded as abandoned.

    Args:
        scheduler: The scheduler to watch and resubmit through.
        max_retries: Retry budget when no ``retry_policy`` is given;
            the resulting default policy resubmits immediately
            (zero-delay fixed backoff), the seed's historic behavior.
        retry_policy: Overrides ``max_retries`` with an explicit
            policy (e.g. exponential backoff with jitter).
        rng: Optional jitter source — pass a
            :class:`~repro.sim.RandomStreams` substream so recovery
            stays bit-reproducible under one experiment seed.
    """

    def __init__(self, scheduler: ClusterScheduler,
                 max_retries: int = 3, retry_policy=None,
                 rng=None) -> None:
        if retry_policy is None:
            if max_retries < 0:
                raise ValueError("max_retries must be non-negative")
            # Lazy import: repro.resilience.chaos imports the
            # scheduling stack, so a module-level import would cycle.
            from ..resilience.policies import FixedBackoff, NoRetry
            retry_policy = (NoRetry() if max_retries == 0 else
                            FixedBackoff(max_attempts=max_retries + 1,
                                         delay=0.0))
        self.scheduler = scheduler
        self.retry_policy = retry_policy
        self.max_retries = retry_policy.max_retries
        self._rng = rng
        self._sessions: dict[int, object] = {}
        self.retries: dict[int, int] = {}
        self.recovered: list[Task] = []
        self.abandoned: list[Task] = []
        scheduler.on_task_complete.append(self._on_task_complete)

    def _on_task_complete(self, task: Task) -> None:
        if task.state is TaskState.FINISHED:
            if task.task_id in self.retries:
                self.recovered.append(task)
            return
        if task.state is not TaskState.FAILED:
            return
        session = self._sessions.get(task.task_id)
        if session is None:
            session = self.retry_policy.session(self._rng)
            self._sessions[task.task_id] = session
        delay = session.next_delay()
        if delay is None:
            self.abandoned.append(task)
            return
        self.retries[task.task_id] = session.retries
        if delay <= 0:
            task.reset_for_retry()
            self.scheduler.submit(task)
        else:
            self.scheduler.sim.process(
                self._resubmit_later(task, delay),
                name=f"recovery-{task.name}")

    def _resubmit_later(self, task: Task, delay: float):
        yield self.scheduler.sim.timeout(delay)
        if task.state is TaskState.FAILED:
            task.reset_for_retry()
            self.scheduler.submit(task)

    @property
    def total_retries(self) -> int:
        """Total resubmissions performed."""
        return sum(self.retries.values())
