"""Anomaly detection and recovery planning (C6 problems (i) and (viii)).

Two streaming detectors — a robust z-score detector and a static
threshold detector — plus a :class:`RecoveryPlanner` that watches a
scheduler for failed tasks and resubmits them with bounded retries,
the smallest useful instance of C6's "recovery planning" problem class.
"""

from __future__ import annotations

import math
from collections import deque

from ..scheduling.scheduler import ClusterScheduler
from ..workload.task import Task, TaskState

__all__ = ["ZScoreDetector", "ThresholdDetector", "RecoveryPlanner"]


class ZScoreDetector:
    """Flags values far from the sliding-window mean.

    A value is anomalous when ``|value - mean| > threshold * std`` over
    the last ``window`` observations.  Warm-up observations (fewer than
    ``min_samples``) are never flagged.
    """

    def __init__(self, window: int = 50, threshold: float = 3.0,
                 min_samples: int = 10) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self._values: deque[float] = deque(maxlen=window)
        self.anomalies: list[tuple[int, float]] = []
        self._count = 0

    def observe(self, value: float) -> bool:
        """Feed one observation; returns True if it is anomalous.

        Anomalous observations are recorded but *not* added to the
        window, so a burst of outliers cannot mask itself.
        """
        self._count += 1
        if len(self._values) >= self.min_samples:
            mean = sum(self._values) / len(self._values)
            variance = sum((v - mean) ** 2
                           for v in self._values) / len(self._values)
            std = math.sqrt(variance)
            if std > 0 and abs(value - mean) > self.threshold * std:
                self.anomalies.append((self._count, value))
                return True
        self._values.append(value)
        return False


class ThresholdDetector:
    """Flags values outside a static [low, high] band."""

    def __init__(self, low: float = -float("inf"),
                 high: float = float("inf")) -> None:
        if low > high:
            raise ValueError("low must not exceed high")
        self.low = low
        self.high = high
        self.anomalies: list[float] = []

    def observe(self, value: float) -> bool:
        """Feed one observation; returns True if outside the band."""
        if value < self.low or value > self.high:
            self.anomalies.append(value)
            return True
        return False


class RecoveryPlanner:
    """Resubmits failed tasks with a bounded retry budget.

    Registers on the scheduler's completion hook; every task that
    arrives in the FAILED state is reset and resubmitted, up to
    ``max_retries`` times, after which it is recorded as abandoned.
    """

    def __init__(self, scheduler: ClusterScheduler,
                 max_retries: int = 3) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.scheduler = scheduler
        self.max_retries = max_retries
        self.retries: dict[int, int] = {}
        self.recovered: list[Task] = []
        self.abandoned: list[Task] = []
        scheduler.on_task_complete.append(self._on_task_complete)

    def _on_task_complete(self, task: Task) -> None:
        if task.state is TaskState.FINISHED:
            if task.task_id in self.retries:
                self.recovered.append(task)
            return
        if task.state is not TaskState.FAILED:
            return
        used = self.retries.get(task.task_id, 0)
        if used >= self.max_retries:
            self.abandoned.append(task)
            return
        self.retries[task.task_id] = used + 1
        task.reset_for_retry()
        self.scheduler.submit(task)

    @property
    def total_retries(self) -> int:
        """Total resubmissions performed."""
        return sum(self.retries.values())
