"""The adaptation taxonomy of the paper's self-awareness survey (C6, [95]).

C6 cites the authors' 2017 survey [95], which identified **10 classes
of problems** with immediate practical use and **7 classes of existing
approaches**.  This module encodes both taxonomies, the
problem-to-approach applicability map, and — because this reproduction
is executable — the :mod:`repro` component implementing each approach
class where one exists.
"""

from __future__ import annotations

import enum

__all__ = ["AdaptationProblem", "AdaptationApproach",
           "APPROACH_IMPLEMENTATIONS", "APPLICABILITY", "approaches_for",
           "problems_addressed_by"]


class AdaptationProblem(enum.Enum):
    """The 10 problem classes of [95] (paper C6, list (i)-(x))."""

    RECOVERY_PLANNING = "recovery planning"
    AUTOSCALING = "autoscaling of resources"
    RECONFIGURATION = "runtime architectural reconfiguration and load balancing"
    FAULT_TOLERANCE = "fault-tolerance in distributed systems"
    ENERGY_PROPORTIONALITY = "energy-proportionality and energy-efficient operation"
    WORKLOAD_PREDICTION = "workload prediction"
    PERFORMANCE_ISOLATION = "performance isolation"
    DIAGNOSIS = "diagnosis and troubleshooting"
    TOPOLOGY_DISCOVERY = "discovery of application topology"
    INTRUSION_DETECTION = "intrusion detection and prevention"


class AdaptationApproach(enum.Enum):
    """The 7 approach classes of [95] (paper C6, list (i)-(vii))."""

    FEEDBACK_CONTROL = "feedback control-based techniques"
    METRIC_OPTIMIZATION = "metric optimization with constraints"
    MACHINE_LEARNING = "machine learning-based techniques"
    PORTFOLIO_SCHEDULING = "portfolio scheduling"
    SELF_AWARE_RECONFIGURATION = "self-aware architecture reconfiguration"
    STOCHASTIC_MODELS = "stochastic performance models"
    OTHER = "other approaches"


#: Approach class -> repro component that implements it (where built).
APPROACH_IMPLEMENTATIONS: dict[AdaptationApproach, str] = {
    AdaptationApproach.FEEDBACK_CONTROL:
        "repro.selfaware.feedback.PIDController",
    AdaptationApproach.METRIC_OPTIMIZATION:
        "repro.navigation.selection",
    AdaptationApproach.MACHINE_LEARNING:
        "repro.autoscaling.autoscalers.RegAutoscaler",
    AdaptationApproach.PORTFOLIO_SCHEDULING:
        "repro.scheduling.portfolio.PortfolioScheduler",
    AdaptationApproach.SELF_AWARE_RECONFIGURATION:
        "repro.selfaware.feedback.MAPEKLoop",
    AdaptationApproach.STOCHASTIC_MODELS:
        "repro.solvers.queueing",
    AdaptationApproach.OTHER:
        "repro.autoscaling.autoscalers",
}

#: Problem class -> approach classes applied to it in practice ([95]).
APPLICABILITY: dict[AdaptationProblem, tuple[AdaptationApproach, ...]] = {
    AdaptationProblem.RECOVERY_PLANNING: (
        AdaptationApproach.SELF_AWARE_RECONFIGURATION,
        AdaptationApproach.STOCHASTIC_MODELS,
        AdaptationApproach.OTHER),
    AdaptationProblem.AUTOSCALING: (
        AdaptationApproach.FEEDBACK_CONTROL,
        AdaptationApproach.MACHINE_LEARNING,
        AdaptationApproach.PORTFOLIO_SCHEDULING,
        AdaptationApproach.STOCHASTIC_MODELS),
    AdaptationProblem.RECONFIGURATION: (
        AdaptationApproach.SELF_AWARE_RECONFIGURATION,
        AdaptationApproach.METRIC_OPTIMIZATION,
        AdaptationApproach.FEEDBACK_CONTROL),
    AdaptationProblem.FAULT_TOLERANCE: (
        AdaptationApproach.SELF_AWARE_RECONFIGURATION,
        AdaptationApproach.STOCHASTIC_MODELS,
        AdaptationApproach.OTHER),
    AdaptationProblem.ENERGY_PROPORTIONALITY: (
        AdaptationApproach.FEEDBACK_CONTROL,
        AdaptationApproach.METRIC_OPTIMIZATION),
    AdaptationProblem.WORKLOAD_PREDICTION: (
        AdaptationApproach.MACHINE_LEARNING,
        AdaptationApproach.STOCHASTIC_MODELS),
    AdaptationProblem.PERFORMANCE_ISOLATION: (
        AdaptationApproach.FEEDBACK_CONTROL,
        AdaptationApproach.METRIC_OPTIMIZATION),
    AdaptationProblem.DIAGNOSIS: (
        AdaptationApproach.MACHINE_LEARNING,
        AdaptationApproach.OTHER),
    AdaptationProblem.TOPOLOGY_DISCOVERY: (
        AdaptationApproach.MACHINE_LEARNING,
        AdaptationApproach.OTHER),
    AdaptationProblem.INTRUSION_DETECTION: (
        AdaptationApproach.MACHINE_LEARNING,
        AdaptationApproach.OTHER),
}


def approaches_for(problem: AdaptationProblem) -> tuple[AdaptationApproach, ...]:
    """The approach classes applied in practice to ``problem``."""
    return APPLICABILITY[problem]


def problems_addressed_by(
        approach: AdaptationApproach) -> list[AdaptationProblem]:
    """The problem classes an approach class has been applied to."""
    return [problem for problem, approaches in APPLICABILITY.items()
            if approach in approaches]
