"""Self-awareness substrate (S7): feedback, adaptation, anomaly handling.

MAPE-K loops and PID control ([17], C6), the 10-problem / 7-approach
adaptation taxonomy of the paper's survey [95], streaming anomaly
detectors, and retry-based recovery planning.
"""

from .adaptation import (
    APPLICABILITY,
    APPROACH_IMPLEMENTATIONS,
    AdaptationApproach,
    AdaptationProblem,
    approaches_for,
    problems_addressed_by,
)
from .anomaly import RecoveryPlanner, ThresholdDetector, ZScoreDetector
from .feedback import (AlertDrivenAdaptation, Knowledge, MAPEKLoop,
                       PIDController)

__all__ = [
    "Knowledge",
    "MAPEKLoop",
    "PIDController",
    "AlertDrivenAdaptation",
    "AdaptationProblem",
    "AdaptationApproach",
    "APPROACH_IMPLEMENTATIONS",
    "APPLICABILITY",
    "approaches_for",
    "problems_addressed_by",
    "ZScoreDetector",
    "ThresholdDetector",
    "RecoveryPlanner",
]
