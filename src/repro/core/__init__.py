"""Ecosystem core model (substrate S2).

Executable forms of the paper's conceptual artifacts: the §2.1 system /
ecosystem definitions, first-class non-functional requirements (P3),
and the registries that regenerate Tables 1-5.
"""

from .challenges import CHALLENGES, Challenge, ChallengeRegistry
from .curriculum import (
    CURRICULUM_ADDITIONS,
    CurriculumAddition,
    CurriculumRegistry,
)
from .entity import CollectiveFunction, Ecosystem, System
from .fields import (
    CHARACTER_CODES,
    FIELDS,
    METHODOLOGY_CODES,
    OBJECTIVE_CODES,
    FieldComparison,
    FieldRegistry,
)
from .nfr import SLA, SLO, Direction, NFRKind, Requirement, SLAReport
from .overview import OVERVIEW_ENTRIES, MCSOverview, OverviewEntry
from .principles import PRINCIPLES, Principle, PrincipleRegistry, PrincipleType
from .profession import (
    CertificationBody,
    License,
    Privilege,
    Professional,
    UnlicensedOperationError,
    require_license,
)
from .properties import (
    SuperFlexibility,
    merge_ecosystems,
    split_ecosystem,
    super_scalability,
)
from .usecases import USE_CASES, UseCase, UseCaseDirection, UseCaseRegistry

__all__ = [
    "System",
    "Ecosystem",
    "CollectiveFunction",
    "SuperFlexibility",
    "super_scalability",
    "merge_ecosystems",
    "split_ecosystem",
    "NFRKind",
    "Direction",
    "Requirement",
    "SLO",
    "SLA",
    "SLAReport",
    "Principle",
    "PrincipleType",
    "PrincipleRegistry",
    "PRINCIPLES",
    "Challenge",
    "ChallengeRegistry",
    "CHALLENGES",
    "CurriculumAddition",
    "CurriculumRegistry",
    "CURRICULUM_ADDITIONS",
    "Privilege",
    "Professional",
    "License",
    "CertificationBody",
    "UnlicensedOperationError",
    "require_license",
    "OverviewEntry",
    "MCSOverview",
    "OVERVIEW_ENTRIES",
    "UseCase",
    "UseCaseDirection",
    "UseCaseRegistry",
    "USE_CASES",
    "FieldComparison",
    "FieldRegistry",
    "FIELDS",
    "OBJECTIVE_CODES",
    "METHODOLOGY_CODES",
    "CHARACTER_CODES",
]
