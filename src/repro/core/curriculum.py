"""The BOKMCS curriculum additions (C12).

C12 asks for "a teachable common body of knowledge for MCS" and lists
five concrete additions to the ACM/IEEE and NSF/IEEE-TCPP curricula.
The registry encodes them with the audience they target and — because
this reproduction is executable — the :mod:`repro` modules a student
would study for each addition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["CurriculumAddition", "CURRICULUM_ADDITIONS",
           "CurriculumRegistry"]


@dataclass(frozen=True)
class CurriculumAddition:
    """One of the C12 additions (i)-(v)."""

    index: str
    title: str
    description: str
    audience: str
    study_modules: tuple[str, ...]


#: The five C12 additions, in the paper's order.
CURRICULUM_ADDITIONS: tuple[CurriculumAddition, ...] = (
    CurriculumAddition(
        "i", "General problem-solving techniques",
        "the computer-centric and human-centric techniques of §3.5: "
        "heuristic search, evolutionary computing, queueing models, "
        "performance models",
        "all students",
        ("repro.solvers.search", "repro.solvers.evolutionary",
         "repro.solvers.queueing", "repro.solvers.roofline")),
    CurriculumAddition(
        "ii", "Systems Thinking",
        "elements of Complex Adaptive Systems and Control Theory: "
        "analyzing ecosystems to find laws, synthesizing and tuning them",
        "all students",
        ("repro.core.entity", "repro.selfaware.feedback",
         "repro.evolution.model")),
    CurriculumAddition(
        "iii", "Design Thinking",
        "representation and evaluation of designs, designs with "
        "quantitative, qualitative, and even no final goals",
        "all students",
        ("repro.navigation.selection", "repro.scheduling.reference")),
    CurriculumAddition(
        "iv", "Requirements engineering and user-centered design",
        "in-depth non-functional-requirements analysis with realistic "
        "and quantitative aspects",
        "students from low-quality SE courses",
        ("repro.core.nfr",)),
    CurriculumAddition(
        "v", "Experiment design and systematic surveys",
        "basics of experiment design with software artifacts, "
        "systematic literature surveys, user studies",
        "students from traditional curricula",
        ("repro.sim.rng", "repro.graphproc.graphalytics",
         "repro.graphproc.calibration")),
)


class CurriculumRegistry:
    """Queryable form of the C12 additions."""

    def __init__(self, additions: tuple[CurriculumAddition, ...]
                 = CURRICULUM_ADDITIONS) -> None:
        indices = [a.index for a in additions]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate addition indices")
        self._additions = additions

    def __iter__(self) -> Iterator[CurriculumAddition]:
        return iter(self._additions)

    def __len__(self) -> int:
        return len(self._additions)

    def get(self, index: str) -> CurriculumAddition:
        """Look up an addition by its roman index ('i'..'v')."""
        for addition in self._additions:
            if addition.index == index:
                return addition
        raise KeyError(index)

    def for_all_students(self) -> list[CurriculumAddition]:
        """The universally recommended additions (i)-(iii)."""
        return [a for a in self._additions if a.audience == "all students"]

    def study_plan(self) -> list[tuple[str, str]]:
        """(module, addition title) pairs — the executable syllabus."""
        return [(module, addition.title)
                for addition in self._additions
                for module in addition.study_modules]
