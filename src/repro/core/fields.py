"""Comparison of emerging fields of science (paper §7.3, Table 5).

Table 5 places MCS alongside five other fields that emerged from a
crisis within a parent discipline, using Ropohl's epistemological
framework: objectives (Design / Engineering / Scientific), object,
methodology and character, each encoded by single-letter acronyms the
paper defines in the table footnote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "OBJECTIVE_CODES",
    "METHODOLOGY_CODES",
    "CHARACTER_CODES",
    "FieldComparison",
    "FIELDS",
    "FieldRegistry",
]

#: Objective codes from the Table 5 footnote (Ropohl's framework).
OBJECTIVE_CODES: dict[str, str] = {
    "D": "Design",
    "E": "Engineering",
    "S": "Scientific",
}

#: Methodology codes from the Table 5 footnote.
METHODOLOGY_CODES: dict[str, str] = {
    "A": "abstraction",
    "D": "design (abductive creation)",
    "H": "hierarchy",
    "I": "idealization",
    "S": "simulation",
    "P": "prototyping",
}

#: Character codes from the Table 5 footnote.
CHARACTER_CODES: dict[str, str] = {
    "A": "applicability",
    "C": "approved by the scientific/design/engineering community",
    "E": "empirically accurate",
    "H": "harmony between results",
    "M": "mathematically detailed",
    "S": "simplicity",
    "T": "truth",
    "U": "universality",
}


@dataclass(frozen=True)
class FieldComparison:
    """One row of Table 5."""

    name: str
    decade: str
    crisis: str
    continues: str
    objectives: str
    object: str
    methodology: str
    character: str
    envisioned: bool = False

    def __post_init__(self) -> None:
        for code in self.objectives:
            if code not in OBJECTIVE_CODES:
                raise ValueError(f"unknown objective code {code!r}")
        for code in self.methodology:
            if code not in METHODOLOGY_CODES:
                raise ValueError(f"unknown methodology code {code!r}")
        for code in self.character:
            if code not in CHARACTER_CODES:
                raise ValueError(f"unknown character code {code!r}")

    def expand_objectives(self) -> list[str]:
        """Objective codes expanded to their names."""
        return [OBJECTIVE_CODES[c] for c in self.objectives]

    def expand_methodology(self) -> list[str]:
        """Methodology codes expanded to their names."""
        return [METHODOLOGY_CODES[c] for c in self.methodology]

    def expand_character(self) -> list[str]:
        """Character codes expanded to their names."""
        return [CHARACTER_CODES[c] for c in self.character]


#: Table 5 of the paper (the MCS row is envisioned, as the caption notes).
FIELDS: tuple[FieldComparison, ...] = (
    FieldComparison("Modern Ecology", "1990s", "Biodiversity loss",
                    "Ecology and Evolution", "DS", "Biosphere",
                    "ADHS", "AC"),
    FieldComparison("Modern Chem. Process", "1990s", "Process complexity",
                    "Chemical Engineering", "DE", "Chemical proc.",
                    "ADHSP", "ACEM"),
    FieldComparison("Systems Biology", "2000s", "Systems complexity",
                    "Molecular biology", "S", "Biological sys.",
                    "AHS", "ACEMTU"),
    FieldComparison("Modern Mech. Design", "2000s", "Process sustainability",
                    "Technical Design", "DE", "Mechanical sys.",
                    "DHSP", "ACEM"),
    FieldComparison("Modern Optoelectronics", "2010s", "Artificial media",
                    "Microwave technology", "S", "Metamaterials",
                    "DHSP", "ACEMTU"),
    FieldComparison("MCS", "this work", "Systems complexity",
                    "Distributed Systems", "DES", "Ecosystems",
                    "ADHSP", "ACES", envisioned=True),
)


class FieldRegistry:
    """Queryable regeneration of Table 5."""

    def __init__(self, fields: tuple[FieldComparison, ...] = FIELDS) -> None:
        self._fields = fields

    def __iter__(self) -> Iterator[FieldComparison]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def get(self, name: str) -> FieldComparison:
        """Look up a field row by name."""
        for field_row in self._fields:
            if field_row.name == name:
                return field_row
        raise KeyError(name)

    def mcs(self) -> FieldComparison:
        """The (envisioned) MCS row."""
        return self.get("MCS")

    def closest_to_mcs(self) -> FieldComparison:
        """The non-MCS field most similar to MCS under Table 5's encoding.

        The paper singles out Systems Biology as closest to MCS; the
        decisive feature is the shared *crisis* ("Systems complexity"),
        which therefore dominates the score, with Jaccard similarity
        over methodology and character codes breaking ties.
        """
        mcs = self.mcs()

        def jaccard(a: str, b: str) -> float:
            sa, sb = set(a), set(b)
            return len(sa & sb) / len(sa | sb) if sa | sb else 1.0

        def similarity(row: FieldComparison) -> float:
            crisis_match = 2.0 if row.crisis == mcs.crisis else 0.0
            return (crisis_match
                    + jaccard(row.methodology, mcs.methodology)
                    + jaccard(row.character, mcs.character))

        candidates = [f for f in self._fields if f.name != "MCS"]
        return max(candidates, key=similarity)

    def table_rows(self) -> list[tuple[str, ...]]:
        """Rows exactly as printed in Table 5."""
        return [(f"{f.name} ({f.decade})", f.crisis, f.continues,
                 f.objectives, f.object, f.methodology, f.character)
                for f in self._fields]
