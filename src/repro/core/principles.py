"""The ten core principles of MCS (paper §4, Table 2).

The registry regenerates Table 2 exactly: each principle carries its
type (Systems / Peopleware / Methodology), index, key aspects, statement
and the section that introduces it.  P9's corollary — "revisit
periodically the principles" — is implemented by
:meth:`PrincipleRegistry.revise`, which produces a new revision of the
registry rather than mutating it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["PrincipleType", "Principle", "PrincipleRegistry", "PRINCIPLES"]


class PrincipleType(enum.Enum):
    """Row groups of Table 2."""

    SYSTEMS = "Systems"
    PEOPLEWARE = "Peopleware"
    METHODOLOGY = "Methodology"


@dataclass(frozen=True)
class Principle:
    """One principle row of Table 2."""

    index: str
    type: PrincipleType
    key_aspects: str
    statement: str
    section: str

    def __post_init__(self) -> None:
        if not self.index.startswith("P"):
            raise ValueError(f"principle index must start with 'P': {self.index}")

    @property
    def number(self) -> int:
        """Numeric part of the index (P4 -> 4)."""
        return int(self.index[1:])


#: Table 2 of the paper, verbatim key aspects.
PRINCIPLES: tuple[Principle, ...] = (
    Principle("P1", PrincipleType.SYSTEMS, "The Age of Ecosystems",
              "This is the Age of Computer Ecosystems.", "4"),
    Principle("P2", PrincipleType.SYSTEMS, "software-defined everything",
              "Software-defined everything, but humans can still shape and "
              "control the loop.", "4.1"),
    Principle("P3", PrincipleType.SYSTEMS, "non-functional requirements",
              "Non-functional properties are first-class concerns, composable "
              "and portable, whose relative importance and target values are "
              "dynamic.", "4.1"),
    Principle("P4", PrincipleType.SYSTEMS, "RM&S, Self-Awareness",
              "Resource Management and Scheduling, and their combination with "
              "other capabilities to achieve local and global Self-Awareness, "
              "are key to ensure non-functional properties at runtime.", "4.1"),
    Principle("P5", PrincipleType.SYSTEMS, "super-distributed",
              "Ecosystems are super-distributed.", "4.1"),
    Principle("P6", PrincipleType.PEOPLEWARE, "fundamental rights",
              "People have a fundamental right to learn and to use ICT, and "
              "to understand their own use.", "4.2"),
    Principle("P7", PrincipleType.PEOPLEWARE, "professional privilege",
              "Experimenting, creating, and operating ecosystems are "
              "professional privileges, granted through provable professional "
              "competence and integrity.", "4.2"),
    Principle("P8", PrincipleType.METHODOLOGY,
              "science, practice, and culture of MCS",
              "We understand and create together a science, practice, and "
              "culture of computer ecosystems.", "4.3"),
    Principle("P9", PrincipleType.METHODOLOGY, "evolution and emergence",
              "We are aware of the evolution and emergent behavior of computer "
              "ecosystems, and control and nurture them.", "4.3"),
    Principle("P10", PrincipleType.METHODOLOGY, "ethics and transparency",
              "We consider and help develop the ethics of computer ecosystems, "
              "and inform and educate all stakeholders about them.", "4.3"),
)


class PrincipleRegistry:
    """Queryable, revisable collection of principles."""

    def __init__(self, principles: Sequence[Principle] = PRINCIPLES,
                 revision: int = 1) -> None:
        indices = [p.index for p in principles]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate principle indices")
        self._principles = tuple(principles)
        self.revision = revision

    def __iter__(self) -> Iterator[Principle]:
        return iter(self._principles)

    def __len__(self) -> int:
        return len(self._principles)

    def get(self, index: str) -> Principle:
        """Look up a principle by index (e.g. ``"P4"``)."""
        for principle in self._principles:
            if principle.index == index:
                return principle
        raise KeyError(index)

    def by_type(self, type_: PrincipleType) -> list[Principle]:
        """All principles in one Table 2 row group."""
        return [p for p in self._principles if p.type is type_]

    def revise(self, updates: Sequence[Principle] = (),
               additions: Sequence[Principle] = ()) -> "PrincipleRegistry":
        """P9 corollary: produce a revised registry (non-mutating).

        ``updates`` replace principles with matching indices; ``additions``
        append new ones.
        """
        by_index = {p.index: p for p in self._principles}
        for update in updates:
            if update.index not in by_index:
                raise KeyError(f"cannot update unknown principle {update.index}")
            by_index[update.index] = update
        for addition in additions:
            if addition.index in by_index:
                raise ValueError(f"principle {addition.index} already exists")
            by_index[addition.index] = addition
        ordered = sorted(by_index.values(), key=lambda p: p.number)
        return PrincipleRegistry(ordered, revision=self.revision + 1)

    def table_rows(self) -> list[tuple[str, str, str]]:
        """(type, index, key aspects) rows exactly as printed in Table 2."""
        return [(p.type.value, p.index, p.key_aspects) for p in self._principles]
