"""Non-functional requirements as first-class objects (P3, C3).

The paper's Principle P3 makes non-functional properties "first-class
concerns, composable and portable, whose relative importance and target
values are dynamic".  Challenge C3 refines this into *spatial*
fine-grained NFRs (per unit of work) and *temporal* fine-grained NFRs
(targets that change over time).

This module provides:

- :class:`NFRKind` — the paper's catalogue of non-functional dimensions.
- :class:`Requirement` — one target on one metric, with direction,
  weight, spatial scope, and optional time-varying target schedule.
- :class:`SLO` / :class:`SLA` — service-level objective/agreement
  containers with satisficing evaluation (Simon's satisficing, §3.5:
  "better than X" rather than optimal).
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["NFRKind", "Direction", "Requirement", "SLO", "SLA",
           "SLAReport"]


class NFRKind(enum.Enum):
    """Non-functional dimensions named by the paper (P3, §2.1, [32])."""

    PERFORMANCE = "performance"
    AVAILABILITY = "availability"
    RELIABILITY = "reliability"
    SCALABILITY = "scalability"
    ELASTICITY = "elasticity"
    SECURITY = "security"
    TRUST = "trust"
    PRIVACY = "privacy"
    COST = "cost"
    RISK = "risk"
    ISOLATION = "performance-isolation"
    ENERGY = "energy"


class Direction(enum.Enum):
    """Whether smaller or larger measured values are better."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"

    def satisfied(self, measured: float, target: float) -> bool:
        """Satisficing test of ``measured`` against ``target``."""
        if self is Direction.MINIMIZE:
            return measured <= target
        return measured >= target


@dataclass
class Requirement:
    """A single non-functional requirement on a named metric.

    Attributes:
        kind: The non-functional dimension this requirement concerns.
        metric: Concrete metric name (e.g. ``"p99_response_time"``).
        target: The satisficing threshold.
        direction: Whether the metric should stay below or above target.
        weight: Relative importance; P3 says importance is fluid, so
            weights may be re-assigned at any time.
        scope: Spatial scope (C3): ``"application"`` (the current
            practice), or fine-grained values such as ``"task"``,
            ``"function"``, ``"microservice"``.
        schedule: Optional temporal fine-grained targets: a sorted list
            of ``(from_time, target)`` pairs overriding ``target``.
    """

    kind: NFRKind
    metric: str
    target: float
    direction: Direction = Direction.MINIMIZE
    weight: float = 1.0
    scope: str = "application"
    schedule: Sequence[tuple[float, float]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"weight must be non-negative, got {self.weight}")
        times = [t for t, _ in self.schedule]
        if times != sorted(times):
            raise ValueError("schedule must be sorted by time")

    def target_at(self, time: float) -> float:
        """The effective target at ``time`` (temporal fine-grained NFRs)."""
        if not self.schedule:
            return self.target
        times = [t for t, _ in self.schedule]
        index = bisect_right(times, time) - 1
        if index < 0:
            return self.target
        return self.schedule[index][1]

    def satisfied(self, measured: float, time: float = 0.0) -> bool:
        """Whether ``measured`` satisfices the (possibly time-varying) target."""
        return self.direction.satisfied(measured, self.target_at(time))

    def violation(self, measured: float, time: float = 0.0) -> float:
        """Non-negative magnitude of violation (0 when satisfied)."""
        target = self.target_at(time)
        if self.direction is Direction.MINIMIZE:
            return max(0.0, measured - target)
        return max(0.0, target - measured)


@dataclass
class SLO:
    """A named service-level objective wrapping one requirement."""

    name: str
    requirement: Requirement

    def evaluate(self, measured: float, time: float = 0.0) -> bool:
        """Whether the measurement meets the objective."""
        return self.requirement.satisfied(measured, time)


@dataclass
class SLAReport:
    """Outcome of evaluating an SLA against a set of measurements."""

    satisfied: dict[str, bool]
    violations: dict[str, float]
    penalty: float

    @property
    def all_met(self) -> bool:
        """Whether every evaluated objective held."""
        return all(self.satisfied.values())

    @property
    def fraction_met(self) -> float:
        """Fraction of evaluated objectives that held (1.0 when none)."""
        if not self.satisfied:
            return 1.0
        return sum(self.satisfied.values()) / len(self.satisfied)


class SLA:
    """A service-level agreement: SLOs plus per-violation penalties.

    The paper (C3, [24]) warns of "death by a thousand SLAs"; this class
    keeps agreements explicit and mechanically evaluable.
    """

    def __init__(self, name: str, provider: str = "", client: str = "") -> None:
        self.name = name
        self.provider = provider
        self.client = client
        self._slos: dict[str, SLO] = {}
        self._penalties: dict[str, float] = {}

    def add(self, slo: SLO, penalty: float = 1.0) -> "SLA":
        """Attach an objective with a penalty charged per violation."""
        if slo.name in self._slos:
            raise ValueError(f"duplicate SLO {slo.name!r}")
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        self._slos[slo.name] = slo
        self._penalties[slo.name] = penalty
        return self

    @property
    def slos(self) -> Mapping[str, SLO]:
        """The attached objectives, by name."""
        return dict(self._slos)

    def evaluate(self, measurements: Mapping[str, float],
                 time: float = 0.0) -> SLAReport:
        """Evaluate all objectives whose metric appears in ``measurements``.

        Objectives without a measurement are skipped (an ecosystem rarely
        observes everything at once, §3.3 "Instrumentation").
        """
        satisfied: dict[str, bool] = {}
        violations: dict[str, float] = {}
        penalty = 0.0
        for name, slo in self._slos.items():
            metric = slo.requirement.metric
            if metric not in measurements:
                continue
            measured = measurements[metric]
            ok = slo.evaluate(measured, time)
            satisfied[name] = ok
            violations[name] = slo.requirement.violation(measured, time)
            if not ok:
                penalty += self._penalties[name]
        return SLAReport(satisfied=satisfied, violations=violations,
                         penalty=penalty)

    def weighted_utility(self, measurements: Mapping[str, float],
                         time: float = 0.0) -> float:
        """Weight-normalized satisfaction score in [0, 1].

        Implements the paper's trade-off framing (§2.1 "Beyond
        Performance"): constituents optimize or satisfice over a weighted
        subset of requirements.
        """
        total_weight = 0.0
        score = 0.0
        for slo in self._slos.values():
            metric = slo.requirement.metric
            if metric not in measurements:
                continue
            weight = slo.requirement.weight
            total_weight += weight
            if slo.evaluate(measurements[metric], time):
                score += weight
        if total_weight == 0.0:
            return 1.0
        return score / total_weight
