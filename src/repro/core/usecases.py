"""Use cases for MCS (paper §6, Table 4).

Table 4 lists three *endogenous* application domains (computer-systems
areas consuming MCS techniques) and three *exogenous* ones (domains
using ICT to expand their capabilities).  Unlike the paper, each row
here is *executable*: ``scenario`` names the :mod:`repro` subpackage
whose simulation instantiates the use case, and the Table 4 benchmark
actually runs all six.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = ["UseCaseDirection", "UseCase", "USE_CASES", "UseCaseRegistry"]


class UseCaseDirection(enum.Enum):
    """Whether a use case consumes MCS from within CS or from outside."""

    ENDOGENOUS = "Endogenous applications"
    EXOGENOUS = "Exogenous applications"


@dataclass(frozen=True)
class UseCase:
    """One row of Table 4."""

    location: str
    description: str
    key_aspects: str
    direction: UseCaseDirection
    scenario: str


#: Table 4 of the paper, with the implementing scenario package added.
USE_CASES: tuple[UseCase, ...] = (
    UseCase("§6.1", "Datacenter management", "RM&S, XaaS, ref.archi.",
            UseCaseDirection.ENDOGENOUS, "repro.datacenter"),
    UseCase("§6.5", "Emerging application structures", "serverless MCS",
            UseCaseDirection.ENDOGENOUS, "repro.faas"),
    UseCase("§6.6", "Generalized graph processing", "full MCS challenges",
            UseCaseDirection.ENDOGENOUS, "repro.graphproc"),
    UseCase("§6.2", "Future science", "e-, democratized science",
            UseCaseDirection.EXOGENOUS, "repro.workload"),
    UseCase("§6.3", "Online gaming", "multi-functional MCS",
            UseCaseDirection.EXOGENOUS, "repro.gaming"),
    UseCase("§6.4", "Future banking", "regulated MCS",
            UseCaseDirection.EXOGENOUS, "repro.banking"),
)


class UseCaseRegistry:
    """Queryable regeneration of Table 4."""

    def __init__(self, use_cases: tuple[UseCase, ...] = USE_CASES) -> None:
        self._use_cases = use_cases

    def __iter__(self) -> Iterator[UseCase]:
        return iter(self._use_cases)

    def __len__(self) -> int:
        return len(self._use_cases)

    def by_direction(self, direction: UseCaseDirection) -> list[UseCase]:
        """Rows of one Table 4 section."""
        return [u for u in self._use_cases if u.direction is direction]

    def get(self, location: str) -> UseCase:
        """Look up a use case by its paper section (e.g. ``"§6.3"``)."""
        for use_case in self._use_cases:
            if use_case.location == location:
                return use_case
        raise KeyError(location)

    def table_rows(self) -> list[tuple[str, str, str]]:
        """(location, description, key aspects) rows as in Table 4."""
        return [(u.location, u.description, u.key_aspects)
                for u in self._use_cases]
