"""The twenty research challenges of MCS (paper §5, Table 3).

Each challenge row records its type, index, key aspects, the principles
it derives from, and which :mod:`repro` modules address it in this
reproduction — giving an executable cross-reference from the paper's
research agenda to the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .principles import PrincipleRegistry

__all__ = ["Challenge", "ChallengeRegistry", "CHALLENGES"]


@dataclass(frozen=True)
class Challenge:
    """One challenge row of Table 3."""

    index: str
    type: str
    key_aspects: str
    principles: tuple[str, ...]
    statement: str
    addressed_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.index.startswith("C"):
            raise ValueError(f"challenge index must start with 'C': {self.index}")

    @property
    def number(self) -> int:
        """Numeric part of the index (C7 -> 7)."""
        return int(self.index[1:])


#: Table 3 of the paper: index, type, key aspects, principle mapping.
CHALLENGES: tuple[Challenge, ...] = (
    Challenge("C1", "Systems", "Ecosystems, overall", ("P1",),
              "Ecosystems instead of systems.",
              ("repro.core.entity",)),
    Challenge("C2", "Systems", "Software-defined everything", ("P2",),
              "Make ecosystems fully software-defined, and cope with legacy "
              "and partially software-defined systems.",
              ("repro.datacenter.layers",)),
    Challenge("C3", "Systems", "Non-functional requirements", ("P3", "P5"),
              "Make non-functional requirements first-class considerations, "
              "understand key trade-offs between them, and enable ways to "
              "specify targets (dynamically) with minimal (specialist) input.",
              ("repro.core.nfr",)),
    Challenge("C4", "Systems", "Extreme heterogeneity", ("P4",),
              "Manage extreme heterogeneity.",
              ("repro.datacenter.machine", "repro.workload.generators")),
    Challenge("C5", "Systems", "Socially aware", ("P4",),
              "Socially aware systems, with the human in the control loop.",
              ("repro.gaming.metagaming",)),
    Challenge("C6", "Systems", "Adaptation, self-awareness", ("P4",),
              "Make use of adaptation approaches, from simple feedback loops "
              "to self-awareness, to respond automatically to anomalies and "
              "to changes in requirements.",
              ("repro.selfaware.feedback", "repro.selfaware.adaptation")),
    Challenge("C7", "Systems", "Scheduling, the dual problem", ("P4", "P5"),
              "Scheduling, consisting of both provisioning and allocation, on "
              "behalf of different, possibly delegating stakeholders.",
              ("repro.scheduling.scheduler", "repro.scheduling.provisioning")),
    Challenge("C8", "Systems", "Sophisticated services", ("P4",),
              "Sophisticated components in the ecosystem offered as services.",
              ("repro.faas.platform",)),
    Challenge("C9", "Systems", "The Ecosystem Navigation challenge",
              ("P2", "P3", "P4", "P5"),
              "Solving problems of comparison, selection, composition, "
              "replacement, and adaptation of components (and assemblies) on "
              "behalf of the user.",
              ("repro.navigation.selection", "repro.navigation.catalog")),
    Challenge("C10", "Systems", "Interoperability, federation, delegation",
              ("P4", "P5"),
              "Interoperate assemblies, dynamically: geo-distributed, "
              "federated, multi-DC operation, and service delegation.",
              ("repro.datacenter.federation",)),
    Challenge("C11", "Peopleware", "Community engagement", ("P6",),
              "Create communities and environments for people to engage with "
              "the design and operation of ecosystems.",
              ("repro.reporting.tables",)),
    Challenge("C12", "Peopleware", "Curriculum, BOKMCS", ("P6",),
              "Create a teachable common body of knowledge for MCS (BOKMCS).",
              ("repro.core.overview",)),
    Challenge("C13", "Peopleware", "Explaining to all stakeholders",
              ("P4", "P6"),
              "Support for showing and explaining the operation of the "
              "ecosystem to all stakeholders, continuously.",
              ("repro.sim.monitor", "repro.reporting.tables")),
    Challenge("C14", "Peopleware", "The Design of Design challenge",
              ("P6", "P7"),
              "The Design of Design.",
              ("repro.navigation.selection",)),
    Challenge("C15", "Methodology", "Simulation and Real-world experimentation",
              ("P7", "P8"),
              "Simulation-based calibrated approaches and real-world "
              "experimentation with methodology that ensures reproducibility "
              "as key instruments.",
              ("repro.sim.engine", "repro.sim.rng")),
    Challenge("C16", "Methodology", "Reproducibility and benchmarking",
              ("P7", "P8"),
              "Reproducibility of analysis results regarding functional and "
              "non-functional properties of systems, including through a new "
              "generation of evolving benchmarks.",
              ("repro.graphproc.graphalytics", "repro.workload.trace")),
    Challenge("C17", "Methodology", "Testing, validation, verification", ("P8",),
              "Testing, validation, verification in this new world. Manage "
              "the trade-offs between accuracy and time to results.",
              ("tests",)),
    Challenge("C18", "Methodology", "A Science of MCS", ("P8", "P9"),
              "Build a science of Massivizing Computer Systems.",
              ("repro.core.fields",)),
    Challenge("C19", "Methodology", "The New World challenge", ("P8", "P9"),
              "Understanding and explaining new modes of use, including new, "
              "realistic, accurate, yet tractable models of workloads and "
              "environments.",
              ("repro.workload.generators", "repro.workload.arrivals")),
    Challenge("C20", "Methodology", "The ethics of MCS", ("P10",),
              "Understand challenges in the ethics of MCS, and evolve our "
              "instruments to support ethics in this context.",
              ("repro.core.principles",)),
)


class ChallengeRegistry:
    """Queryable collection of the twenty challenges."""

    def __init__(self, challenges: Sequence[Challenge] = CHALLENGES) -> None:
        indices = [c.index for c in challenges]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate challenge indices")
        self._challenges = tuple(challenges)

    def __iter__(self) -> Iterator[Challenge]:
        return iter(self._challenges)

    def __len__(self) -> int:
        return len(self._challenges)

    def get(self, index: str) -> Challenge:
        """Look up a challenge by index (e.g. ``"C7"``)."""
        for challenge in self._challenges:
            if challenge.index == index:
                return challenge
        raise KeyError(index)

    def by_type(self, type_: str) -> list[Challenge]:
        """All challenges in one Table 3 row group."""
        return [c for c in self._challenges if c.type == type_]

    def by_principle(self, principle_index: str) -> list[Challenge]:
        """Challenges derived from a given principle."""
        return [c for c in self._challenges if principle_index in c.principles]

    def validate_against(self, principles: PrincipleRegistry) -> None:
        """Check that every referenced principle exists (cross-table check)."""
        for challenge in self._challenges:
            for index in challenge.principles:
                principles.get(index)  # raises KeyError when dangling

    def table_rows(self) -> list[tuple[str, str, str, str]]:
        """(type, index, key aspects, principles) rows as in Table 3."""
        return [(c.type, c.index, c.key_aspects, ", ".join(c.principles))
                for c in self._challenges]
