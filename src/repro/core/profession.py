"""The profession of Massivizing Computer Systems (P7, C14).

"Experimenting, creating, and operating ecosystems are professional
privileges, granted through provable professional competence and
integrity. ... Trained professionals are certified and accredited, and
can lose their license or worse on abuse."

A :class:`CertificationBody` grants and revokes licenses for the
privileged activities; :func:`require_license` is the enforcement
point systems can call before executing a privileged operation — the
paper's "professional checks and balances" as a mechanism, with policy
(who qualifies) left to the body.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Privilege", "Professional", "License", "CertificationBody",
           "UnlicensedOperationError", "require_license"]


class Privilege(enum.Enum):
    """The privileged activities P7 names."""

    EXPERIMENT = "experimenting with ecosystems"
    CREATE = "creating ecosystems"
    OPERATE = "operating ecosystems"


class UnlicensedOperationError(PermissionError):
    """Raised when a privileged operation lacks a valid license."""


@dataclass
class Professional:
    """A practitioner with a competence record.

    ``competences`` maps skill areas ("systems thinking", "design
    thinking", ...) to scores in [0, 1]; ``integrity_incidents`` counts
    recorded abuses.
    """

    name: str
    competences: dict[str, float] = field(default_factory=dict)
    integrity_incidents: int = 0

    def __post_init__(self) -> None:
        for skill, score in self.competences.items():
            if not 0.0 <= score <= 1.0:
                raise ValueError(f"competence {skill!r}={score} "
                                 f"outside [0, 1]")

    def certify_competence(self, skill: str, score: float) -> None:
        """Record a demonstrated competence."""
        if not 0.0 <= score <= 1.0:
            raise ValueError("score must be in [0, 1]")
        self.competences[skill] = score

    def record_incident(self) -> None:
        """Record an integrity incident (abuse, negligence)."""
        self.integrity_incidents += 1


@dataclass(frozen=True)
class License:
    """A granted license for one privilege."""

    holder: str
    privilege: Privilege
    granted_by: str


class CertificationBody:
    """A professional society granting and revoking licenses (P7).

    The default admission policy requires *systems thinking* and
    *design thinking* (the two skills C12/P7 add to the computing
    core) at or above ``min_competence``, and a clean integrity record.
    """

    REQUIRED_SKILLS = ("systems thinking", "design thinking")

    def __init__(self, name: str, min_competence: float = 0.6,
                 max_incidents: int = 0) -> None:
        if not 0.0 < min_competence <= 1.0:
            raise ValueError("min_competence must be in (0, 1]")
        if max_incidents < 0:
            raise ValueError("max_incidents must be non-negative")
        self.name = name
        self.min_competence = min_competence
        self.max_incidents = max_incidents
        self._licenses: dict[tuple[str, Privilege], License] = {}
        #: Audit log of grant/revoke decisions.
        self.decisions: list[str] = []

    def qualifies(self, professional: Professional) -> bool:
        """Whether a professional meets the admission policy."""
        if professional.integrity_incidents > self.max_incidents:
            return False
        return all(professional.competences.get(skill, 0.0)
                   >= self.min_competence
                   for skill in self.REQUIRED_SKILLS)

    def grant(self, professional: Professional,
              privilege: Privilege) -> License:
        """Grant a license; raises when the policy is not met."""
        if not self.qualifies(professional):
            self.decisions.append(
                f"denied {privilege.value} to {professional.name}")
            raise UnlicensedOperationError(
                f"{professional.name} does not meet {self.name}'s "
                f"requirements for {privilege.value}")
        license_ = License(holder=professional.name, privilege=privilege,
                           granted_by=self.name)
        self._licenses[(professional.name, privilege)] = license_
        self.decisions.append(
            f"granted {privilege.value} to {professional.name}")
        return license_

    def revoke(self, holder: str, privilege: Privilege) -> None:
        """Revoke a license ("can lose their license ... on abuse")."""
        key = (holder, privilege)
        if key not in self._licenses:
            raise KeyError(f"{holder} holds no {privilege.value} license")
        del self._licenses[key]
        self.decisions.append(f"revoked {privilege.value} from {holder}")

    def is_licensed(self, holder: str, privilege: Privilege) -> bool:
        """Whether ``holder`` currently holds the license."""
        return (holder, privilege) in self._licenses

    def licensed_professionals(self, privilege: Privilege) -> list[str]:
        """All current holders of one privilege."""
        return sorted(name for name, p in self._licenses if p is privilege)


def require_license(body: CertificationBody, holder: str,
                    privilege: Privilege) -> None:
    """Enforcement point: raise unless ``holder`` is licensed.

    Systems performing privileged operations call this first — e.g. a
    control plane before applying operator commands.
    """
    if not body.is_licensed(holder, privilege):
        raise UnlicensedOperationError(
            f"{holder} is not licensed by {body.name} for "
            f"{privilege.value}")
