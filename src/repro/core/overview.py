"""An overview of MCS (paper §3.1, Table 1).

Table 1 structures the field by Who? / What? / How? / Related.  The
registry below regenerates it and supports the curriculum cross-checks
of challenge C12 (a teachable body of knowledge needs a stable map of
the field).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["OverviewEntry", "MCSOverview", "OVERVIEW_ENTRIES"]


@dataclass(frozen=True)
class OverviewEntry:
    """One row of Table 1: a question group, an aspect, and its content."""

    question: str
    aspect: str
    content: str


#: Table 1 of the paper.
OVERVIEW_ENTRIES: tuple[OverviewEntry, ...] = (
    OverviewEntry("Who?", "Stakeholders",
                  "scientists, engineers, designers, others"),
    OverviewEntry("What?", "Central Paradigm",
                  "properties derived from ecosystem structure, organization, "
                  "and dynamics"),
    OverviewEntry("What?", "Focus",
                  "functional and non-functional properties"),
    OverviewEntry("What?", "Concerns", "emergence, evolution"),
    OverviewEntry("How?", "Design", "design methods and processes"),
    OverviewEntry("How?", "Quantitative", "measurement, observation"),
    OverviewEntry("How?", "Exper. & Sim.",
                  "methodology, TRL, benchmarking"),
    OverviewEntry("How?", "Empirical",
                  "correlation, causality iff. possible"),
    OverviewEntry("How?", "Instrumentation", "experiment infrastructure"),
    OverviewEntry("How?", "Formal models", "validated, calibrated, robust"),
    OverviewEntry("Related", "Computer science",
                  "Distrib.Sys., Sw.Eng., Perf.Eng."),
    OverviewEntry("Related", "Systems/complexity",
                  "General Systems Theory, etc."),
    OverviewEntry("Related", "Problem solving",
                  "computer-centric, human-centric"),
)


class MCSOverview:
    """Queryable regeneration of Table 1."""

    QUESTIONS = ("Who?", "What?", "How?", "Related")

    def __init__(self, entries: tuple[OverviewEntry, ...] = OVERVIEW_ENTRIES) -> None:
        unknown = {e.question for e in entries} - set(self.QUESTIONS)
        if unknown:
            raise ValueError(f"unknown question groups: {sorted(unknown)}")
        self._entries = entries

    def __iter__(self) -> Iterator[OverviewEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def by_question(self, question: str) -> list[OverviewEntry]:
        """Rows of one question group ("Who?", "What?", "How?", "Related")."""
        if question not in self.QUESTIONS:
            raise KeyError(question)
        return [e for e in self._entries if e.question == question]

    def aspect(self, name: str) -> OverviewEntry:
        """Look up a single aspect row by its name."""
        for entry in self._entries:
            if entry.aspect == name:
                return entry
        raise KeyError(name)

    def table_rows(self) -> list[tuple[str, str, str]]:
        """(question, aspect, content) rows as in Table 1."""
        return [(e.question, e.aspect, e.content) for e in self._entries]
