"""Systems and computer ecosystems (paper §2.1).

The paper adopts Meadows' definition of a *system* — "a set of elements
or parts coherently organized and interconnected in a pattern or
structure that produces a characteristic set of behaviors" — and defines
a *computer ecosystem* as a heterogeneous, recursive group of autonomous
constituents with collective responsibility, non-functional properties
beyond performance, and short- and long-term dynamics.

These classes make those definitions executable: every scenario in this
library (datacenter, FaaS, gaming, banking, big data) registers its
components as :class:`System` objects inside an :class:`Ecosystem`, and
the predicates below (:meth:`Ecosystem.is_ecosystem`,
:meth:`Ecosystem.distribution_depth`, ...) implement the paper's
qualification criteria, including the four "when is a system *not* an
ecosystem" exclusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

__all__ = ["System", "CollectiveFunction", "Ecosystem"]


@dataclass
class System:
    """A system in Meadows' sense: parts, structure, and a purpose.

    Attributes:
        name: Identifier of the system.
        function: The system's characteristic purpose ("execution engine",
            "storage engine", ...).
        owner: The organization operating the system.  Distinct owners
            across constituents are one source of ecosystem heterogeneity.
        kind: A coarse technology category ("compute", "storage",
            "network", "middleware", "application", ...), the second
            source of heterogeneity.
        autonomous: Whether the system can operate independently if
            allowed (ecosystem constituents must be autonomous).
        legacy: Whether this is a legacy, tightly coupled component
            (exclusion (ii) of §2.1).
        audited: Whether the system is an audited, closed system
            (exclusion (i) of §2.1).
    """

    name: str
    function: str = ""
    owner: str = "unknown"
    kind: str = "component"
    autonomous: bool = True
    legacy: bool = False
    audited: bool = False

    def constituents(self) -> Sequence["System"]:
        """Immediate parts; plain systems have none."""
        return ()

    def distribution_depth(self) -> int:
        """Nesting depth of distributed composition (1 for a leaf system)."""
        return 1

    def __hash__(self) -> int:
        return hash((self.name, self.owner))


@dataclass
class CollectiveFunction:
    """A function only the collective can perform (paper §2.1).

    ``required_fraction`` is the minimum fraction of constituents that
    must collaborate; the paper demands at least some collective
    functions involve "a significant fraction of the ecosystem
    constituents".
    """

    name: str
    required_fraction: float = 0.5
    action: Callable[..., object] | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.required_fraction <= 1.0:
            raise ValueError(
                f"required_fraction must be in (0, 1], got {self.required_fraction}")


class Ecosystem(System):
    """A heterogeneous, recursive group of autonomous constituents.

    An :class:`Ecosystem` is itself a :class:`System` so ecosystems
    compose recursively — the paper's *super-distribution* (P5).
    """

    def __init__(self, name: str, function: str = "", owner: str = "unknown",
                 constituents: Sequence[System] = ()) -> None:
        super().__init__(name=name, function=function, owner=owner,
                         kind="ecosystem")
        self._constituents: list[System] = list(constituents)
        self.collective_functions: list[CollectiveFunction] = []

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def add(self, constituent: System) -> System:
        """Add a constituent (a system or, recursively, an ecosystem)."""
        self._constituents.append(constituent)
        return constituent

    def constituents(self) -> Sequence[System]:
        """Immediate constituents in insertion order."""
        return tuple(self._constituents)

    def walk(self) -> Iterator[System]:
        """Depth-first iteration over all transitive constituents."""
        for constituent in self._constituents:
            yield constituent
            if isinstance(constituent, Ecosystem):
                yield from constituent.walk()

    def distribution_depth(self) -> int:
        """Levels of recursive distribution (P5, super-distribution)."""
        if not self._constituents:
            return 1
        return 1 + max(c.distribution_depth() for c in self._constituents)

    # ------------------------------------------------------------------
    # Qualification criteria (§2.1)
    # ------------------------------------------------------------------
    def heterogeneity(self) -> float:
        """Fraction in [0, 1] measuring constituent diversity.

        Computed as the mean of owner-diversity and kind-diversity
        (distinct values over constituent count).  A homogeneous,
        single-owner group scores near 0.
        """
        systems = list(self.walk()) or [self]
        owners = len({s.owner for s in systems})
        kinds = len({s.kind for s in systems})
        n = len(systems)
        return ((owners - 1) / max(1, n - 1) + (kinds - 1) / max(1, n - 1)) / 2

    def register_collective_function(
            self, function: CollectiveFunction) -> CollectiveFunction:
        """Declare a function that requires constituent collaboration."""
        self.collective_functions.append(function)
        return function

    def has_collective_responsibility(self) -> bool:
        """Whether some collective function needs a significant fraction.

        The paper: "At least some of the collective functions involve the
        collaboration of a significant fraction of the ecosystem
        constituents" — we take "significant" as >= 50%.
        """
        return any(f.required_fraction >= 0.5 for f in self.collective_functions)

    def disqualifications(self) -> list[str]:
        """Reasons this group fails the paper's ecosystem definition.

        Empty list means the group qualifies.  The checks mirror §2.1:
        constituent autonomy, heterogeneity, collective responsibility,
        and the audited/legacy exclusions.
        """
        reasons = []
        systems = list(self.walk())
        if len(systems) < 2:
            reasons.append("fewer than two constituents")
        if systems and not all(s.autonomous for s in systems):
            reasons.append("contains non-autonomous constituents")
        if self.heterogeneity() == 0.0:
            reasons.append("constituents are homogeneous")
        if not self.has_collective_responsibility():
            reasons.append("no collective function involving a significant "
                           "fraction of constituents")
        if systems and all(s.legacy for s in systems):
            reasons.append("legacy monolithic composition (exclusion ii)")
        if self.audited:
            reasons.append("audited closed system (exclusion i)")
        return reasons

    def is_ecosystem(self) -> bool:
        """Whether the group qualifies as an ecosystem under §2.1."""
        return not self.disqualifications()

    def is_super_distributed(self) -> bool:
        """Whether ecosystems nest inside this one (P5)."""
        return any(isinstance(c, Ecosystem) for c in self.walk())

    def __hash__(self) -> int:
        return hash((self.name, self.owner, "ecosystem"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Ecosystem {self.name!r} constituents={len(self._constituents)} "
                f"depth={self.distribution_depth()}>")
