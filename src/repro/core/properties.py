"""Super-properties and ecosystem restructuring (P5, §4.1).

P5 defines two *super*-properties an ecosystem must combine:

- *super-flexibility*: "the ability of an ecosystem to ensure BOTH the
  functional and non-functional properties associated with stability
  and closed systems ... AND those associated with dynamic and open
  systems", including "a framework for managing product mergers and
  break-ups (e.g., due to ... anti-monopoly/anti-trust law) on
  short-notice and quickly";
- *super-scalability*: combining closed-system scalability (weak and
  strong) with open-system elasticity — "a grand challenge in computer
  science" (after Gray [72]).

Both become measurable here (harmonic combination, so neither side can
be traded away), and merge/split make the restructuring framework
concrete operations on :class:`~repro.core.entity.Ecosystem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .entity import CollectiveFunction, Ecosystem, System

__all__ = ["SuperFlexibility", "super_scalability", "merge_ecosystems",
           "split_ecosystem"]


def _mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("need at least one score")
    return sum(values) / len(values)


def _harmonic(a: float, b: float) -> float:
    if a < 0 or b < 0:
        raise ValueError("scores must be non-negative")
    if a == 0 or b == 0:
        return 0.0
    return 2.0 * a * b / (a + b)


@dataclass(frozen=True)
class SuperFlexibility:
    """A super-flexibility assessment from scored properties.

    ``closed`` holds closed-system property scores in [0, 1]
    (correctness, performance, scalability, reliability, security);
    ``open`` holds open-system scores (elasticity, streaming,
    composability, portability).  The overall score is the *harmonic*
    mean of the two group means: excelling at one side cannot buy back
    a failing other side — that is what makes the property "super".
    """

    closed: Mapping[str, float]
    open: Mapping[str, float]

    def __post_init__(self) -> None:
        for group in (self.closed, self.open):
            if not group:
                raise ValueError("both property groups must be non-empty")
            for name, value in group.items():
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"score {name!r}={value} outside [0, 1]")

    @property
    def closed_score(self) -> float:
        """Mean of the closed-system property scores."""
        return _mean(list(self.closed.values()))

    @property
    def open_score(self) -> float:
        """Mean of the open-system property scores."""
        return _mean(list(self.open.values()))

    @property
    def score(self) -> float:
        """Harmonic combination of both sides, in [0, 1]."""
        return _harmonic(self.closed_score, self.open_score)

    def is_super_flexible(self, threshold: float = 0.6) -> bool:
        """Whether the combined score clears ``threshold``."""
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        return self.score >= threshold


def super_scalability(strong_efficiency: float, weak_efficiency: float,
                      elastic_deviation: float) -> float:
    """The P5 super-scalability index in [0, 1].

    Closed side: the mean of strong- and weak-scaling efficiencies
    (speedup/workers resp. weak efficiency, both in [0, 1]).  Open
    side: elasticity quality ``1 / (1 + deviation)`` from the SPEC
    aggregate deviation [32].  Combined harmonically, per P5's "both".
    """
    for name, value in (("strong_efficiency", strong_efficiency),
                        ("weak_efficiency", weak_efficiency)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    if elastic_deviation < 0:
        raise ValueError("elastic_deviation must be non-negative")
    closed = _mean([strong_efficiency, weak_efficiency])
    open_side = 1.0 / (1.0 + elastic_deviation)
    return _harmonic(closed, open_side)


def merge_ecosystems(a: Ecosystem, b: Ecosystem, name: str,
                     owner: str = "merged") -> Ecosystem:
    """Merge two ecosystems into one (the P5 merger, on short notice).

    Both inputs become sub-ecosystems of the merged entity — they keep
    operating (super-distribution), but under one collective
    responsibility.  The inputs are not mutated.
    """
    if a is b:
        raise ValueError("cannot merge an ecosystem with itself")
    merged = Ecosystem(name, function=f"{a.function} + {b.function}",
                       owner=owner, constituents=[a, b])
    merged.register_collective_function(CollectiveFunction(
        f"joint:{a.name}+{b.name}", required_fraction=0.6))
    return merged


def split_ecosystem(ecosystem: Ecosystem,
                    partition: Mapping[str, Sequence[str]],
                    ) -> list[Ecosystem]:
    """Break an ecosystem up along a named partition (anti-trust split).

    ``partition`` maps each new ecosystem's name to the names of the
    constituents it receives.  Every immediate constituent must be
    assigned exactly once.  The original is not mutated; the parts
    inherit the original's collective functions so each can be
    re-checked for ecosystem qualification after the split.
    """
    if len(partition) < 2:
        raise ValueError("a split needs at least two parts")
    by_name: dict[str, System] = {}
    for constituent in ecosystem.constituents():
        if constituent.name in by_name:
            raise ValueError(
                f"ambiguous constituent name {constituent.name!r}")
        by_name[constituent.name] = constituent
    assigned: set[str] = set()
    for members in partition.values():
        for member in members:
            if member not in by_name:
                raise KeyError(f"unknown constituent {member!r}")
            if member in assigned:
                raise ValueError(f"constituent {member!r} assigned twice")
            assigned.add(member)
    missing = set(by_name) - assigned
    if missing:
        raise ValueError(
            f"constituents not assigned to any part: {sorted(missing)}")
    parts = []
    for part_name, members in partition.items():
        part = Ecosystem(part_name, function=ecosystem.function,
                         owner=ecosystem.owner,
                         constituents=[by_name[m] for m in members])
        for function in ecosystem.collective_functions:
            part.register_collective_function(function)
        parts.append(part)
    return parts
