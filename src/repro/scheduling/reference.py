"""A reference architecture for scheduling in datacenters (§6.1).

"Inspired by the work of Schopf [155], who proposed in 2004 a detailed
11-step abstraction for the grid scheduling landscape, we envision the
formulation of a detailed reference architecture for scheduling in
datacenters.  In this formulation, scheduling is a multi-stage workflow
that covers the set of most common actions in datacenter scheduling,
with tasks ranging from filtering resources available to the user to
task migration."

This module makes that reference architecture executable: the eleven
stages are explicit, each stage is a replaceable callable, and a
:class:`SchedulingPipeline` runs a task through all of them to produce
a :class:`PlacementDecision`.  Replaceability is the point — it "enables
sharing of entire scheduling solutions or mere components" (C11), e.g.
grafting a competition entry's *system selection* stage into the
library's default pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..datacenter.machine import Machine
from ..workload.task import Task

__all__ = ["SchedulingStage", "PipelineContext", "PlacementDecision",
           "SchedulingPipeline", "STAGE_DESCRIPTIONS"]


class SchedulingStage(enum.Enum):
    """The eleven stages, adapted from Schopf's grid abstraction [155]."""

    AUTHORIZATION_FILTERING = 1
    APPLICATION_DEFINITION = 2
    MIN_REQUIREMENT_FILTERING = 3
    INFORMATION_GATHERING = 4
    SYSTEM_SELECTION = 5
    ADVANCE_RESERVATION = 6
    JOB_SUBMISSION = 7
    PREPARATION = 8
    MONITORING_PROGRESS = 9
    JOB_COMPLETION = 10
    CLEANUP = 11


#: Human-readable stage responsibilities (rendered by the Figure 3 bench).
STAGE_DESCRIPTIONS: dict[SchedulingStage, str] = {
    SchedulingStage.AUTHORIZATION_FILTERING:
        "filter resources the user may access at all",
    SchedulingStage.APPLICATION_DEFINITION:
        "determine the task's resource demands and constraints",
    SchedulingStage.MIN_REQUIREMENT_FILTERING:
        "drop machines that can never satisfy the demands",
    SchedulingStage.INFORMATION_GATHERING:
        "observe current load and availability of the candidates",
    SchedulingStage.SYSTEM_SELECTION:
        "choose the machine(s) to run on",
    SchedulingStage.ADVANCE_RESERVATION:
        "reserve capacity ahead of execution when supported",
    SchedulingStage.JOB_SUBMISSION: "hand the task to the execution engine",
    SchedulingStage.PREPARATION: "stage data and prepare the environment",
    SchedulingStage.MONITORING_PROGRESS: "watch execution, consider migration",
    SchedulingStage.JOB_COMPLETION: "collect results, notify the user",
    SchedulingStage.CLEANUP: "release reservations and scratch state",
}


@dataclass
class PipelineContext:
    """Mutable state threaded through the pipeline stages."""

    task: Task
    machines: list[Machine]
    user: str = "anonymous"
    candidates: list[Machine] = field(default_factory=list)
    selected: Machine | None = None
    log: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class PlacementDecision:
    """The outcome of running a task through the pipeline."""

    task: Task
    machine: Machine | None
    stages_run: tuple[SchedulingStage, ...]
    log: tuple[str, ...]

    @property
    def placed(self) -> bool:
        """Whether a machine was selected."""
        return self.machine is not None


StageFunction = Callable[[PipelineContext], None]


def _default_authorization(ctx: PipelineContext) -> None:
    ctx.candidates = list(ctx.machines)
    ctx.log.append(f"authorized {len(ctx.candidates)} machines for {ctx.user}")


def _default_application_definition(ctx: PipelineContext) -> None:
    ctx.log.append(
        f"demand: {ctx.task.cores} cores, {ctx.task.memory:.1f} GiB")


def _default_min_requirement(ctx: PipelineContext) -> None:
    ctx.candidates = [m for m in ctx.candidates
                      if m.spec.cores >= ctx.task.cores
                      and m.spec.memory >= ctx.task.memory]
    ctx.log.append(f"{len(ctx.candidates)} machines meet minimum requirements")


def _default_information_gathering(ctx: PipelineContext) -> None:
    ctx.candidates = [m for m in ctx.candidates if m.can_fit(ctx.task)]
    ctx.log.append(f"{len(ctx.candidates)} machines can fit the task now")


def _default_system_selection(ctx: PipelineContext) -> None:
    if ctx.candidates:
        ctx.selected = min(ctx.candidates, key=lambda m: m.utilization)
        ctx.log.append(f"selected {ctx.selected.name}")
    else:
        ctx.log.append("no machine selected")


def _noop_stage(name: str) -> StageFunction:
    def stage(ctx: PipelineContext) -> None:
        ctx.log.append(name)

    return stage


class SchedulingPipeline:
    """Runs tasks through the eleven-stage reference workflow.

    Any stage can be replaced via :meth:`replace`, letting third parties
    graft their own components into a complete scheduler (C11's
    envisioned scheduler competition).
    """

    def __init__(self) -> None:
        self._stages: dict[SchedulingStage, StageFunction] = {
            SchedulingStage.AUTHORIZATION_FILTERING: _default_authorization,
            SchedulingStage.APPLICATION_DEFINITION:
                _default_application_definition,
            SchedulingStage.MIN_REQUIREMENT_FILTERING: _default_min_requirement,
            SchedulingStage.INFORMATION_GATHERING:
                _default_information_gathering,
            SchedulingStage.SYSTEM_SELECTION: _default_system_selection,
            SchedulingStage.ADVANCE_RESERVATION: _noop_stage("no reservation"),
            SchedulingStage.JOB_SUBMISSION: _noop_stage("submitted"),
            SchedulingStage.PREPARATION: _noop_stage("prepared"),
            SchedulingStage.MONITORING_PROGRESS: _noop_stage("monitoring"),
            SchedulingStage.JOB_COMPLETION: _noop_stage("completion hooks"),
            SchedulingStage.CLEANUP: _noop_stage("cleaned up"),
        }

    def replace(self, stage: SchedulingStage,
                function: StageFunction) -> None:
        """Graft a custom implementation into one stage."""
        if stage not in self._stages:
            raise KeyError(stage)
        self._stages[stage] = function

    def decide(self, task: Task, machines: Sequence[Machine],
               user: str = "anonymous",
               until: SchedulingStage = SchedulingStage.SYSTEM_SELECTION,
               ) -> PlacementDecision:
        """Run the pipeline up to and including ``until``.

        The decision stages (1-5) suffice for placement; execution-time
        stages (6-11) run when the pipeline drives a full job lifecycle.
        """
        ctx = PipelineContext(task=task, machines=list(machines), user=user)
        stages_run = []
        for stage in SchedulingStage:
            self._stages[stage](ctx)
            stages_run.append(stage)
            if stage is until:
                break
        return PlacementDecision(task=task, machine=ctx.selected,
                                 stages_run=tuple(stages_run),
                                 log=tuple(ctx.log))
