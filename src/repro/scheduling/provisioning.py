"""Provisioning: the other half of the dual problem (C7).

"The scheduling process must both allocate resources to individual jobs
... and also provision resources on behalf of the user across
super-distributed ecosystems — this is the *dual problem* of scheduling
in MCS."

A :class:`Provisioner` periodically sets how many machines of a
datacenter are *leased* (powered and schedulable); a
:class:`ProvisioningPolicy` decides the target count from the observed
demand.  Policies include the static baseline, pure on-demand, and the
reserved-plus-on-demand mix of Shen et al. [170], whose cost trade-off
(cheap reserved base load, expensive on-demand burst capacity) the
benchmark experiments reproduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from ..datacenter.datacenter import Datacenter
from ..sim import Simulator, TimeWeightedMonitor
from .scheduler import ClusterScheduler

__all__ = [
    "ProvisioningState",
    "ProvisioningPolicy",
    "StaticProvisioning",
    "OnDemandProvisioning",
    "ReservedPlusOnDemand",
    "Provisioner",
]


@dataclass(frozen=True)
class ProvisioningState:
    """Demand snapshot handed to provisioning policies."""

    time: float
    queued_tasks: int
    queued_cores: int
    running_cores: int
    leased_machines: int
    total_machines: int
    cores_per_machine: int


class ProvisioningPolicy(Protocol):
    """Decides the target number of leased machines."""

    name: str

    def target_machines(self, state: ProvisioningState) -> int:
        """Desired lease count given the current demand snapshot."""
        ...  # pragma: no cover


class StaticProvisioning:
    """Always lease a fixed number of machines (the rigid baseline)."""

    name = "static"

    def __init__(self, machines: int) -> None:
        if machines < 0:
            raise ValueError("machines must be non-negative")
        self.machines = machines

    def target_machines(self, state: ProvisioningState) -> int:
        """Return the fixed count, clamped to the fleet."""
        return min(self.machines, state.total_machines)


class OnDemandProvisioning:
    """Lease just enough machines for current demand, plus headroom.

    Target = ceil((queued + running cores) x (1 + headroom) / machine
    cores), clamped to [min_machines, total].
    """

    name = "on-demand"

    def __init__(self, min_machines: int = 1, headroom: float = 0.1) -> None:
        if min_machines < 0:
            raise ValueError("min_machines must be non-negative")
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        self.min_machines = min_machines
        self.headroom = headroom

    def target_machines(self, state: ProvisioningState) -> int:
        """Return enough machines for demand plus headroom."""
        demand_cores = (state.queued_cores + state.running_cores)
        needed = math.ceil(demand_cores * (1.0 + self.headroom)
                           / max(1, state.cores_per_machine))
        return max(self.min_machines, min(needed, state.total_machines))


class ReservedPlusOnDemand:
    """A reserved base plus on-demand burst capacity ([170]).

    ``reserved`` machines are always leased (cheap, committed);
    additional machines are leased on demand when queued work exceeds
    what the reserved base can absorb.
    """

    name = "reserved+on-demand"

    def __init__(self, reserved: int, headroom: float = 0.0) -> None:
        if reserved < 0:
            raise ValueError("reserved must be non-negative")
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        self.reserved = reserved
        self.headroom = headroom

    def target_machines(self, state: ProvisioningState) -> int:
        """Return max(reserved base, demand-driven target)."""
        demand_cores = (state.queued_cores + state.running_cores)
        needed = math.ceil(demand_cores * (1.0 + self.headroom)
                           / max(1, state.cores_per_machine))
        return min(max(self.reserved, needed), state.total_machines)


class Provisioner:
    """Periodically re-provisions a datacenter for its scheduler.

    Machines beyond the leased target are released (only when idle);
    machines below it are leased back.  Cost is integrated over time at
    each leased machine's ``cost_per_hour``; the on-demand premium
    multiplies the price of machines above the ``reserved_machines``
    mark, reproducing the reserved/on-demand price gap of [170].
    """

    def __init__(self, sim: Simulator, datacenter: Datacenter,
                 scheduler: ClusterScheduler, policy: ProvisioningPolicy,
                 interval: float = 10.0,
                 reserved_machines: int = 0,
                 on_demand_premium: float = 2.5) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if on_demand_premium < 1.0:
            raise ValueError("on_demand_premium must be >= 1.0")
        self.sim = sim
        self.datacenter = datacenter
        self.scheduler = scheduler
        self.policy = policy
        self.interval = interval
        self.reserved_machines = reserved_machines
        self.on_demand_premium = on_demand_premium
        self._machines = datacenter.machines()
        self.leased = TimeWeightedMonitor("leased_machines",
                                          initial=len(self._machines),
                                          start_time=sim.now)
        self._cost_rate = TimeWeightedMonitor(
            "cost_rate", initial=self._rate(len(self._machines)),
            start_time=sim.now)
        self._stopped = False
        sim.process(self._run(), name="provisioner-loop")

    def _rate(self, leased_count: int) -> float:
        """Dollars per hour for ``leased_count`` leased machines."""
        rate = 0.0
        for index, machine in enumerate(self._machines[:leased_count]):
            price = machine.spec.cost_per_hour
            if index >= self.reserved_machines:
                price *= self.on_demand_premium
            rate += price
        return rate

    def _snapshot(self) -> ProvisioningState:
        queued = self.scheduler.queue
        cores_per_machine = (self._machines[0].spec.cores
                             if self._machines else 1)
        running_cores = sum(m.cores_used for m in self._machines)
        return ProvisioningState(
            time=self.sim.now,
            queued_tasks=len(queued),
            queued_cores=sum(t.cores for t in queued),
            running_cores=running_cores,
            leased_machines=sum(1 for m in self._machines if m.available),
            total_machines=len(self._machines),
            cores_per_machine=cores_per_machine,
        )

    def _apply(self, target: int) -> None:
        target = max(0, min(target, len(self._machines)))
        leased_now = [m for m in self._machines if m.available]
        if len(leased_now) < target:
            for machine in self._machines:
                if not machine.available:
                    self.datacenter.repair_machine(machine)
                    leased_now.append(machine)
                    if len(leased_now) >= target:
                        break
            self.scheduler._poke()
        elif len(leased_now) > target:
            # Release idle machines first, from the expensive end.
            for machine in reversed(self._machines):
                if len(leased_now) <= target:
                    break
                if machine.available and not machine.running_tasks:
                    machine.account_energy(self.sim.now)
                    machine.available = False
                    leased_now.remove(machine)
        count = sum(1 for m in self._machines if m.available)
        self.leased.update(self.sim.now, count)
        self._cost_rate.update(self.sim.now, self._rate(count))

    def _run(self):
        while not self._stopped:
            state = self._snapshot()
            self._apply(self.policy.target_machines(state))
            yield self.sim.timeout(self.interval)

    def stop(self) -> None:
        """Stop the provisioning loop at the next tick."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def total_cost(self) -> float:
        """Accumulated lease cost in dollars up to the current sim time."""
        hours = 1.0 / 3600.0
        return self._cost_rate.time_average(
            until=self.sim.now) * self.sim.now * hours

    def mean_leased(self) -> float:
        """Time-weighted mean number of leased machines."""
        return self.leased.time_average(until=self.sim.now)
