"""Socially-aware scheduling (C5; [105], [108]).

"Automatic identification of dominant users [107] and of job groupings
[108] in scientific grid workloads led to pioneering work by IBM
[105]" — job groups submitted by socially connected users behave as
units, and scheduling them as units improves the *group* response time
the users actually perceive.

:class:`GroupAwarePolicy` is a queue policy that serves the group with
the least remaining work first (a group-level SJF), so small groups
are not starved behind fragments of large ones.  The social groups can
come from anywhere — explicit user accounts, or the implicit tie
communities of :mod:`repro.gaming.metagaming`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..workload.task import Task, TaskState

__all__ = ["GroupAwarePolicy", "group_response_times"]


class GroupAwarePolicy:
    """Serve the group with the least remaining work first.

    Tasks are registered into named groups; un-registered tasks form
    singleton groups.  Within a group, tasks keep submission order.
    """

    name = "group-aware"

    def __init__(self) -> None:
        self._group_of: dict[int, str] = {}

    def register(self, task: Task, group: str) -> None:
        """Assign ``task`` to ``group``."""
        self._group_of[task.task_id] = group

    def register_job_group(self, tasks: Sequence[Task], group: str) -> None:
        """Assign several tasks to one group."""
        for task in tasks:
            self.register(task, group)

    def group_of(self, task: Task) -> str:
        """The group of a task (singleton group if unregistered)."""
        return self._group_of.get(task.task_id, f"solo-{task.task_id}")

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Queue ordered by (group remaining work, submit, id)."""
        remaining: dict[str, float] = {}
        for task in queue:
            group = self.group_of(task)
            remaining[group] = remaining.get(group, 0.0) + task.core_seconds
        return sorted(queue, key=lambda t: (remaining[self.group_of(t)],
                                            self.group_of(t),
                                            t.submit_time, t.task_id))


def group_response_times(tasks_by_group: Mapping[str, Sequence[Task]],
                         ) -> dict[str, float]:
    """Per-group response time: last finish minus first submit.

    The metric users in a collaborating group perceive ([108]): the
    group is done when its last task is.
    """
    results = {}
    for group, tasks in tasks_by_group.items():
        if not tasks:
            raise ValueError(f"group {group!r} has no tasks")
        unfinished = [t for t in tasks if t.state is not TaskState.FINISHED]
        if unfinished:
            raise RuntimeError(
                f"group {group!r} has unfinished tasks: "
                f"{[t.name for t in unfinished[:3]]}")
        results[group] = (max(t.finish_time for t in tasks)
                          - min(t.submit_time for t in tasks))
    return results
