"""Allocation and placement policies (C7).

The paper notes that "allocating workloads to the provisioned resources
has been a topic of research in regular scheduling for decades, with
hundreds of approaches and policies [117]".  This module provides the
classic families in two orthogonal roles:

- *Queue ordering* (:class:`QueuePolicy`): which waiting task to serve
  next — FCFS, SJF, LJF, EDF, smallest-first, random, fair-share.
- *Machine selection* (:class:`PlacementPolicy`): where to place the
  chosen task — first-fit, best-fit, worst-fit, round-robin, and the
  heterogeneity-, cost-, and energy-aware variants of C4.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from ..datacenter.machine import Machine
from ..workload.task import Task

__all__ = [
    "QueuePolicy",
    "PlacementPolicy",
    "FCFS",
    "SJF",
    "LJF",
    "EDF",
    "SmallestTaskFirst",
    "RandomOrder",
    "FairShare",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "RoundRobin",
    "FastestFit",
    "CheapestFit",
    "GreenestFit",
    "QUEUE_POLICIES",
    "PLACEMENT_POLICIES",
    "incremental_sort_key",
]


class QueuePolicy(Protocol):
    """Orders the waiting queue; the scheduler serves the front first."""

    name: str

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Return the queue in service order (does not mutate input)."""
        ...  # pragma: no cover


class PlacementPolicy(Protocol):
    """Chooses a machine for a task, or ``None`` if nothing fits now."""

    name: str

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return a machine that can fit ``task`` now, or ``None``."""
        ...  # pragma: no cover


# ---------------------------------------------------------------------------
# Queue-ordering policies
# ---------------------------------------------------------------------------
class FCFS:
    """First-come first-served: by submission time."""

    name = "fcfs"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by submission time, ties by task id."""
        return sorted(queue, key=lambda t: (t.submit_time, t.task_id))


class SJF:
    """Shortest job first: by runtime estimate."""

    name = "sjf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by estimated runtime, shortest first."""
        return sorted(queue, key=lambda t: (t.runtime, t.task_id))


class LJF:
    """Longest job first: by runtime estimate, descending."""

    name = "ljf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by estimated runtime, longest first."""
        return sorted(queue, key=lambda t: (-t.runtime, t.task_id))


class EDF:
    """Earliest deadline first; deadline-less tasks go last (FCFS among them)."""

    name = "edf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by deadline; deadline-less tasks go last."""
        return sorted(queue, key=lambda t: (
            t.deadline if t.deadline is not None else float("inf"),
            t.submit_time, t.task_id))


class SmallestTaskFirst:
    """Fewest cores first — drains fragmentation-era small tasks [39]."""

    name = "smallest-first"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by core demand, smallest first."""
        return sorted(queue, key=lambda t: (t.cores, t.runtime, t.task_id))


class RandomOrder:
    """Uniformly random service order (a fairness baseline)."""

    name = "random"

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng or random.Random(0)

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Return a uniformly random permutation."""
        shuffled = list(queue)
        self.rng.shuffle(shuffled)
        return shuffled


class FairShare:
    """Round-robins across users by accumulated served core-seconds.

    Users who have consumed less get priority — the multi-tenancy
    fairness concern of P5.
    """

    name = "fair-share"

    def __init__(self) -> None:
        self._served: dict[str, float] = {}
        self._owner: dict[int, str] = {}

    def register(self, task: Task, user: str) -> None:
        """Associate a task with its submitting user."""
        self._owner[task.task_id] = user

    def charge(self, task: Task) -> None:
        """Account a completed task against its user's share."""
        user = self._owner.get(task.task_id, "anonymous")
        self._served[user] = self._served.get(user, 0.0) + task.core_seconds

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by the owning user's served core-seconds."""
        def key(task: Task):
            user = self._owner.get(task.task_id, "anonymous")
            return (self._served.get(user, 0.0), task.submit_time, task.task_id)

        return sorted(queue, key=key)


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------
def _fitting(task: Task, machines: Sequence[Machine]) -> list[Machine]:
    return [m for m in machines if m.can_fit(task)]


class FirstFit:
    """First machine (in topology order) that fits."""

    name = "first-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the first machine that fits, else None."""
        for machine in machines:
            if machine.can_fit(task):
                return machine
        return None


class BestFit:
    """Tightest fit: fewest cores left over (consolidating)."""

    name = "best-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fitting machine with fewest leftover cores."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return min(fitting, key=lambda m: (m.cores_free - task.cores, m.name))


class WorstFit:
    """Loosest fit: most cores left over (load spreading)."""

    name = "worst-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fitting machine with most leftover cores."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return max(fitting, key=lambda m: (m.cores_free - task.cores,
                                           m.name))


class RoundRobin:
    """Cycles through machines, skipping ones that do not fit."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the next fitting machine in rotation."""
        n = len(machines)
        for offset in range(n):
            machine = machines[(self._next + offset) % n]
            if machine.can_fit(task):
                self._next = (self._next + offset + 1) % n
                return machine
        return None


class FastestFit:
    """Heterogeneity-aware: fastest machine that fits (C4)."""

    name = "fastest-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fastest fitting machine."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return max(fitting, key=lambda m: (m.spec.speed, m.name))


class CheapestFit:
    """Cost-aware: lowest effective cost (price x effective runtime)."""

    name = "cheapest-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the cheapest fitting machine for this task."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return min(fitting, key=lambda m: (
            m.spec.cost_per_hour * m.effective_runtime(task), m.name))


class GreenestFit:
    """Energy-aware: smallest marginal energy for this task (C6 class v)."""

    name = "greenest-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fitting machine with least marginal energy."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None

        def marginal_energy(machine: Machine) -> float:
            spec = machine.spec
            watts = (spec.max_watts - spec.idle_watts) * (task.cores
                                                          / spec.cores)
            return watts * machine.effective_runtime(task)

        return min(fitting, key=lambda m: (marginal_energy(m), m.name))


#: Queue policies whose sort key is constant while a task waits.  For
#: these the scheduler keeps the queue incrementally sorted (insort at
#: submit) instead of re-sorting every round.  Each key must match the
#: policy's ``order`` exactly — keys embed ``task_id``, so they are
#: total orders and the incremental view is bit-identical to sorted().
_INCREMENTAL_SORT_KEYS = {
    FCFS: lambda t: (t.submit_time, t.task_id),
    SJF: lambda t: (t.runtime, t.task_id),
    LJF: lambda t: (-t.runtime, t.task_id),
    EDF: lambda t: (t.deadline if t.deadline is not None else float("inf"),
                    t.submit_time, t.task_id),
    SmallestTaskFirst: lambda t: (t.cores, t.runtime, t.task_id),
}


def incremental_sort_key(policy: QueuePolicy):
    """Time-invariant sort key of ``policy``, or ``None``.

    ``None`` means the policy's order depends on mutable state (fair
    share) or randomness, so the scheduler must call ``order()`` each
    round.  Matches on exact type: subclasses may override ``order``.
    """
    return _INCREMENTAL_SORT_KEYS.get(type(policy))


#: Name -> factory for each queue policy (used by benches and portfolios).
QUEUE_POLICIES = {
    "fcfs": FCFS,
    "sjf": SJF,
    "ljf": LJF,
    "edf": EDF,
    "smallest-first": SmallestTaskFirst,
    "random": RandomOrder,
    "fair-share": FairShare,
}

#: Name -> factory for each placement policy.
PLACEMENT_POLICIES = {
    "first-fit": FirstFit,
    "best-fit": BestFit,
    "worst-fit": WorstFit,
    "round-robin": RoundRobin,
    "fastest-fit": FastestFit,
    "cheapest-fit": CheapestFit,
    "greenest-fit": GreenestFit,
}
