"""Allocation and placement policies (C7).

The paper notes that "allocating workloads to the provisioned resources
has been a topic of research in regular scheduling for decades, with
hundreds of approaches and policies [117]".  This module provides the
classic families in two orthogonal roles:

- *Queue ordering* (:class:`QueuePolicy`): which waiting task to serve
  next — FCFS, SJF, LJF, EDF, smallest-first, random, fair-share.
- *Machine selection* (:class:`PlacementPolicy`): where to place the
  chosen task — first-fit, best-fit, worst-fit, round-robin, and the
  heterogeneity-, cost-, and energy-aware variants of C4.

Every policy has a *reference* implementation (``order``/``select``
over plain Python sequences) and, where possible, a fast-path twin:

- Queue policies with time-invariant keys expose their sort key through
  the ``_INCREMENTAL_SORT_KEYS`` seam; ``order()`` and the incremental
  :class:`TaskQueue` view share the *same* key function, so the two can
  never disagree.  :class:`FairShare` routes through the same seam via
  :meth:`FairShare.sort_key` but is excluded from the incremental
  registry because its key mutates as tasks complete;
  :class:`RandomOrder` is a documented slow-path fallback (its output
  is an RNG stream, not a sort).
- Placement policies gain vectorized kernels (``vectorized_placement``)
  that evaluate one task against a whole fleet's
  :class:`~repro.datacenter.capacity.CapacityVectors` in a single numpy
  pass.  Each kernel replicates its reference ``select`` bit-for-bit:
  the fit mask mirrors :meth:`Machine.can_fit`'s exact float
  comparison, scoring expressions keep the scalar operand order, and
  name tie-breaks use a precomputed lexicographic rank column.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from ..datacenter.machine import Machine
from ..workload.task import Task

try:  # the scalar reference paths below work without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via stubbed tests
    _np = None

__all__ = [
    "QueuePolicy",
    "PlacementPolicy",
    "FCFS",
    "SJF",
    "LJF",
    "EDF",
    "SmallestTaskFirst",
    "RandomOrder",
    "FairShare",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "RoundRobin",
    "FastestFit",
    "CheapestFit",
    "GreenestFit",
    "DataLocalFit",
    "QUEUE_POLICIES",
    "PLACEMENT_POLICIES",
    "ORDER_FALLBACKS",
    "incremental_sort_key",
    "vectorized_placement",
]


class QueuePolicy(Protocol):
    """Orders the waiting queue; the scheduler serves the front first."""

    name: str

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Return the queue in service order (does not mutate input)."""
        ...  # pragma: no cover


class PlacementPolicy(Protocol):
    """Chooses a machine for a task, or ``None`` if nothing fits now."""

    name: str

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return a machine that can fit ``task`` now, or ``None``."""
        ...  # pragma: no cover


# ---------------------------------------------------------------------------
# Queue-ordering policies
# ---------------------------------------------------------------------------
# Key-extraction seam: each sortable policy's key lives here once, and
# both its order() and the incremental TaskQueue registry reference the
# same function, so the slow and fast paths cannot drift apart.
def _fcfs_key(t: Task):
    return (t.submit_time, t.task_id)


def _sjf_key(t: Task):
    return (t.runtime, t.task_id)


def _ljf_key(t: Task):
    return (-t.runtime, t.task_id)


def _edf_key(t: Task):
    return (t.deadline if t.deadline is not None else float("inf"),
            t.submit_time, t.task_id)


def _smallest_key(t: Task):
    return (t.cores, t.runtime, t.task_id)


class FCFS:
    """First-come first-served: by submission time."""

    name = "fcfs"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by submission time, ties by task id."""
        return sorted(queue, key=_fcfs_key)


class SJF:
    """Shortest job first: by runtime estimate."""

    name = "sjf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by estimated runtime, shortest first."""
        return sorted(queue, key=_sjf_key)


class LJF:
    """Longest job first: by runtime estimate, descending."""

    name = "ljf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by estimated runtime, longest first."""
        return sorted(queue, key=_ljf_key)


class EDF:
    """Earliest deadline first; deadline-less tasks go last (FCFS among them)."""

    name = "edf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by deadline; deadline-less tasks go last."""
        return sorted(queue, key=_edf_key)


class SmallestTaskFirst:
    """Fewest cores first — drains fragmentation-era small tasks [39]."""

    name = "smallest-first"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by core demand, smallest first."""
        return sorted(queue, key=_smallest_key)


class RandomOrder:
    """Uniformly random service order (a fairness baseline).

    Deliberate slow-path fallback: the service order is an RNG stream,
    not a sort, so there is no time-invariant key to extract and
    ``incremental_sort_key`` returns ``None``.  The scheduler must call
    ``order()`` every round — and exactly once per round, since each
    call advances the RNG and therefore the simulation's random state.
    """

    name = "random"

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng or random.Random(0)

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Return a uniformly random permutation."""
        shuffled = list(queue)
        self.rng.shuffle(shuffled)
        return shuffled


class FairShare:
    """Round-robins across users by accumulated served core-seconds.

    Users who have consumed less get priority — the multi-tenancy
    fairness concern of P5.

    ``order`` routes through the same key-extraction seam as the
    vectorized policies (:meth:`sort_key`), but the key reads mutable
    served-share state, so the policy is excluded from the incremental
    registry and re-sorts every round (a documented slow path).
    """

    name = "fair-share"

    def __init__(self) -> None:
        self._served: dict[str, float] = {}
        self._owner: dict[int, str] = {}

    def register(self, task: Task, user: str) -> None:
        """Associate a task with its submitting user."""
        self._owner[task.task_id] = user

    def charge(self, task: Task) -> None:
        """Account a completed task against its user's share."""
        user = self._owner.get(task.task_id, "anonymous")
        self._served[user] = self._served.get(user, 0.0) + task.core_seconds

    def sort_key(self, task: Task):
        """Current sort key of ``task`` (valid until the next charge)."""
        user = self._owner.get(task.task_id, "anonymous")
        return (self._served.get(user, 0.0), task.submit_time, task.task_id)

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        """Order by the owning user's served core-seconds."""
        return sorted(queue, key=self.sort_key)


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------
def _fitting(task: Task, machines: Sequence[Machine]) -> list[Machine]:
    return [m for m in machines if m.can_fit(task)]


class FirstFit:
    """First machine (in topology order) that fits."""

    name = "first-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the first machine that fits, else None."""
        for machine in machines:
            if machine.can_fit(task):
                return machine
        return None


class BestFit:
    """Tightest fit: fewest cores left over (consolidating)."""

    name = "best-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fitting machine with fewest leftover cores."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return min(fitting, key=lambda m: (m.cores_free - task.cores, m.name))


class WorstFit:
    """Loosest fit: most cores left over (load spreading)."""

    name = "worst-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fitting machine with most leftover cores."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return max(fitting, key=lambda m: (m.cores_free - task.cores,
                                           m.name))


class RoundRobin:
    """Cycles through machines, skipping ones that do not fit."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the next fitting machine in rotation."""
        n = len(machines)
        for offset in range(n):
            machine = machines[(self._next + offset) % n]
            if machine.can_fit(task):
                self._next = (self._next + offset + 1) % n
                return machine
        return None


class FastestFit:
    """Heterogeneity-aware: fastest machine that fits (C4)."""

    name = "fastest-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fastest fitting machine."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return max(fitting, key=lambda m: (m.spec.speed, m.name))


class CheapestFit:
    """Cost-aware: lowest effective cost (price x effective runtime)."""

    name = "cheapest-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the cheapest fitting machine for this task."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return min(fitting, key=lambda m: (
            m.spec.cost_per_hour * m.effective_runtime(task), m.name))


class GreenestFit:
    """Energy-aware: smallest marginal energy for this task (C6 class v)."""

    name = "greenest-fit"

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fitting machine with least marginal energy."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None

        def marginal_energy(machine: Machine) -> float:
            spec = machine.spec
            watts = (spec.max_watts - spec.idle_watts) * (task.cores
                                                          / spec.cores)
            return watts * machine.effective_runtime(task)

        return min(fitting, key=lambda m: (marginal_energy(m), m.name))


class DataLocalFit:
    """Data-locality-aware: fewest remote input bytes to stage in.

    Prefers the fitting machine already holding the largest share of
    the task's input files (SC18 reference architecture: data movement
    as a first-class scheduling stage).  Ties — including every
    placement of a file-less task — break by machine name, so the
    policy degrades to a deterministic name-ordered fit when no data
    is in play.

    The policy reads residency from a
    :class:`~repro.datacenter.datastore.DataStore`; the scheduler binds
    it via :meth:`bind_datacenter` at construction.  Unbound, every
    machine scores zero remote bytes (pure name-ordered tie-break),
    which keeps the policy total and deterministic in isolation.
    """

    name = "data-local"

    def __init__(self) -> None:
        self._store = None

    def bind_datacenter(self, datacenter) -> None:
        """Attach the datacenter's data store (called by the scheduler)."""
        self._store = getattr(datacenter, "data", None)

    def remote_bytes(self, task: Task, machine: Machine) -> float:
        """Input bytes the task would have to stage onto ``machine``."""
        if self._store is None or not task.input_files:
            return 0.0
        return self._store.remote_bytes(task, machine.name)

    def select(self, task: Task,
               machines: Sequence[Machine]) -> Machine | None:
        """Return the fitting machine with fewest remote input bytes."""
        fitting = _fitting(task, machines)
        if not fitting:
            return None
        return min(fitting,
                   key=lambda m: (self.remote_bytes(task, m), m.name))


#: Queue policies whose sort key is constant while a task waits.  For
#: these the scheduler keeps the queue incrementally sorted (insort at
#: submit) instead of re-sorting every round.  Each entry is the *same
#: function object* the policy's ``order`` sorts with — keys embed
#: ``task_id``, so they are total orders and the incremental view is
#: bit-identical to sorted().
_INCREMENTAL_SORT_KEYS = {
    FCFS: _fcfs_key,
    SJF: _sjf_key,
    LJF: _ljf_key,
    EDF: _edf_key,
    SmallestTaskFirst: _smallest_key,
}

#: Queue policies that legitimately bypass the incremental fast path.
#: ``RandomOrder`` is an RNG stream; ``FairShare``'s key reads mutable
#: served-share state.  Tests assert every registered queue policy is
#: either in ``_INCREMENTAL_SORT_KEYS`` or here, so a new policy cannot
#: *silently* miss the fast path.
ORDER_FALLBACKS = frozenset({RandomOrder, FairShare})


def incremental_sort_key(policy: QueuePolicy):
    """Time-invariant sort key of ``policy``, or ``None``.

    ``None`` means the policy's order depends on mutable state (fair
    share) or randomness, so the scheduler must call ``order()`` each
    round.  Matches on exact type: subclasses may override ``order``.
    """
    return _INCREMENTAL_SORT_KEYS.get(type(policy))


# ---------------------------------------------------------------------------
# Vectorized placement kernels
# ---------------------------------------------------------------------------
# Each kernel answers select(task, available_machines()) for one policy
# using the CapacityVectors arrays instead of a per-machine attribute
# walk.  Kernels must be *bit-identical* to their reference: the fit
# mask replicates Machine.can_fit exactly (see CapacityVectors), score
# expressions keep the scalar operand order (IEEE-754 float ops are
# deterministic given operand order), and ties on the score resolve by
# machine-name rank exactly as the (key, name) tuples of the scalar
# min()/max() do.
def _pick(vectors, fitting, keys, largest: bool):
    """Index of the best fitting machine, with scalar-exact tie-breaks.

    ``min()`` over ``(key, name)`` tuples picks the smallest name among
    key ties; ``max()`` picks the largest.  ``name_rank`` is the
    lexicographic rank of each machine name, so argmin/argmax over it
    replicates the string comparison without touching strings.
    """
    best = keys.max() if largest else keys.min()
    ties = fitting[keys == best]
    if ties.size == 1:
        return int(ties[0])
    ranks = vectors.name_rank[ties]
    return int(ties[ranks.argmax() if largest else ranks.argmin()])


def _vec_first_fit(policy, task: Task, index) -> Machine | None:
    vectors = index.vectors
    mask = vectors.fit_mask(task.cores, task.memory)
    if not mask.size:
        return None
    i = int(mask.argmax())
    if not mask[i]:
        return None
    return vectors.machines[i]


def _vec_best_fit(policy, task: Task, index) -> Machine | None:
    vectors = index.vectors
    fitting = _np.flatnonzero(vectors.fit_mask(task.cores, task.memory))
    if not fitting.size:
        return None
    keys = vectors.cores_free[fitting] - task.cores
    return vectors.machines[_pick(vectors, fitting, keys, largest=False)]


def _vec_worst_fit(policy, task: Task, index) -> Machine | None:
    vectors = index.vectors
    fitting = _np.flatnonzero(vectors.fit_mask(task.cores, task.memory))
    if not fitting.size:
        return None
    keys = vectors.cores_free[fitting] - task.cores
    return vectors.machines[_pick(vectors, fitting, keys, largest=True)]


def _vec_round_robin(policy, task: Task, index) -> Machine | None:
    # The reference rotates over the *available* machine sequence, so
    # the kernel works in that index space: positions of up machines in
    # topology order, cached per availability epoch.
    vectors = index.vectors
    positions = vectors.available_positions(index.availability_epoch)
    n = positions.size
    if n == 0:
        return None
    fit_idx = _np.flatnonzero(
        vectors.fit_mask(task.cores, task.memory)[positions])
    if not fit_idx.size:
        return None
    # First fitting machine at or after the rotation cursor, wrapping —
    # i.e. the fitting index with the smallest (i - next) mod n offset.
    offsets = (fit_idx - policy._next) % n
    k = int(fit_idx[offsets.argmin()])
    policy._next = (k + 1) % n
    return vectors.machines[int(positions[k])]


def _vec_fastest_fit(policy, task: Task, index) -> Machine | None:
    vectors = index.vectors
    fitting = _np.flatnonzero(vectors.fit_mask(task.cores, task.memory))
    if not fitting.size:
        return None
    keys = vectors.speed[fitting]
    return vectors.machines[_pick(vectors, fitting, keys, largest=True)]


def _vec_cheapest_fit(policy, task: Task, index) -> Machine | None:
    vectors = index.vectors
    fitting = _np.flatnonzero(vectors.fit_mask(task.cores, task.memory))
    if not fitting.size:
        return None
    # cost_per_hour * (work / speed), in the reference's operand order.
    work = task.checkpoint_adjusted_work()
    keys = vectors.cost_per_hour[fitting] * (work / vectors.speed[fitting])
    return vectors.machines[_pick(vectors, fitting, keys, largest=False)]


def _vec_greenest_fit(policy, task: Task, index) -> Machine | None:
    vectors = index.vectors
    fitting = _np.flatnonzero(vectors.fit_mask(task.cores, task.memory))
    if not fitting.size:
        return None
    # (max_watts - idle_watts) * (cores / spec.cores) * effective_runtime,
    # each factor in the reference's operand order.
    work = task.checkpoint_adjusted_work()
    watts = (vectors.delta_watts[fitting]
             * (task.cores / vectors.cores_total[fitting]))
    keys = watts * (work / vectors.speed[fitting])
    return vectors.machines[_pick(vectors, fitting, keys, largest=False)]


def _vec_data_local(policy, task: Task, index) -> Machine | None:
    # The fleet scan (fit mask) is vectorized; the per-candidate score
    # reuses the policy's own remote_bytes accessor, so the kernel and
    # the reference share one scoring code path and cannot drift.  The
    # candidate set after fitting is small in practice (machines that
    # fit *now*), so the Python scoring loop is not the hot path.
    vectors = index.vectors
    fitting = _np.flatnonzero(vectors.fit_mask(task.cores, task.memory))
    if not fitting.size:
        return None
    machines = vectors.machines
    keys = _np.fromiter(
        (policy.remote_bytes(task, machines[int(i)]) for i in fitting),
        dtype=float, count=fitting.size)
    return machines[_pick(vectors, fitting, keys, largest=False)]


_VECTOR_PLACEMENTS = {
    FirstFit: _vec_first_fit,
    BestFit: _vec_best_fit,
    WorstFit: _vec_worst_fit,
    RoundRobin: _vec_round_robin,
    FastestFit: _vec_fastest_fit,
    CheapestFit: _vec_cheapest_fit,
    GreenestFit: _vec_greenest_fit,
    DataLocalFit: _vec_data_local,
}


def vectorized_placement(policy: PlacementPolicy):
    """Vectorized kernel of ``policy``, or ``None``.

    ``None`` (numpy missing, or an unknown/subclassed policy) sends the
    scheduler down the reference ``select()`` path.  Matches on exact
    type: subclasses may override ``select``, so they must not inherit
    the kernel.  A kernel is called as ``kernel(policy, task, index)``
    with ``index`` a :class:`~repro.datacenter.capacity.CapacityIndex`
    whose ``vectors`` view is non-``None``.
    """
    if _np is None:
        return None
    return _VECTOR_PLACEMENTS.get(type(policy))


#: Name -> factory for each queue policy (used by benches and portfolios).
QUEUE_POLICIES = {
    "fcfs": FCFS,
    "sjf": SJF,
    "ljf": LJF,
    "edf": EDF,
    "smallest-first": SmallestTaskFirst,
    "random": RandomOrder,
    "fair-share": FairShare,
}

#: Name -> factory for each placement policy.
PLACEMENT_POLICIES = {
    "first-fit": FirstFit,
    "best-fit": BestFit,
    "worst-fit": WorstFit,
    "round-robin": RoundRobin,
    "fastest-fit": FastestFit,
    "cheapest-fit": CheapestFit,
    "greenest-fit": GreenestFit,
    "data-local": DataLocalFit,
}
