"""The cluster scheduler: allocation half of the dual problem (C7).

A :class:`ClusterScheduler` owns a waiting queue, orders it with a
:class:`~repro.scheduling.policies.QueuePolicy`, places tasks with a
:class:`~repro.scheduling.policies.PlacementPolicy`, and optionally
applies EASY backfilling — the classic reservation-based optimization
of parallel-job scheduling.  Completion notifications drive both the
scheduling loop and external observers (workflow engines, autoscalers,
portfolio schedulers).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..datacenter.datacenter import Datacenter
from ..datacenter.machine import Machine
from ..sim import Simulator, TimeWeightedMonitor, summarize
from ..workload.task import Job, Task, TaskState
from .policies import FCFS, FairShare, FirstFit, PlacementPolicy, QueuePolicy

__all__ = ["ClusterScheduler"]


class ClusterScheduler:
    """An online scheduler for one datacenter.

    Args:
        sim: The simulator.
        datacenter: Execution substrate.
        queue_policy: Service-order policy (default FCFS).
        placement_policy: Machine-selection policy (default first-fit).
        backfilling: Enable EASY backfilling: when the queue head does
            not fit, later tasks may run if they do not delay the
            head's earliest possible start (its *shadow time*).
        strict_head: Without backfilling, stop at the first task that
            does not fit (true FCFS blocking) instead of greedily
            skipping it.
    """

    def __init__(self, sim: Simulator, datacenter: Datacenter,
                 queue_policy: QueuePolicy | None = None,
                 placement_policy: PlacementPolicy | None = None,
                 backfilling: bool = False,
                 strict_head: bool = False) -> None:
        self.sim = sim
        self.datacenter = datacenter
        self.queue_policy = queue_policy or FCFS()
        self.placement_policy = placement_policy or FirstFit()
        self.backfilling = backfilling
        self.strict_head = strict_head

        self.queue: list[Task] = []
        self.queue_length = TimeWeightedMonitor("queue_length",
                                                start_time=sim.now)
        self.completed: list[Task] = []
        self.on_task_complete: list[Callable[[Task], None]] = []
        self._running: dict[Task, tuple[Machine, float]] = {}
        self._wakeup = sim.event()
        self._stopped = False
        datacenter.on_capacity_change.append(self._poke)
        sim.process(self._run(), name="scheduler-loop")

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Enqueue one task for scheduling."""
        if task.state not in (TaskState.PENDING, TaskState.ELIGIBLE):
            raise ValueError(f"task {task.name} is {task.state.value}")
        self.queue.append(task)
        self.queue_length.update(self.sim.now, len(self.queue))
        self._poke()

    def submit_job(self, job: Job) -> None:
        """Enqueue all currently-eligible tasks of a job.

        Tasks with unfinished dependencies are *not* submitted; use a
        :class:`~repro.scheduling.workflow_engine.WorkflowEngine` to
        release DAG tasks as they become eligible.
        """
        if isinstance(self.queue_policy, FairShare):
            for task in job:
                self.queue_policy.register(task, job.user)
        for task in job:
            if task.is_eligible:
                self.submit(task)

    def stop(self) -> None:
        """Stop the scheduling loop (used when draining a simulation)."""
        self._stopped = True
        self._poke()

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def _poke(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self):
        while True:
            yield self._wakeup
            self._wakeup = self.sim.event()
            if self._stopped:
                return
            self._schedule_round()

    def _schedule_round(self) -> None:
        ordered = self.queue_policy.order(self.queue, self.sim.now)
        if self.backfilling:
            self._schedule_easy(ordered)
        else:
            self._schedule_list(ordered)
        self.queue_length.update(self.sim.now, len(self.queue))

    def _schedule_list(self, ordered: list[Task]) -> None:
        for task in ordered:
            machine = self.placement_policy.select(
                task, self.datacenter.available_machines())
            if machine is None:
                if self.strict_head:
                    return
                continue
            self._start(task, machine)

    def _schedule_easy(self, ordered: list[Task]) -> None:
        """EASY backfilling: greedy + reservation for the blocked head."""
        remaining = list(ordered)
        # Phase 1: place from the front until the head is blocked.
        while remaining:
            head = remaining[0]
            machine = self.placement_policy.select(
                head, self.datacenter.available_machines())
            if machine is None:
                break
            self._start(head, machine)
            remaining.pop(0)
        if not remaining:
            return
        head = remaining[0]
        shadow_time, spare_cores = self._reservation_for(head)
        # Phase 2: backfill tasks that cannot delay the reservation.
        for task in remaining[1:]:
            finishes_before_shadow = (
                self.sim.now + task.runtime <= shadow_time + 1e-9)
            fits_spare = task.cores <= spare_cores
            if not (finishes_before_shadow or fits_spare):
                continue
            machine = self.placement_policy.select(
                task, self.datacenter.available_machines())
            if machine is None:
                continue
            if not finishes_before_shadow:
                spare_cores -= task.cores
            self._start(task, machine)

    def _reservation_for(self, head: Task) -> tuple[float, int]:
        """Shadow time and spare cores of the head's future reservation.

        The shadow time is when enough cores free up (assuming running
        tasks finish on estimate) for the head to start; spare cores are
        what remains free at that moment beyond the head's demand.
        """
        free = sum(m.cores_free for m in self.datacenter.available_machines())
        releases = sorted(
            (start + machine.effective_runtime(task), task.cores)
            for task, (machine, start) in self._running.items())
        available = free
        shadow_time = self.sim.now
        for finish_time, cores in releases:
            if available >= head.cores:
                break
            available += cores
            shadow_time = finish_time
        spare = max(0, available - head.cores)
        return shadow_time, spare

    def _start(self, task: Task, machine: Machine) -> None:
        self.queue.remove(task)
        self._running[task] = (machine, self.sim.now)
        process = self.datacenter.execute(task, machine)
        process.add_callback(lambda event, t=task: self._on_finished(t, event))

    def _on_finished(self, task: Task, event) -> None:
        self._running.pop(task, None)
        if task.state is TaskState.FINISHED:
            self.completed.append(task)
            if isinstance(self.queue_policy, FairShare):
                self.queue_policy.charge(task)
        for callback in list(self.on_task_complete):
            callback(task)
        self._poke()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def running_count(self) -> int:
        """Tasks currently executing."""
        return len(self._running)

    def statistics(self) -> dict[str, float]:
        """Wait-time / slowdown / response summaries over completed tasks."""
        waits = [t.wait_time for t in self.completed]
        slowdowns = [t.slowdown for t in self.completed]
        responses = [t.response_time for t in self.completed]
        stats = {"completed": float(len(self.completed))}
        for prefix, values in (("wait", waits), ("slowdown", slowdowns),
                               ("response", responses)):
            summary = summarize(values)
            stats[f"{prefix}_mean"] = summary["mean"]
            stats[f"{prefix}_p95"] = summary["p95"]
            stats[f"{prefix}_max"] = summary["max"]
        stats["mean_queue_length"] = self.queue_length.time_average(
            until=self.sim.now)
        return stats

    def makespan(self) -> float:
        """Finish time of the last completed task."""
        if not self.completed:
            raise RuntimeError("no completed tasks")
        return max(t.finish_time for t in self.completed)
