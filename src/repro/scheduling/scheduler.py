"""The cluster scheduler: allocation half of the dual problem (C7).

A :class:`ClusterScheduler` owns a waiting queue, orders it with a
:class:`~repro.scheduling.policies.QueuePolicy`, places tasks with a
:class:`~repro.scheduling.policies.PlacementPolicy`, and optionally
applies EASY backfilling — the classic reservation-based optimization
of parallel-job scheduling.  Completion notifications drive both the
scheduling loop and external observers (workflow engines, autoscalers,
portfolio schedulers).
"""

from __future__ import annotations

from typing import Any, Callable

from bisect import insort

from ..datacenter.datacenter import Datacenter
from ..datacenter.machine import Machine
from ..sim import Simulator, TimeWeightedMonitor, summarize
from ..workload.task import Job, Task, TaskState
from .policies import (FCFS, FairShare, FirstFit, PlacementPolicy,
                       QueuePolicy, incremental_sort_key,
                       vectorized_placement)
from .taskqueue import TaskQueue

__all__ = ["ClusterScheduler"]


def _dominated(failed: list[tuple[int, float]], cores: int,
               memory: float) -> bool:
    """Whether ``(cores, memory)`` dominates a known-failed demand.

    Capacity can only shrink while ``failed`` is live (placements
    allocate; every release bumps the capacity index's
    ``release_epoch``, which discards the list), so a demand at least
    as large as a failed one in both dimensions cannot be placed and
    its probe is skipped.
    """
    for fcores, fmemory in failed:
        if cores >= fcores and memory >= fmemory:
            return True
    return False


class _HedgeRace:
    """Book-keeping for one primary/backup speculative pair."""

    __slots__ = ("primary", "backup", "resolved", "primary_failed",
                 "winner")

    def __init__(self, primary: Task, backup: Task) -> None:
        self.primary = primary
        self.backup = backup
        #: Set once the race outcome is decided; later loser events
        #: are swallowed instead of re-reported.
        self.resolved = False
        #: The primary genuinely failed (machine loss, not cancellation).
        self.primary_failed = False
        self.winner: Task | None = None


class ClusterScheduler:
    """An online scheduler for one datacenter.

    Args:
        sim: The simulator.
        datacenter: Execution substrate.
        queue_policy: Service-order policy (default FCFS).
        placement_policy: Machine-selection policy (default first-fit).
        backfilling: Enable EASY backfilling: when the queue head does
            not fit, later tasks may run if they do not delay the
            head's earliest possible start (its *shadow time*).
        strict_head: Without backfilling, stop at the first task that
            does not fit (true FCFS blocking) instead of greedily
            skipping it.
        admission: Optional admission controller (duck-typed: one
            ``admit(task) -> bool`` method, e.g.
            :class:`~repro.resilience.shedding.LoadSheddingAdmission`).
            Rejected tasks are marked :attr:`~TaskState.SHED` and never
            queued — graceful degradation under overload (C17).
        hedge_policy: Optional
            :class:`~repro.resilience.hedging.HedgePolicy`.  Tasks that
            run past the policy's straggler threshold get a speculative
            backup copy; the first copy to finish wins and the loser is
            cancelled.
    """

    def __init__(self, sim: Simulator, datacenter: Datacenter,
                 queue_policy: QueuePolicy | None = None,
                 placement_policy: PlacementPolicy | None = None,
                 backfilling: bool = False,
                 strict_head: bool = False,
                 admission: Any = None,
                 hedge_policy: Any = None,
                 name: str = "scheduler") -> None:
        self.sim = sim
        self.name = name
        self.datacenter = datacenter
        self.queue_policy = queue_policy or FCFS()
        self.placement_policy = placement_policy or FirstFit()
        # Duck-typed binding hook: data-aware policies need the
        # datacenter's file-residency store to score locality.
        binder = getattr(self.placement_policy, "bind_datacenter", None)
        if binder is not None:
            binder(datacenter)
        self.backfilling = backfilling
        self.strict_head = strict_head
        self.admission = admission
        self.hedge_policy = hedge_policy

        self.queue = TaskQueue()
        #: Policy object the queue's incremental sort view was keyed
        #: for; compared by identity each round so portfolio schedulers
        #: can swap ``queue_policy`` at runtime.
        self._order_source: QueuePolicy | None = None
        #: Placement policy the vectorized kernel was resolved for
        #: (identity-compared each round, like ``_order_source``).
        self._placement_source: PlacementPolicy | None = None
        self._placement_kernel = None
        #: CapacityIndex to hand the kernel this round; ``None`` sends
        #: ``_select_machine`` down the scalar reference path.
        self._round_capacity = None
        #: Demand shapes proven unplaceable, carried across rounds
        #: while the capacity index's ``release_epoch`` stands still
        #: (i.e. nothing was freed, so failure proofs stay valid).
        self._failed_demands: list[tuple[int, float]] = []
        self._failed_epoch = -1
        self.queue_length = TimeWeightedMonitor("queue_length",
                                                start_time=sim.now)
        #: Deferred-flush seam for ``queue_length``: enqueues mark the
        #: monitor dirty instead of updating it, and the scheduling
        #: round that ``_poke()`` guarantees at the *same* sim timestamp
        #: flushes it.  Same-timestamp updates contribute zero weighted
        #: time, so the flushed monitor is bit-identical to eager
        #: updates while skipping one update call per task.
        self._queue_dirty = False
        self.completed: list[Task] = []
        self.shed_tasks: list[Task] = []
        self.on_task_complete: list[Callable[[Task], None]] = []
        self._running: dict[Task, tuple[Machine, float]] = {}
        #: Sorted upcoming releases ``(finish, cores, seq, task, token)``
        #: kept incrementally for EASY reservations; ``token`` is the
        #: exact ``_running`` value tuple, so a stale entry is detected
        #: by an identity check instead of a rescan.
        self._releases: list[tuple] = []
        self._release_seq = 0
        self._release_dead = 0
        self._hedges: dict[Task, _HedgeRace] = {}
        self.hedges_launched = 0
        #: Backup finished first while the primary was still running.
        self.hedge_wins = 0
        #: Backup finished after the primary had already failed.
        self.hedge_rescues = 0
        self._wakeup = sim.event()
        self._stopped = False
        datacenter.on_capacity_change.append(self._poke)
        sim.process(self._run(), name="scheduler-loop")

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Enqueue one task for scheduling (subject to admission control)."""
        if task.state not in (TaskState.PENDING, TaskState.ELIGIBLE):
            raise ValueError(f"task {task.name} is {task.state.value}")
        observer = self.sim.observer
        if self.admission is not None and not self.admission.admit(task):
            task.state = TaskState.SHED
            self.shed_tasks.append(task)
            if observer is not None:
                observer.metrics.counter("scheduler.tasks_shed").inc()
                observer.tracer.instant("shed " + task.name,
                                        category="scheduling",
                                        attrs={"task": task.name})
            return
        if observer is not None:
            observer.metrics.counter("scheduler.tasks_submitted").inc()
            observer.tracer.begin(
                "task " + task.name, category="scheduling",
                key=("task", task.task_id),
                attrs={"task": task.name, "cores": task.cores,
                       "runtime": task.runtime})
        self._enqueue(task)

    def _enqueue(self, task: Task) -> None:
        """Queue a task, bypassing admission (internal resubmissions)."""
        self.queue.append(task)
        if self._stopped:
            # No round will follow; keep the monitor eager so post-run
            # statistics stay exact.
            self.queue_length.update(self.sim.now, len(self.queue))
        else:
            self._queue_dirty = True
        observer = self.sim.observer
        if observer is not None:
            # The gauge stays eager: streaming ticks may sample it
            # between this event and the round's flush.
            observer.metrics.gauge("scheduler.queue_length").set(
                float(len(self.queue)))
        self._poke()

    def submit_job(self, job: Job) -> None:
        """Enqueue all currently-eligible tasks of a job.

        Tasks with unfinished dependencies are *not* submitted; use a
        :class:`~repro.scheduling.workflow_engine.WorkflowEngine` to
        release DAG tasks as they become eligible.
        """
        if isinstance(self.queue_policy, FairShare):
            for task in job:
                self.queue_policy.register(task, job.user)
        for task in job:
            if task.is_eligible:
                self.submit(task)

    def stop(self) -> None:
        """Stop the scheduling loop (used when draining a simulation)."""
        self._stopped = True
        self._poke()

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def _poke(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self):
        while True:
            yield self._wakeup
            self._wakeup = self.sim.event()
            if self._queue_dirty:
                # Flush the deferred queue-length seam.  _poke()
                # guarantees this runs at the same sim timestamp as the
                # deferred changes, so the flush is bit-identical to
                # eager per-change updates.
                self._queue_dirty = False
                self.queue_length.update(self.sim.now, len(self.queue))
            if self._stopped:
                return
            self._schedule_round()

    def _schedule_round(self) -> None:
        """One scheduling epoch: order once, place over the whole set.

        The round batches everything batchable: queue ordering is one
        incremental-view read (or one ``order()`` call), placement runs
        through a vectorized kernel over the capacity arrays when one
        exists for the policy, failed demands prune later dominated
        tasks (capacity only shrinks within a round), and datacenter
        bookkeeping is deferred to one flush at round end.
        """
        policy = self.queue_policy
        if policy is not self._order_source:
            # First round, or a portfolio scheduler swapped the policy:
            # (re)key the queue's incremental sort view.
            self._order_source = policy
            self.queue.set_key(incremental_sort_key(policy))
        placement = self.placement_policy
        if placement is not self._placement_source:
            self._placement_source = placement
            self._placement_kernel = vectorized_placement(placement)
        capacity = self.datacenter.capacity
        # One topology check per round covers every kernel call inside
        # it: topology can only change between events, never inside a
        # synchronous round.
        self._round_capacity = (
            capacity if (self._placement_kernel is not None
                         and capacity.sync() is not None) else None)
        epoch = capacity.release_epoch
        if epoch != self._failed_epoch:
            # Something was freed since the failures were proven (or
            # this is the first round): discard the carried set.
            self._failed_demands = []
            self._failed_epoch = epoch
        if self.queue.has_key:
            ordered = self.queue.ordered()
        else:
            ordered = policy.order(list(self.queue), self.sim.now)
        datacenter = self.datacenter
        datacenter.begin_epoch()
        try:
            if self.backfilling:
                self._schedule_easy(ordered)
            else:
                self._schedule_list(ordered)
        finally:
            datacenter.end_epoch()
        self._queue_dirty = False
        self.queue_length.update(self.sim.now, len(self.queue))
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.gauge("scheduler.queue_length").set(
                float(len(self.queue)))

    def _select_machine(self, task: Task) -> Machine | None:
        """Placement via the vectorized kernel, else the scalar path."""
        capacity = self._round_capacity
        if capacity is not None:
            return self._placement_kernel(self.placement_policy, task,
                                          capacity)
        if type(self.placement_policy) is FirstFit:
            # Cluster-skipping scalar fast path (no numpy available).
            return next(self.datacenter.capacity.candidates(task), None)
        return self.placement_policy.select(
            task, self.datacenter.available_machines())

    @staticmethod
    def _note_failure(failed: list[tuple[int, float]], cores: int,
                      memory: float) -> None:
        """Record a failed demand, keeping ``failed`` an antichain."""
        if failed:
            failed[:] = [f for f in failed
                         if not (f[0] >= cores and f[1] >= memory)]
        failed.append((cores, memory))

    def _schedule_list(self, ordered: list[Task]) -> None:
        # ``failed`` holds demand shapes proven unplaceable — earlier
        # in this round or carried from previous rounds with no release
        # in between.  Any task whose demand dominates a failed shape
        # cannot fit either and its placement probe is skipped — same
        # decisions, fewer scans.
        strict_head = self.strict_head
        failed = self._failed_demands
        for task in ordered:
            cores = task.cores
            memory = task.memory
            if failed and _dominated(failed, cores, memory):
                if strict_head:
                    return
                continue
            machine = self._select_machine(task)
            if machine is None:
                if strict_head:
                    return
                self._note_failure(failed, cores, memory)
                continue
            self._start(task, machine)

    def _schedule_easy(self, ordered: list[Task]) -> None:
        """EASY backfilling: greedy + reservation for the blocked head."""
        # Phase 1: place from the front until the head is blocked.  A
        # head whose demand dominates a carried failed shape is known
        # blocked without a probe.
        failed = self._failed_demands
        index = 0
        n = len(ordered)
        while index < n:
            head = ordered[index]
            if failed and _dominated(failed, head.cores, head.memory):
                break
            machine = self._select_machine(head)
            if machine is None:
                self._note_failure(failed, head.cores, head.memory)
                break
            self._start(head, machine)
            index += 1
        if index >= n:
            return
        head = ordered[index]
        shadow_time, spare_cores = self._reservation_for(head)
        # Phase 2: backfill tasks that cannot delay the reservation.
        # The blocked head's demand is already in the failed set, so
        # the reservation pass and the placement pass share one view of
        # what is provably unplaceable.
        now = self.sim.now
        shadow_cut = shadow_time + 1e-9
        for i in range(index + 1, n):
            task = ordered[i]
            finishes_before_shadow = now + task.runtime <= shadow_cut
            fits_spare = task.cores <= spare_cores
            if not (finishes_before_shadow or fits_spare):
                continue
            cores = task.cores
            memory = task.memory
            if _dominated(failed, cores, memory):
                continue
            machine = self._select_machine(task)
            if machine is None:
                self._note_failure(failed, cores, memory)
                continue
            if not finishes_before_shadow:
                spare_cores -= task.cores
            self._start(task, machine)

    def _reservation_for(self, head: Task) -> tuple[float, int]:
        """Shadow time and spare cores of the head's future reservation.

        The shadow time is when enough cores free up (assuming running
        tasks finish on estimate) for the head to start; spare cores are
        what remains free at that moment beyond the head's demand.
        Upcoming releases come from the incrementally-sorted
        ``_releases`` list rather than a sort of ``_running`` per call.
        """
        free = self.datacenter.capacity.free_cores_total()
        running = self._running
        available = free
        shadow_time = self.sim.now
        head_cores = head.cores
        for finish_time, cores, _seq, task, token in self._releases:
            if running.get(task) is not token:
                continue
            if available >= head_cores:
                break
            available += cores
            shadow_time = finish_time
        spare = max(0, available - head_cores)
        return shadow_time, spare

    def _start(self, task: Task, machine: Machine) -> None:
        self.queue.remove(task)
        token = (machine, self.sim.now)
        self._running[task] = token
        insort(self._releases,
               (self.sim.now + machine.effective_runtime(task), task.cores,
                self._release_seq, task, token))
        self._release_seq += 1
        process = self.datacenter.execute(task, machine)
        process.add_callback(lambda event, t=task: self._on_finished(t, event))
        if (self.hedge_policy is not None and not task.speculative
                and task not in self._hedges
                and self.hedge_policy.should_consider(task.runtime)):
            expected = machine.effective_runtime(task)
            delay = self.hedge_policy.hedge_delay(expected)
            self.sim.process(self._hedge_watch(task, delay),
                             name=f"hedge-watch-{task.name}")

    def _hedge_watch(self, task: Task, delay: float):
        """Launch a speculative backup if ``task`` is still running later."""
        yield self.sim.timeout(delay)
        if (task not in self._running or task in self._hedges
                or task.state is not TaskState.RUNNING):
            return
        backup = task.clone_for_speculation()
        race = _HedgeRace(task, backup)
        self._hedges[task] = race
        self._hedges[backup] = race
        self.hedges_launched += 1
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.counter("scheduler.hedges_launched").inc()
            observer.tracer.instant(
                "hedge " + task.name, category="scheduling",
                parent=observer.tracer.active(("task", task.task_id)),
                attrs={"task": task.name, "backup": backup.name})
        self._enqueue(backup)

    def _on_finished(self, task: Task, event) -> None:
        if self._running.pop(task, None) is not None:
            self._release_dead += 1
            if self._release_dead > 64 and \
                    self._release_dead > len(self._running):
                running = self._running
                self._releases = [e for e in self._releases
                                  if running.get(e[3]) is e[4]]
                self._release_dead = 0
        race = self._hedges.get(task)
        if race is not None:
            self._resolve_hedge(task, race)
            self._poke()
            return
        self._report_complete(task)
        self._poke()

    def _report_complete(self, task: Task) -> None:
        """Surface one terminal outcome (FINISHED or FAILED) to observers."""
        finished = task.state is TaskState.FINISHED
        if finished:
            self.completed.append(task)
            if isinstance(self.queue_policy, FairShare):
                self.queue_policy.charge(task)
        observer = self.sim.observer
        if observer is not None:
            metrics = observer.metrics
            if finished:
                metrics.counter("scheduler.tasks_completed").inc()
                metrics.histogram("scheduler.wait_time").observe(
                    task.start_time - task.submit_time)
                metrics.histogram("scheduler.response_time").observe(
                    task.finish_time - task.submit_time)
            else:
                metrics.counter("scheduler.tasks_failed").inc()
            observer.tracer.end_key(("task", task.task_id),
                                    attrs={"outcome": task.state.value})
        # Copy first: callbacks may (un)register observers reentrantly.
        for callback in tuple(self.on_task_complete):
            callback(task)

    # ------------------------------------------------------------------
    # Hedged execution (C17: tolerate stragglers and machine loss)
    # ------------------------------------------------------------------
    def _resolve_hedge(self, task: Task, race: _HedgeRace) -> None:
        """Advance the primary/backup race on one completion event.

        Exactly one outcome is ever reported to observers, always under
        the *primary* task's identity.  Losing copies are cancelled and
        their (later) failure events swallowed here.
        """
        primary, backup = race.primary, race.backup
        if race.resolved:
            # A loser event arriving after the race was decided.
            self._hedges.pop(task, None)
            if task is primary:
                # The backup won earlier; the primary's cancellation
                # just landed — adopt the winner's result and report.
                if task.state is not TaskState.FINISHED:
                    task.complete_from(backup)
                self._report_complete(task)
            return
        if task.state is TaskState.FINISHED:
            race.resolved = True
            race.winner = task
            self._hedges.pop(task, None)
            if task is primary:
                self._cancel_hedge_copy(backup)
                self._report_complete(task)
                return
            # The backup won the race.
            if race.primary_failed:
                # The primary already died for real: a rescue.
                self.hedge_rescues += 1
                if self.sim.observer is not None:
                    self.sim.observer.metrics.counter(
                        "scheduler.hedge_rescues").inc()
                primary.complete_from(backup)
                self._report_complete(primary)
                return
            # The primary is still running: cancel it; its failure
            # event (handled in the resolved-branch above) adopts the
            # backup's result and reports.
            self.hedge_wins += 1
            if self.sim.observer is not None:
                self.sim.observer.metrics.counter(
                    "scheduler.hedge_wins").inc()
            self._cancel_hedge_copy(primary)
            return
        # A genuine failure (machine loss) of one copy.
        self._hedges.pop(task, None)
        if task is backup:
            if race.primary_failed:
                # Both copies are gone: report the primary's failure.
                race.resolved = True
                self._report_complete(primary)
            # Otherwise the primary is still in flight; let it run on.
            return
        race.primary_failed = True
        if backup not in self.queue and backup not in self._running:
            # The backup is gone too (already failed and swallowed).
            race.resolved = True
            self._report_complete(primary)
        # Otherwise the queued/running backup becomes the recovery path.

    def _cancel_hedge_copy(self, loser: Task) -> None:
        """Withdraw the losing copy of a decided hedge race."""
        if loser in self.queue:
            self.queue.remove(loser)
            if self._stopped:
                self.queue_length.update(self.sim.now, len(self.queue))
            else:
                # The completion event that resolved this race pokes
                # the loop; the same-timestamp round flushes the seam.
                self._queue_dirty = True
            self._hedges.pop(loser, None)
        elif loser in self._running:
            self.datacenter.interrupt_task(loser)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def running_count(self) -> int:
        """Tasks currently executing."""
        return len(self._running)

    def statistics(self) -> dict[str, float]:
        """Wait-time / slowdown / response summaries over completed tasks.

        This is the legacy post-hoc view, kept stable because the
        determinism goldens pin its exact values.  When an
        :class:`~repro.observability.observer.Observer` is attached,
        the same signals stream live into its
        :class:`~repro.observability.metrics.MetricsRegistry` under the
        ``scheduler.*`` names (counters, queue-length gauge, wait- and
        response-time histograms) — prefer that for in-flight
        monitoring and cross-subsystem dashboards.
        """
        if self._queue_dirty:
            # A reader inside the deferred window sees the flushed
            # value; the pending round would flush identically.
            self._queue_dirty = False
            self.queue_length.update(self.sim.now, len(self.queue))
        waits: list[float] = []
        slowdowns: list[float] = []
        responses: list[float] = []
        for t in self.completed:
            # One pass over completed: each task's timestamps are read
            # once, and the response value feeds the slowdown directly.
            submit = t.submit_time
            waits.append(t.start_time - submit)
            response = t.finish_time - submit
            responses.append(response)
            slowdowns.append(response / max(t.runtime, 1e-9))
        stats = {"completed": float(len(self.completed))}
        for prefix, values in (("wait", waits), ("slowdown", slowdowns),
                               ("response", responses)):
            summary = summarize(values)
            stats[f"{prefix}_mean"] = summary["mean"]
            stats[f"{prefix}_p95"] = summary["p95"]
            stats[f"{prefix}_max"] = summary["max"]
        stats["mean_queue_length"] = self.queue_length.time_average(
            until=self.sim.now)
        return stats

    def makespan(self) -> float:
        """Finish time of the last completed task."""
        if not self.completed:
            raise RuntimeError(
                f"scheduler {self.name!r} "
                f"({self.queue_policy.name}/{self.placement_policy.name}) "
                "has no completed tasks")
        return max(t.finish_time for t in self.completed)
