"""Resource-management architectures for multi-cluster systems ([131]).

The paper's lineage includes DGSim — "Comparing Grid Resource
Management Architectures through Trace-Based Simulation" [131].  This
module reproduces that comparison axis for datacenter ecosystems:

- *centralized*: one scheduler with global knowledge over one pooled
  fleet (the information-rich upper baseline);
- *hierarchical*: a meta-scheduler routes each job to the least-loaded
  site's local scheduler (partial, aggregated knowledge);
- *decentralized*: jobs are routed to uniformly random sites whose
  schedulers never coordinate (no shared knowledge).

All three reuse the same :class:`~repro.scheduling.scheduler.
ClusterScheduler` underneath, so the measured differences are purely
architectural — exactly DGSim's methodology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, Sequence

from ..datacenter.cluster import homogeneous_cluster
from ..datacenter.datacenter import Datacenter
from ..datacenter.machine import MachineSpec
from ..sim import Simulator, summarize
from ..workload.task import Job
from .policies import SJF
from .scheduler import ClusterScheduler

__all__ = ["Site", "JobRouter", "RandomRouter", "LeastLoadedRouter",
           "MultiClusterDeployment", "run_architecture"]


@dataclass
class Site:
    """One autonomous scheduling domain."""

    name: str
    datacenter: Datacenter
    scheduler: ClusterScheduler

    def load(self) -> float:
        """Queued + running cores relative to installed cores."""
        total = self.datacenter.total_cores
        if total == 0:
            return 0.0
        queued = sum(t.cores for t in self.scheduler.queue)
        running = sum(m.cores_used for m in self.datacenter.machines())
        return (queued + running) / total


class JobRouter(Protocol):
    """Chooses the site that receives a job."""

    name: str

    def route(self, job: Job, sites: Sequence[Site]) -> Site:
        """The destination site for ``job``."""
        ...  # pragma: no cover


class RandomRouter:
    """Decentralized: uniformly random, no coordination."""

    name = "decentralized-random"

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng or random.Random(0)

    def route(self, job: Job, sites: Sequence[Site]) -> Site:
        """Pick a uniformly random site."""
        return self.rng.choice(list(sites))


class LeastLoadedRouter:
    """Hierarchical: a meta-scheduler with aggregated load knowledge."""

    name = "hierarchical-least-loaded"

    def route(self, job: Job, sites: Sequence[Site]) -> Site:
        """Pick the site with the lowest load, ties by name."""
        return min(sites, key=lambda site: (site.load(), site.name))


class MultiClusterDeployment:
    """N identical sites, or their centralized single-pool equivalent.

    Args:
        sim: The simulator.
        n_sites: Number of scheduling domains; 1 with
            ``machines_per_site * n_sites`` machines models the
            centralized architecture with the same total capacity.
        machines_per_site: Machines per domain.
        spec: Machine model.
        queue_policy_factory: Builds each site's local queue policy.
    """

    def __init__(self, sim: Simulator, n_sites: int,
                 machines_per_site: int,
                 spec: MachineSpec = MachineSpec(),
                 queue_policy_factory=SJF) -> None:
        if n_sites < 1 or machines_per_site < 1:
            raise ValueError("n_sites and machines_per_site must be >= 1")
        self.sim = sim
        self.sites: list[Site] = []
        for index in range(n_sites):
            datacenter = Datacenter(
                sim, [homogeneous_cluster(f"site{index}",
                                          machines_per_site, spec)],
                name=f"site{index}")
            scheduler = ClusterScheduler(
                sim, datacenter, queue_policy=queue_policy_factory())
            self.sites.append(Site(f"site{index}", datacenter, scheduler))

    def submit(self, job: Job, router: JobRouter) -> Site:
        """Route and submit one job; returns the receiving site."""
        site = router.route(job, self.sites)
        site.scheduler.submit_job(job)
        return site

    def completed(self) -> int:
        """Jobs' tasks completed across all sites."""
        return sum(len(site.scheduler.completed) for site in self.sites)

    def global_statistics(self) -> dict[str, float]:
        """Deployment-wide slowdown/wait statistics."""
        tasks = [t for site in self.sites for t in site.scheduler.completed]
        slowdowns = [t.slowdown for t in tasks]
        waits = [t.wait_time for t in tasks]
        stats = {"completed": float(len(tasks))}
        stats["slowdown_mean"] = summarize(slowdowns)["mean"]
        stats["slowdown_p95"] = summarize(slowdowns)["p95"]
        stats["wait_mean"] = summarize(waits)["mean"]
        return stats

    def load_imbalance(self) -> float:
        """Max site load minus min site load (0 = perfectly balanced)."""
        loads = [site.load() for site in self.sites]
        return max(loads) - min(loads)


def run_architecture(architecture: str, jobs: Sequence[Job],
                     n_sites: int = 4, machines_per_site: int = 2,
                     spec: MachineSpec = MachineSpec(cores=8, memory=1e9),
                     horizon: float = 100_000.0,
                     seed: int = 0) -> dict[str, float]:
    """Run one architecture over a trace and return its statistics.

    ``architecture`` is ``"centralized"``, ``"hierarchical"`` or
    ``"decentralized"``.  The centralized variant pools every machine
    under one scheduler; the others split them across ``n_sites``.
    """
    sim = Simulator()
    if architecture == "centralized":
        deployment = MultiClusterDeployment(
            sim, n_sites=1, machines_per_site=n_sites * machines_per_site,
            spec=spec)
        router: JobRouter = LeastLoadedRouter()  # single site: trivial
    elif architecture == "hierarchical":
        deployment = MultiClusterDeployment(sim, n_sites,
                                            machines_per_site, spec=spec)
        router = LeastLoadedRouter()
    elif architecture == "decentralized":
        deployment = MultiClusterDeployment(sim, n_sites,
                                            machines_per_site, spec=spec)
        router = RandomRouter(rng=random.Random(seed))
    else:
        raise ValueError(f"unknown architecture {architecture!r}")

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            deployment.submit(job, router)

    sim.run(until=sim.process(feeder(sim), name="feeder"))
    sim.run(until=horizon)
    expected = sum(len(j) for j in jobs)
    completed = deployment.completed()
    if completed != expected:
        raise RuntimeError(
            f"{architecture}: {completed}/{expected} tasks completed")
    return deployment.global_statistics()
