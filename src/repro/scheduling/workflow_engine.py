"""Workflow execution engine: releases DAG tasks as they become eligible.

The paper (C7) points at "advanced, typically job-specific, execution
engines" that automate the user side of the dual problem.  The
:class:`WorkflowEngine` plays that role for scientific workflows: it
tracks dependencies and submits each task to the underlying scheduler
the moment its predecessors finish.

Failed tasks are retried through a
:class:`~repro.resilience.policies.RetryPolicy` (default: 3 attempts
with exponential backoff) instead of the unbounded immediate retry an
execution engine must never do: under a correlated failure burst that
amplifies load exactly when capacity is lowest.  A task that exhausts
its budget fails the whole workflow terminally with
:class:`WorkflowFailed`.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim import Event, RandomStreams, Simulator
from ..workload.task import Task, TaskState
from ..workload.workflow import Workflow
from .scheduler import ClusterScheduler

__all__ = ["WorkflowEngine", "WorkflowFailed"]


class WorkflowFailed(Exception):
    """Terminal outcome: a task exhausted its retry budget.

    Carried by the workflow's completion event, so
    ``sim.run(until=done)`` raises it at the point of failure.
    """

    def __init__(self, workflow: Workflow, task: Task, retries: int) -> None:
        super().__init__(
            f"workflow {workflow.name!r} failed terminally: task "
            f"{task.name!r} still failing after {retries} retries")
        self.workflow = workflow
        self.task = task
        self.retries = retries


class WorkflowEngine:
    """Drives workflows through a :class:`ClusterScheduler`.

    Args:
        sim: The simulator.
        scheduler: Task-execution backend.
        retry_policy: Bounds re-execution of failed tasks.  ``None``
            selects the default of 3 attempts with exponential backoff
            (base 1s, deterministic — pass a jittered policy plus
            ``streams`` to desynchronize retry waves).
        streams: Optional :class:`~repro.sim.RandomStreams`; its
            ``"workflow-retry"`` substream feeds backoff jitter so runs
            stay bit-reproducible under one experiment seed.
    """

    def __init__(self, sim: Simulator, scheduler: ClusterScheduler,
                 retry_policy=None,
                 streams: Optional[RandomStreams] = None) -> None:
        if retry_policy is None:
            # Imported here, not at module top: repro.resilience.chaos
            # imports the scheduling package, so a top-level import
            # would be circular.
            from ..resilience.policies import ExponentialBackoff
            retry_policy = ExponentialBackoff(max_attempts=3, base=1.0)
        self.sim = sim
        self.scheduler = scheduler
        self.retry_policy = retry_policy
        self._retry_rng: Optional[random.Random] = (
            streams.stream("workflow-retry") if streams is not None else None)
        self._pending: dict[Task, Workflow] = {}
        self._sessions: dict[Task, object] = {}
        self._workflow_done: dict[Workflow, Event] = {}
        #: Workflows that ended in WorkflowFailed, with the culprit task.
        self.failed: dict[Workflow, Task] = {}
        scheduler.on_task_complete.append(self._on_task_complete)

    def submit(self, workflow: Workflow) -> Event:
        """Start a workflow; returns an event that fires at completion.

        The event succeeds with the workflow, or fails with
        :class:`WorkflowFailed` once any task exhausts its retries.
        """
        workflow.validate()
        if workflow in self._workflow_done:
            raise ValueError(f"workflow {workflow.name!r} already submitted")
        done = self.sim.event()
        self._workflow_done[workflow] = done
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.counter("workflow.submitted").inc()
            observer.tracer.begin(
                "workflow " + workflow.name, category="scheduling",
                key=("workflow", workflow),
                attrs={"workflow": workflow.name, "tasks": len(workflow)})
        for task in workflow:
            self._pending[task] = workflow
        self._release_eligible(workflow)
        return done

    def _release_eligible(self, workflow: Workflow) -> None:
        observer = self.sim.observer
        wf_span = (observer.tracer.active(("workflow", workflow))
                   if observer is not None else None)
        for task in workflow:
            if (task in self._pending and task.state is TaskState.PENDING
                    and task.is_eligible
                    and task not in self.scheduler.queue):
                # The queue check covers tasks an external recovery
                # component (e.g. a RecoveryPlanner sharing the
                # scheduler) already reset and re-queued as PENDING —
                # submitting again would double-allocate the task.
                task.state = TaskState.ELIGIBLE
                self.scheduler.submit(task)
                if wf_span is not None:
                    # The scheduler opened the task span parentless; put
                    # it under the workflow span so trace analytics can
                    # extract workflow critical paths.
                    task_span = observer.tracer.active(
                        ("task", task.task_id))
                    if task_span is not None and task_span.parent_id is None:
                        task_span.parent_id = wf_span.span_id

    def _on_task_complete(self, task: Task) -> None:
        workflow = self._pending.get(task)
        if workflow is None:
            return
        if task.state is TaskState.FAILED:
            self._retry_or_abandon(task, workflow)
            return
        if task.state is not TaskState.FINISHED:
            # An earlier completion callback (a recovery planner runs
            # before this engine in composition order) already reset
            # the task for its own retry; keep tracking it.
            return
        self._pending.pop(task, None)
        self._sessions.pop(task, None)
        if workflow.is_finished:
            done = self._workflow_done.pop(workflow)
            if not done.triggered:
                done.succeed(workflow)
            observer = self.sim.observer
            if observer is not None:
                observer.metrics.counter("workflow.completed").inc()
                observer.tracer.end_key(("workflow", workflow),
                                        attrs={"outcome": "finished"})
            return
        self._release_eligible(workflow)

    def _retry_or_abandon(self, task: Task, workflow: Workflow) -> None:
        session = self._sessions.get(task)
        if session is None:
            session = self.retry_policy.session(self._retry_rng)
            self._sessions[task] = session
        delay = session.next_delay()
        if delay is None:
            self._fail_workflow(workflow, task, session.retries)
            return
        if delay <= 0:
            self._resubmit(task)
        else:
            self.sim.process(self._resubmit_later(task, workflow, delay),
                             name=f"retry-{task.name}")

    def _resubmit(self, task: Task) -> None:
        """Re-queue a failed task, marking it ELIGIBLE immediately.

        Leaving it PENDING while queued would make the next
        :meth:`_release_eligible` sweep (any sibling finishing) submit
        it a second time.
        """
        task.reset_for_retry()
        task.state = TaskState.ELIGIBLE
        self.scheduler.submit(task)

    def _resubmit_later(self, task: Task, workflow: Workflow, delay: float):
        yield self.sim.timeout(delay)
        if task in self._pending and task.state is TaskState.FAILED:
            self._resubmit(task)

    def _fail_workflow(self, workflow: Workflow, culprit: Task,
                       retries: int) -> None:
        """Terminal failure: withdraw the workflow and fail its event."""
        self.failed[workflow] = culprit
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.counter("workflow.failed").inc()
            observer.tracer.end_key(("workflow", workflow),
                                    attrs={"outcome": "failed",
                                           "culprit": culprit.name})
        for task in workflow:
            self._pending.pop(task, None)
            self._sessions.pop(task, None)
            if task in self.scheduler.queue:
                self.scheduler.queue.remove(task)
        done = self._workflow_done.pop(workflow, None)
        if done is not None and not done.triggered:
            done.fail(WorkflowFailed(workflow, culprit, retries))
            # Pre-defuse: a caller not waiting on the event should see
            # the terminal state via `engine.failed`, not a crash.
            done.defused = True

    @property
    def active_workflows(self) -> int:
        """Workflows submitted but not yet finished or failed."""
        return len(self._workflow_done)
