"""Workflow execution engine: releases DAG tasks as they become eligible.

The paper (C7) points at "advanced, typically job-specific, execution
engines" that automate the user side of the dual problem.  The
:class:`WorkflowEngine` plays that role for scientific workflows: it
tracks dependencies and submits each task to the underlying scheduler
the moment its predecessors finish.
"""

from __future__ import annotations

from ..sim import Event, Simulator
from ..workload.task import Task, TaskState
from ..workload.workflow import Workflow
from .scheduler import ClusterScheduler

__all__ = ["WorkflowEngine"]


class WorkflowEngine:
    """Drives workflows through a :class:`ClusterScheduler`."""

    def __init__(self, sim: Simulator, scheduler: ClusterScheduler) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self._pending: dict[Task, Workflow] = {}
        self._workflow_done: dict[Workflow, Event] = {}
        scheduler.on_task_complete.append(self._on_task_complete)

    def submit(self, workflow: Workflow) -> Event:
        """Start a workflow; returns an event that fires at completion."""
        workflow.validate()
        if workflow in self._workflow_done:
            raise ValueError(f"workflow {workflow.name!r} already submitted")
        done = self.sim.event()
        self._workflow_done[workflow] = done
        for task in workflow:
            self._pending[task] = workflow
        self._release_eligible(workflow)
        return done

    def _release_eligible(self, workflow: Workflow) -> None:
        for task in list(workflow):
            if (task in self._pending and task.state is TaskState.PENDING
                    and task.is_eligible):
                task.state = TaskState.ELIGIBLE
                self.scheduler.submit(task)

    def _on_task_complete(self, task: Task) -> None:
        workflow = self._pending.pop(task, None)
        if workflow is None:
            return
        if task.state is TaskState.FAILED:
            # Retry failed workflow tasks once capacity allows.
            task.reset_for_retry()
            self._pending[task] = workflow
            self.scheduler.submit(task)
            return
        if workflow.is_finished:
            done = self._workflow_done.pop(workflow)
            if not done.triggered:
                done.succeed(workflow)
            return
        self._release_eligible(workflow)

    @property
    def active_workflows(self) -> int:
        """Workflows submitted but not yet finished."""
        return len(self._workflow_done)
