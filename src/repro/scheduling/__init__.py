"""Scheduling substrate (S5): the dual problem of C7.

Allocation (queue-ordering + placement policies, EASY backfilling),
provisioning (static / on-demand / reserved+on-demand), portfolio
scheduling [112], a workflow execution engine, and the Schopf-style
eleven-stage scheduling reference architecture (§6.1).
"""

from .architectures import (
    JobRouter,
    LeastLoadedRouter,
    MultiClusterDeployment,
    RandomRouter,
    Site,
    run_architecture,
)
from .policies import (
    EDF,
    FCFS,
    LJF,
    ORDER_FALLBACKS,
    PLACEMENT_POLICIES,
    QUEUE_POLICIES,
    SJF,
    BestFit,
    CheapestFit,
    FairShare,
    FastestFit,
    FirstFit,
    GreenestFit,
    PlacementPolicy,
    QueuePolicy,
    RandomOrder,
    RoundRobin,
    SmallestTaskFirst,
    WorstFit,
    incremental_sort_key,
    vectorized_placement,
)
from .portfolio import PolicyScore, PortfolioScheduler, estimate_mean_slowdown
from .provisioning import (
    OnDemandProvisioning,
    Provisioner,
    ProvisioningPolicy,
    ProvisioningState,
    ReservedPlusOnDemand,
    StaticProvisioning,
)
from .reference import (
    STAGE_DESCRIPTIONS,
    PipelineContext,
    PlacementDecision,
    SchedulingPipeline,
    SchedulingStage,
)
from .scheduler import ClusterScheduler
from .social import GroupAwarePolicy, group_response_times
from .workflow_engine import WorkflowEngine, WorkflowFailed

__all__ = [
    "QueuePolicy",
    "PlacementPolicy",
    "FCFS",
    "SJF",
    "LJF",
    "EDF",
    "SmallestTaskFirst",
    "RandomOrder",
    "FairShare",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "RoundRobin",
    "FastestFit",
    "CheapestFit",
    "GreenestFit",
    "QUEUE_POLICIES",
    "PLACEMENT_POLICIES",
    "ORDER_FALLBACKS",
    "incremental_sort_key",
    "vectorized_placement",
    "ClusterScheduler",
    "GroupAwarePolicy",
    "group_response_times",
    "Site",
    "JobRouter",
    "RandomRouter",
    "LeastLoadedRouter",
    "MultiClusterDeployment",
    "run_architecture",
    "WorkflowEngine",
    "WorkflowFailed",
    "ProvisioningState",
    "ProvisioningPolicy",
    "StaticProvisioning",
    "OnDemandProvisioning",
    "ReservedPlusOnDemand",
    "Provisioner",
    "PortfolioScheduler",
    "PolicyScore",
    "estimate_mean_slowdown",
    "SchedulingPipeline",
    "SchedulingStage",
    "PipelineContext",
    "PlacementDecision",
    "STAGE_DESCRIPTIONS",
]
