"""An index-backed waiting queue with incremental service ordering.

The scheduler's waiting queue historically was a plain list: O(n)
``remove`` on every task start, and a full ``sorted()`` of the queue on
every scheduling round.  Under a 10k-task backlog those two costs
dominate the whole simulation.  :class:`TaskQueue` replaces the list
with:

- a membership dict (O(1) ``in``/``remove``/``len``);
- an insertion-ordered entry deque using *tombstones* — removal marks
  the entry dead instead of shifting the tail, and dead entries are
  swept in amortized batches;
- an optional *incrementally sorted view*: when the active queue policy
  has a time-invariant sort key (FCFS, SJF, ...), entries are kept
  sorted by ``bisect.insort`` at enqueue time, so a scheduling round
  reads the service order instead of recomputing it.  Full rebuilds
  (policy swaps on a deep backlog) go through a numpy ``lexsort`` over
  the preextracted key columns instead of a Python ``sorted()``.

Order semantics are exactly those of the old list: iteration yields
live tasks in insertion order, and the sorted view equals
``sorted(queue, key=...)`` (keys embed ``task_id``, so they are unique
and stability never matters).
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Callable, Iterable, Iterator, Optional

from ..workload.task import Task

try:  # optional: accelerates full rebuilds of the sorted view
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via stubbed tests
    _np = None

__all__ = ["TaskQueue"]

#: Sweep dead entries once they outnumber live ones beyond this floor.
_COMPACT_FLOOR = 64

#: Full rebuilds switch from sorted() to a numpy lexsort over the key
#: columns at this size.
_LEXSORT_FLOOR = 256


def _sort_items(items: list[tuple]) -> list[tuple]:
    """Sort ``(key, seq, entry)`` items, vectorizing large rebuilds.

    Keys are tuples of uniform width whose components are numeric
    (in-tree policy keys are floats and small ints, all exact in
    float64; keys embed ``task_id``, so they are unique and ties cannot
    arise).  A lexsort over the transposed key columns therefore
    produces exactly ``sorted(items)``.  Anything that does not fit
    that shape — ragged widths, non-numeric components, huge ints —
    falls back to ``sorted()``.
    """
    if _np is None or len(items) < _LEXSORT_FLOOR:
        return sorted(items)
    width = len(items[0][0])
    keys = [item[0] for item in items]
    if any(len(key) != width for key in keys):
        return sorted(items)
    try:
        columns = [_np.asarray(column, dtype=_np.float64)
                   for column in zip(*keys)]
    except (TypeError, ValueError, OverflowError):
        return sorted(items)
    for column, raw in zip(columns, zip(*keys)):
        # Refuse lossy conversions (e.g. ints beyond 2**53): a
        # collapsed column could reorder ties differently than
        # sorted() would.
        if any(stored != original
               for stored, original in zip(column.tolist(), raw)):
            return sorted(items)
    order = _np.lexsort(columns[::-1])
    return [items[i] for i in order]


class _Entry:
    """One queue slot; ``alive`` is cleared instead of unlinking."""

    __slots__ = ("task", "seq", "alive")

    def __init__(self, task: Task, seq: int) -> None:
        self.task = task
        self.seq = seq
        self.alive = True


class TaskQueue:
    """Waiting-queue container used by :class:`ClusterScheduler`.

    Supports the list-like surface external code relies on (``in``,
    ``len``, truthiness, iteration, ``append``/``extend``/``remove``)
    plus :meth:`ordered`, which returns the service order under the
    key installed with :meth:`set_key` (or insertion order without one).
    """

    def __init__(self, key: Optional[Callable[[Task], tuple]] = None) -> None:
        self._entries: deque[_Entry] = deque()
        self._live: dict[Task, _Entry] = {}
        self._seq = 0
        self._dead = 0
        self._key: Optional[Callable[[Task], tuple]] = None
        self._sorted: list[tuple] = []
        self._sorted_dead = 0
        if key is not None:
            self.set_key(key)

    # ------------------------------------------------------------------
    # List-like surface
    # ------------------------------------------------------------------
    def append(self, task: Task) -> None:
        """Enqueue ``task`` (must not already be queued)."""
        if task in self._live:
            raise ValueError(f"task {task.name} is already queued")
        entry = _Entry(task, self._seq)
        self._seq += 1
        self._live[task] = entry
        self._entries.append(entry)
        if self._key is not None:
            insort(self._sorted, (self._key(task), entry.seq, entry))

    def extend(self, tasks: Iterable[Task]) -> None:
        """Enqueue several tasks in order."""
        for task in tasks:
            self.append(task)

    def remove(self, task: Task) -> None:
        """Dequeue ``task``; raises ``ValueError`` if absent (like list)."""
        entry = self._live.pop(task, None)
        if entry is None:
            raise ValueError(f"task {task!r} is not queued")
        entry.alive = False
        self._dead += 1
        self._sorted_dead += 1
        if self._dead > _COMPACT_FLOOR and self._dead > len(self._live):
            self._compact()

    def __contains__(self, task: object) -> bool:
        return task in self._live

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __iter__(self) -> Iterator[Task]:
        """Live tasks in insertion order."""
        for entry in self._entries:
            if entry.alive:
                yield entry.task

    # ------------------------------------------------------------------
    # Ordered view
    # ------------------------------------------------------------------
    @property
    def has_key(self) -> bool:
        """Whether an incremental sort key is installed."""
        return self._key is not None

    def set_key(self, key: Optional[Callable[[Task], tuple]]) -> None:
        """Install (or clear) the incremental sort key.

        Rebuilds the sorted view from the live entries, so it is safe to
        call mid-stream when a portfolio scheduler swaps policies.
        """
        self._key = key
        if key is None:
            self._sorted = []
            self._sorted_dead = 0
            return
        self._sorted = _sort_items(
            [(key(entry.task), entry.seq, entry)
             for entry in self._entries if entry.alive])
        self._sorted_dead = 0

    def ordered(self) -> list[Task]:
        """Service order under the installed key (insertion order if none)."""
        if self._key is None:
            return list(self)
        if self._sorted_dead > _COMPACT_FLOOR and \
                self._sorted_dead > len(self._live):
            self._sorted = [item for item in self._sorted if item[2].alive]
            self._sorted_dead = 0
        return [item[2].task for item in self._sorted if item[2].alive]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Sweep tombstones out of the insertion-order deque."""
        self._entries = deque(e for e in self._entries if e.alive)
        self._dead = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskQueue {len(self._live)} queued>"
