"""Portfolio scheduling (C6 approach class iv; [112], [22]).

A portfolio scheduler holds several candidate scheduling policies and,
at each decision point, selects the one whose *simulated* outcome on
the current system state is best — the paper's own line of work on
"self-expressive management of business-critical workloads" [112].

The selection simulation here is a fast aggregate-capacity estimator:
the datacenter is abstracted to its total core count, running tasks
release cores at their expected finish times, and each candidate
ordering is replayed in virtual time to estimate the mean slowdown of
the queued tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..sim import Simulator
from ..workload.task import Task
from .policies import QueuePolicy
from .scheduler import ClusterScheduler

__all__ = ["estimate_mean_slowdown", "PortfolioScheduler", "PolicyScore"]


def estimate_mean_slowdown(ordered_tasks: Sequence[Task], now: float,
                           total_cores: int,
                           releases: Sequence[tuple[float, int]]) -> float:
    """Estimated mean slowdown of serving ``ordered_tasks`` in order.

    Args:
        ordered_tasks: Queue in the candidate service order.
        now: Current time (waits are measured from each task's submit).
        total_cores: Aggregate capacity of the datacenter.
        releases: ``(time, cores)`` of future releases by running tasks.

    The estimator is conservative (aggregate capacity ignores
    per-machine fragmentation) but ranks policies consistently, which
    is all portfolio selection needs.
    """
    if total_cores < 1:
        raise ValueError("total_cores must be >= 1")
    if not ordered_tasks:
        return 1.0
    free = total_cores - sum(cores for _, cores in releases)
    pending_releases = sorted(releases)
    virtual_now = now
    slowdowns = []
    running: list[tuple[float, int]] = list(pending_releases)
    for task in ordered_tasks:
        # Advance virtual time until the task's cores fit.
        while free < task.cores and running:
            release_time, cores = running.pop(0)
            virtual_now = max(virtual_now, release_time)
            free += cores
        if free < task.cores:
            # Task can never fit: charge a large penalty.
            slowdowns.append(1e6)
            continue
        start = max(virtual_now, task.submit_time)
        finish = start + task.runtime
        free -= task.cores
        # Insert this task's own release.
        index = 0
        while index < len(running) and running[index][0] <= finish:
            index += 1
        running.insert(index, (finish, task.cores))
        wait = start - task.submit_time
        slowdowns.append((wait + task.runtime) / max(task.runtime, 1e-9))
    return sum(slowdowns) / len(slowdowns)


@dataclass(frozen=True)
class PolicyScore:
    """Outcome of evaluating one candidate policy."""

    policy_name: str
    score: float


class PortfolioScheduler:
    """Periodically re-selects the live queue policy of a scheduler.

    Every ``interval`` simulated seconds, all candidate policies are
    scored on the current queue with :func:`estimate_mean_slowdown`; the
    winner becomes the scheduler's queue policy.  ``history`` records
    each switch for later analysis.
    """

    def __init__(self, sim: Simulator, scheduler: ClusterScheduler,
                 candidates: Sequence[QueuePolicy],
                 interval: float = 50.0) -> None:
        if not candidates:
            raise ValueError("portfolio needs at least one candidate policy")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.scheduler = scheduler
        self.candidates = list(candidates)
        self.interval = interval
        self.history: list[tuple[float, str]] = []
        self._stopped = False
        sim.process(self._run(), name="portfolio-loop")

    def evaluate(self) -> list[PolicyScore]:
        """Score every candidate on the current queue snapshot."""
        queue = list(self.scheduler.queue)
        now = self.sim.now
        total_cores = self.scheduler.datacenter.total_cores
        releases = [
            (start + machine.effective_runtime(task), task.cores)
            for task, (machine, start) in self.scheduler._running.items()]
        scores = []
        for policy in self.candidates:
            ordered = policy.order(queue, now)
            score = estimate_mean_slowdown(ordered, now, total_cores,
                                           releases)
            scores.append(PolicyScore(policy.name, score))
        return scores

    def select(self) -> QueuePolicy:
        """Pick the best candidate and install it on the scheduler."""
        scores = self.evaluate()
        best_index = min(range(len(scores)), key=lambda i: scores[i].score)
        winner = self.candidates[best_index]
        if (not self.history
                or self.history[-1][1] != winner.name):
            self.history.append((self.sim.now, winner.name))
        self.scheduler.queue_policy = winner
        return winner

    def _run(self):
        while not self._stopped:
            if self.scheduler.queue:
                self.select()
                self.scheduler._poke()
            yield self.sim.timeout(self.interval)

    def stop(self) -> None:
        """Stop the selection loop at the next tick."""
        self._stopped = True

    @property
    def switches(self) -> int:
        """Number of times the active policy changed."""
        return max(0, len(self.history) - 1)
