"""The Function Composition Layer: workflows of functions (Figure 5).

"User-defined functions are typically stateless and interact with each
other through an event-driven paradigm ... These FaaS workloads can
often be modeled as (complex) workflows."  (§6.5)

Compositions are built from three combinators — :func:`step` (one
function), :func:`sequence`, and :func:`parallel` — and executed by the
:class:`CompositionEngine`, the meta-scheduler that "creat[es] workflows
of functions and submit[s] the individual tasks to the management
layer".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Event, Simulator
from .platform import FaaSPlatform, Invocation

__all__ = ["Composition", "step", "sequence", "parallel",
           "CompositionEngine", "CompositionResult"]


@dataclass(frozen=True)
class Composition:
    """A tree of function steps: kind is 'step', 'sequence' or 'parallel'."""

    kind: str
    function: str = ""
    children: tuple["Composition", ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("step", "sequence", "parallel"):
            raise ValueError(f"unknown composition kind {self.kind!r}")
        if self.kind == "step":
            if not self.function:
                raise ValueError("a step needs a function name")
            if self.children:
                raise ValueError("a step has no children")
        else:
            if len(self.children) < 1:
                raise ValueError(f"{self.kind} needs at least one child")

    def functions(self) -> list[str]:
        """All function names referenced, in definition order."""
        if self.kind == "step":
            return [self.function]
        return [name for child in self.children
                for name in child.functions()]

    def critical_path_steps(self) -> int:
        """Length (in steps) of the longest sequential chain."""
        if self.kind == "step":
            return 1
        if self.kind == "sequence":
            return sum(c.critical_path_steps() for c in self.children)
        return max(c.critical_path_steps() for c in self.children)


def step(function: str) -> Composition:
    """A single function invocation."""
    return Composition(kind="step", function=function)


def sequence(*children: Composition) -> Composition:
    """Run children one after another."""
    return Composition(kind="sequence", children=tuple(children))


def parallel(*children: Composition) -> Composition:
    """Run children concurrently; joins when all finish."""
    return Composition(kind="parallel", children=tuple(children))


@dataclass
class CompositionResult:
    """Outcome of executing a composition."""

    submit_time: float
    finish_time: float
    invocations: list[Invocation] = field(default_factory=list)

    @property
    def latency(self) -> float:
        """End-to-end composition latency."""
        return self.finish_time - self.submit_time

    @property
    def cold_starts(self) -> int:
        """Number of invocations that paid a cold start."""
        return sum(1 for i in self.invocations if i.cold)


class CompositionEngine:
    """Executes compositions against a :class:`FaaSPlatform`."""

    def __init__(self, sim: Simulator, platform: FaaSPlatform) -> None:
        self.sim = sim
        self.platform = platform
        self.completed: list[CompositionResult] = []

    def run(self, composition: Composition) -> Event:
        """Execute a composition; the process yields a CompositionResult."""
        for name in composition.functions():
            self.platform.get_function(name)  # fail fast on unknown names
        return self.sim.process(self._run_root(composition),
                                name="composition")

    def _run_root(self, composition: Composition):
        result = CompositionResult(submit_time=self.sim.now,
                                   finish_time=self.sim.now)
        yield from self._execute(composition, result)
        result.finish_time = self.sim.now
        self.completed.append(result)
        return result

    def _execute(self, node: Composition, result: CompositionResult):
        if node.kind == "step":
            invocation = yield self.platform.invoke(node.function)
            result.invocations.append(invocation)
        elif node.kind == "sequence":
            for child in node.children:
                yield from self._execute(child, result)
        else:  # parallel
            branches = [
                self.sim.process(self._branch(child, result),
                                 name=f"branch-{index}")
                for index, child in enumerate(node.children)]
            yield self.sim.all_of(branches)

    def _branch(self, node: Composition, result: CompositionResult):
        yield from self._execute(node, result)
