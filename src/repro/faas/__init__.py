"""FaaS / serverless substrate (S11): the Figure 5 architecture (§6.5).

The four-layer FaaS reference architecture with real-platform
validation, a simulated platform with cold starts / warm pools /
fine-grained billing, and a function-composition meta-scheduler.
"""

from .architecture import (
    FAAS_LAYERS,
    PLATFORM_MAPPINGS,
    FaaSLayer,
    FaaSReferenceArchitecture,
    validate_platform_mapping,
)
from .composition import (
    Composition,
    CompositionEngine,
    CompositionResult,
    parallel,
    sequence,
    step,
)
from .platform import FaaSPlatform, FunctionSpec, Invocation, ResilientInvoker

__all__ = [
    "FaaSLayer",
    "FAAS_LAYERS",
    "FaaSReferenceArchitecture",
    "PLATFORM_MAPPINGS",
    "validate_platform_mapping",
    "FunctionSpec",
    "Invocation",
    "FaaSPlatform",
    "ResilientInvoker",
    "Composition",
    "step",
    "sequence",
    "parallel",
    "CompositionEngine",
    "CompositionResult",
]
