"""The FaaS reference architecture (paper Figure 5, §6.5).

Figure 5, developed jointly with the SPEC RG Cloud group, orders four
layers from business logic (BL) to operational logic (OL):

4. *Function Composition Layer* — meta-scheduling: creating workflows
   of functions and submitting individual tasks downward (maps to
   layer 5 of Figure 3);
3. *Function Management Layer* — managing instances of the
   cloud-function abstraction, scheduling and routing (the runtime
   engine of layer 4 in Figure 3);
2. *Resource Orchestration Layer* — IaaS orchestration, e.g.
   Kubernetes (layer 3 of Figure 3);
1. *Resource Layer* — the available resources within a cloud.

The paper validated the architecture by matching its components with
real platforms (OpenWhisk, Fission); :data:`PLATFORM_MAPPINGS` encodes
those matchings and :func:`validate_platform_mapping` re-performs the
validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = ["FaaSLayer", "FAAS_LAYERS", "FaaSReferenceArchitecture",
           "PLATFORM_MAPPINGS", "validate_platform_mapping"]


@dataclass(frozen=True)
class FaaSLayer:
    """One layer of the Figure 5 reference architecture."""

    number: int
    name: str
    responsibility: str
    figure3_layer: int
    logic: str  # "business" or "operational"


#: Figure 5 of the paper, ordered BL (top) to OL (bottom).
FAAS_LAYERS: tuple[FaaSLayer, ...] = (
    FaaSLayer(4, "Function Composition Layer",
              "meta-scheduling: creating workflows of functions and "
              "submitting the individual tasks to the management layer",
              figure3_layer=5, logic="business"),
    FaaSLayer(3, "Function Management Layer",
              "managing instances of the cloud-function abstraction, by "
              "scheduling and routing functions",
              figure3_layer=4, logic="business"),
    FaaSLayer(2, "Resource Orchestration Layer",
              "orchestration of managed resources, often implemented by "
              "modern IaaS orchestration services (e.g. Kubernetes)",
              figure3_layer=3, logic="operational"),
    FaaSLayer(1, "Resource Layer",
              "the available resources within a cloud",
              figure3_layer=1, logic="operational"),
)

#: Real-platform component matchings the paper used for validation
#: (§6.5: "we have already matched its components with real-world FaaS
#: platforms such as OpenWhisk and Fission").
PLATFORM_MAPPINGS: dict[str, Mapping[str, int]] = {
    "openwhisk": {
        "Composer": 4,
        "Controller": 3,
        "Invoker": 3,
        "Kubernetes": 2,
        "CouchDB": 2,
        "VMs": 1,
    },
    "fission": {
        "Fission Workflows": 4,
        "Router": 3,
        "Executor": 3,
        "Kubernetes": 2,
        "Nodes": 1,
    },
}


class FaaSReferenceArchitecture:
    """Queryable regeneration of Figure 5."""

    def __init__(self, layers: tuple[FaaSLayer, ...] = FAAS_LAYERS) -> None:
        numbers = [layer.number for layer in layers]
        if sorted(numbers, reverse=True) != numbers:
            raise ValueError("layers must be ordered top (BL) to bottom (OL)")
        self._layers = layers

    def __iter__(self) -> Iterator[FaaSLayer]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, number: int) -> FaaSLayer:
        """Look up a layer by its Figure 5 number."""
        for layer in self._layers:
            if layer.number == number:
                return layer
        raise KeyError(number)

    def business_layers(self) -> list[FaaSLayer]:
        """Layers carrying business logic (top of the BL→OL order)."""
        return [l for l in self._layers if l.logic == "business"]

    def figure3_correspondence(self) -> dict[int, int]:
        """Figure 5 layer number -> Figure 3 layer number, as in §6.5."""
        return {l.number: l.figure3_layer for l in self._layers}

    def table_rows(self) -> list[tuple[int, str, str]]:
        """(number, name, responsibility) rows regenerating Figure 5."""
        return [(l.number, l.name, l.responsibility) for l in self._layers]


def validate_platform_mapping(platform: str) -> list[str]:
    """Re-validate a real platform against the reference architecture.

    Returns the list of problems (empty when the platform maps
    cleanly): components placed on unknown layers, or reference layers
    with no matching component.
    """
    if platform not in PLATFORM_MAPPINGS:
        raise KeyError(f"unknown platform {platform!r}; "
                       f"known: {sorted(PLATFORM_MAPPINGS)}")
    architecture = FaaSReferenceArchitecture()
    known_layers = {layer.number for layer in architecture}
    mapping = PLATFORM_MAPPINGS[platform]
    problems = [f"component {component!r} maps to unknown layer {layer}"
                for component, layer in mapping.items()
                if layer not in known_layers]
    covered = set(mapping.values())
    problems.extend(
        f"layer {layer.number} ({layer.name}) has no "
        f"component in {platform}"
        for layer in architecture if layer.number not in covered)
    return problems
