"""A simulated FaaS platform: the Function Management + Resource layers.

Implements the operational heart of Figure 5: function deployment,
instance lifecycle (cold start, warm pool, keep-alive expiry), routing
of invocations to instances, concurrency capacity drawn from the
Resource layer, and the fine-grained consumption billing the paper
highlights ("on-demand services billed at a very fine
resource-granularity", §6.5).  The pragmatic challenge the paper names
— "achieving good performance while isolating the operation of each
function across multiple tenants" — shows up here as the cold-start /
keep-alive trade-off the benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim import Event, Monitor, Resource, Simulator

__all__ = ["FunctionSpec", "Invocation", "FaaSPlatform", "ResilientInvoker"]


@dataclass(frozen=True)
class FunctionSpec:
    """A deployed cloud function.

    Attributes:
        name: Function identifier.
        mean_runtime: Service time of one invocation, seconds.
        memory_gb: Memory reservation (billing unit is GB-seconds).
        cold_start: Extra latency to create a fresh instance.
        keep_alive: Idle time after which a warm instance is reclaimed.
    """

    name: str
    mean_runtime: float = 0.2
    memory_gb: float = 0.25
    cold_start: float = 0.5
    keep_alive: float = 60.0

    def __post_init__(self) -> None:
        if self.mean_runtime <= 0:
            raise ValueError("mean_runtime must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.cold_start < 0:
            raise ValueError("cold_start must be non-negative")
        if self.keep_alive < 0:
            raise ValueError("keep_alive must be non-negative")


@dataclass
class Invocation:
    """Record of one function invocation."""

    function: str
    submit_time: float
    start_time: float = 0.0
    finish_time: float = 0.0
    cold: bool = False
    #: Served by a degraded fallback path (breaker open or deadline hit).
    fallback: bool = False
    #: The primary call exceeded its deadline and was cancelled.
    timed_out: bool = False
    result: Any = None

    @property
    def latency(self) -> float:
        """End-to-end invocation latency."""
        return self.finish_time - self.submit_time


class _WarmPool:
    """Warm instances of one function, newest-first reuse."""

    def __init__(self) -> None:
        # Each entry is the sim-time the instance went idle.
        self.idle_since: list[float] = []

    def take(self, now: float, keep_alive: float) -> bool:
        """Try to claim a still-alive warm instance."""
        self.reap(now, keep_alive)
        if self.idle_since:
            self.idle_since.pop()
            return True
        return False

    def put(self, now: float) -> None:
        self.idle_since.append(now)

    def reap(self, now: float, keep_alive: float) -> int:
        """Drop instances idle past the keep-alive; returns count dropped."""
        before = len(self.idle_since)
        self.idle_since = [t for t in self.idle_since
                           if now - t <= keep_alive]
        return before - len(self.idle_since)

    def __len__(self) -> int:
        return len(self.idle_since)


class FaaSPlatform:
    """The Function Management Layer over a fixed concurrency capacity.

    Args:
        sim: The simulator.
        concurrency: Maximum simultaneously running instances (the
            Resource layer's capacity).
        gb_second_price: Billing rate in dollars per GB-second.
        per_invocation_price: Flat per-request fee.
    """

    def __init__(self, sim: Simulator, concurrency: int = 100,
                 gb_second_price: float = 0.0000166667,
                 per_invocation_price: float = 0.0000002) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.sim = sim
        self.concurrency = Resource(sim, capacity=concurrency)
        self.gb_second_price = gb_second_price
        self.per_invocation_price = per_invocation_price
        self._functions: dict[str, FunctionSpec] = {}
        self._pools: dict[str, _WarmPool] = {}
        self.invocations: list[Invocation] = []
        self.latency = Monitor("faas.latency")
        self.billed_gb_seconds = 0.0
        self.billed_dollars = 0.0

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, spec: FunctionSpec) -> FunctionSpec:
        """Register a function; redeploying the same name replaces it."""
        self._functions[spec.name] = spec
        self._pools.setdefault(spec.name, _WarmPool())
        return spec

    def get_function(self, name: str) -> FunctionSpec:
        """Look up a deployed function."""
        if name not in self._functions:
            raise KeyError(f"function {name!r} is not deployed")
        return self._functions[name]

    @property
    def deployed_functions(self) -> list[str]:
        """Names of all deployed functions."""
        return sorted(self._functions)

    def warm_instances(self, name: str) -> int:
        """Currently warm (idle, not yet reaped) instances of a function."""
        spec = self.get_function(name)
        pool = self._pools[name]
        pool.reap(self.sim.now, spec.keep_alive)
        return len(pool)

    # ------------------------------------------------------------------
    # Invocation (routing + lifecycle)
    # ------------------------------------------------------------------
    def invoke(self, name: str, runtime: float | None = None) -> Event:
        """Invoke a function; the returned process yields the Invocation."""
        spec = self.get_function(name)
        record = Invocation(function=name, submit_time=self.sim.now)
        observer = self.sim.observer
        span = None
        if observer is not None:
            observer.metrics.counter("faas.invocations").inc()
            span = observer.tracer.begin("invoke " + name, category="faas",
                                         attrs={"function": name})
        return self.sim.process(self._invoke(spec, record, runtime, span),
                                name=f"faas-{name}")

    def _invoke(self, spec: FunctionSpec, record: Invocation,
                runtime: float | None, span=None):
        with self.concurrency.request() as slot:
            yield slot
            pool = self._pools[spec.name]
            warm = pool.take(self.sim.now, spec.keep_alive)
            record.cold = not warm
            if record.cold and spec.cold_start > 0:
                yield self.sim.timeout(spec.cold_start)
            record.start_time = self.sim.now
            service = spec.mean_runtime if runtime is None else runtime
            if service < 0:
                raise ValueError("runtime must be non-negative")
            yield self.sim.timeout(service)
            record.finish_time = self.sim.now
            pool.put(self.sim.now)
        self._bill(spec, record)
        self.invocations.append(record)
        self.latency.record(self.sim.now, record.latency)
        observer = self.sim.observer
        if observer is not None:
            if record.cold:
                observer.metrics.counter("faas.cold_starts").inc()
            observer.metrics.histogram("faas.latency").observe(record.latency)
            observer.metrics.counter("faas.billed_gb_seconds").inc(
                (record.finish_time - record.start_time) * spec.memory_gb)
            if span is not None:
                observer.tracer.end(span, attrs={"cold": record.cold})
        record.result = record
        return record

    def _bill(self, spec: FunctionSpec, record: Invocation) -> None:
        duration = record.finish_time - record.start_time
        gb_seconds = duration * spec.memory_gb
        self.billed_gb_seconds += gb_seconds
        self.billed_dollars += (gb_seconds * self.gb_second_price
                                + self.per_invocation_price)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def cold_start_fraction(self) -> float:
        """Fraction of completed invocations that paid a cold start."""
        if not self.invocations:
            return 0.0
        return sum(1 for i in self.invocations if i.cold) / len(self.invocations)

    def statistics(self) -> dict[str, float]:
        """Latency summary, cold-start fraction, and billing totals."""
        stats = self.latency.summary()
        return {
            "invocations": float(len(self.invocations)),
            "latency_mean": stats["mean"],
            "latency_p95": stats["p95"],
            "latency_p99": stats["p99"],
            "cold_start_fraction": self.cold_start_fraction(),
            "billed_gb_seconds": self.billed_gb_seconds,
            "billed_dollars": self.billed_dollars,
        }


class ResilientInvoker:
    """Circuit breaker + deadline + fallback around platform invocations.

    The paper's C17 asks for graceful degradation: when the platform is
    saturated or failing, a caller should get a cheap degraded answer
    quickly instead of queueing behind a dying dependency.  The invoker
    implements the standard trio:

    - **deadline**: an invocation that has not completed within
      ``deadline`` sim-seconds is cancelled and counted as a timeout;
    - **circuit breaker**: consecutive timeouts open the (duck-typed)
      breaker, after which calls are rejected *without* touching the
      platform until it half-opens again;
    - **fallback**: rejected and timed-out calls are served by a
      degraded local path taking ``fallback_runtime`` seconds.

    Args:
        platform: The wrapped platform.
        breaker: Any object with ``allow`` / ``record_success`` /
            ``record_failure`` — typically a
            :class:`~repro.resilience.breakers.CircuitBreaker`.
        deadline: Per-invocation time bound in sim-seconds (or an
            object with a ``timeout`` attribute); ``None`` disables it.
        fallback_runtime: Service time of the degraded path.
    """

    def __init__(self, platform: FaaSPlatform, breaker: Any = None,
                 deadline: Any = None,
                 fallback_runtime: float = 0.0) -> None:
        if deadline is not None:
            deadline = getattr(deadline, "timeout", deadline)
            if deadline <= 0:
                raise ValueError(f"deadline must be positive, got {deadline}")
        if fallback_runtime < 0:
            raise ValueError("fallback_runtime must be non-negative")
        self.platform = platform
        self.sim = platform.sim
        self.breaker = breaker
        self.deadline = deadline
        self.fallback_runtime = fallback_runtime
        self.successes = 0
        self.timeouts = 0
        self.rejections = 0
        self.fallbacks: list[Invocation] = []

    def invoke(self, name: str, runtime: float | None = None) -> Event:
        """Guarded invocation; the process yields an :class:`Invocation`.

        The result is either the platform's record or a fallback record
        with ``fallback=True`` (and ``timed_out=True`` when the primary
        call was cancelled at the deadline).
        """
        return self.sim.process(self._invoke(name, runtime),
                                name=f"guarded-{name}")

    def _invoke(self, name: str, runtime: float | None):
        if self.breaker is not None and not self.breaker.allow():
            self.rejections += 1
            if self.sim.observer is not None:
                self.sim.observer.metrics.counter("faas.rejections").inc()
            fallback = yield from self._fallback(name, timed_out=False)
            return fallback
        call = self.platform.invoke(name, runtime)
        if self.deadline is None:
            record = yield call
            self._record_success()
            return record
        expiry = self.sim.timeout(self.deadline)
        yield self.sim.any_of([call, expiry])
        if call.triggered and call.ok:
            self._record_success()
            return call.value
        # Deadline first: cancel the in-flight call and degrade.  The
        # cancelled process fails with Interrupt; pre-defuse it so the
        # unawaited failure does not crash the simulation.
        self.timeouts += 1
        if self.sim.observer is not None:
            self.sim.observer.metrics.counter("faas.timeouts").inc()
        if self.breaker is not None:
            self.breaker.record_failure()
        call.add_callback(lambda event: setattr(event, "defused", True))
        if call.is_alive:
            call.interrupt("deadline-exceeded")
        fallback = yield from self._fallback(name, timed_out=True)
        return fallback

    def _record_success(self) -> None:
        self.successes += 1
        if self.breaker is not None:
            self.breaker.record_success()

    def _fallback(self, name: str, timed_out: bool):
        record = Invocation(function=name, submit_time=self.sim.now,
                            fallback=True, timed_out=timed_out)
        if self.fallback_runtime > 0:
            yield self.sim.timeout(self.fallback_runtime)
        record.start_time = record.submit_time
        record.finish_time = self.sim.now
        record.result = record
        self.fallbacks.append(record)
        observer = self.sim.observer
        if observer is not None:
            observer.metrics.counter("faas.fallbacks").inc()
            observer.tracer.instant("fallback " + name, category="faas",
                                    attrs={"function": name,
                                           "timed_out": timed_out})
        return record

    def statistics(self) -> dict[str, float]:
        """Success / timeout / rejection counters and fallback share."""
        total = self.successes + self.timeouts + self.rejections
        return {
            "calls": float(total),
            "successes": float(self.successes),
            "timeouts": float(self.timeouts),
            "rejections": float(self.rejections),
            "fallback_fraction": (len(self.fallbacks) / total) if total else 0.0,
        }
