"""Component catalogs for Ecosystem Navigation (C9).

"For the user who wants to achieve some goal ... the presence of many
open-source components for own deployment and API-based hosted by
cloud operators raises the problem of selection and configuration."

A :class:`ServiceComponent` declares the APIs it *provides* and
*requires* (the explicit, narrow, well-defined interface case of
C9(i)) plus a non-functional profile; a :class:`ComponentCatalog`
indexes components for the comparison/selection/composition machinery
of :mod:`repro.navigation.selection`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["NFRProfile", "ServiceComponent", "ComponentCatalog"]


@dataclass(frozen=True)
class NFRProfile:
    """Measured non-functional profile of a component.

    Latency in ms (lower better), availability as a fraction (higher
    better), cost in dollars/month (lower better), throughput in
    requests/s (higher better).
    """

    latency_ms: float = 100.0
    availability: float = 0.99
    cost: float = 100.0
    throughput: float = 1000.0

    def __post_init__(self) -> None:
        if self.latency_ms < 0 or self.cost < 0 or self.throughput < 0:
            raise ValueError("latency, cost, throughput must be non-negative")
        if not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")

    def dominates(self, other: "NFRProfile") -> bool:
        """Pareto dominance: at least as good on all four dimensions,
        strictly better on at least one."""
        at_least = (self.latency_ms <= other.latency_ms
                    and self.availability >= other.availability
                    and self.cost <= other.cost
                    and self.throughput >= other.throughput)
        strictly = (self.latency_ms < other.latency_ms
                    or self.availability > other.availability
                    or self.cost < other.cost
                    or self.throughput > other.throughput)
        return at_least and strictly


@dataclass(frozen=True)
class ServiceComponent:
    """One catalog entry: APIs provided/required plus an NFR profile."""

    name: str
    provides: frozenset[str]
    requires: frozenset[str] = frozenset()
    profile: NFRProfile = NFRProfile()
    vendor: str = "community"

    def __post_init__(self) -> None:
        if not self.provides:
            raise ValueError(f"component {self.name!r} provides nothing")
        overlap = self.provides & self.requires
        if overlap:
            raise ValueError(
                f"component {self.name!r} both provides and requires "
                f"{sorted(overlap)}")

    def offers(self, api: str) -> bool:
        """Whether the component provides ``api``."""
        return api in self.provides


class ComponentCatalog:
    """An indexed collection of service components."""

    def __init__(self) -> None:
        self._components: dict[str, ServiceComponent] = {}
        self._by_api: dict[str, list[str]] = {}

    def add(self, component: ServiceComponent) -> ServiceComponent:
        """Register a component; names must be unique."""
        if component.name in self._components:
            raise ValueError(f"duplicate component {component.name!r}")
        self._components[component.name] = component
        for api in component.provides:
            self._by_api.setdefault(api, []).append(component.name)
        return component

    def get(self, name: str) -> ServiceComponent:
        """Look up a component by name."""
        if name not in self._components:
            raise KeyError(name)
        return self._components[name]

    def __iter__(self) -> Iterator[ServiceComponent]:
        return iter(self._components.values())

    def __len__(self) -> int:
        return len(self._components)

    def providers_of(self, api: str) -> list[ServiceComponent]:
        """All components providing ``api`` — the alternatives a user
        must compare (C9)."""
        return [self._components[name]
                for name in self._by_api.get(api, [])]

    def apis(self) -> set[str]:
        """All APIs provided by some component."""
        return set(self._by_api)
