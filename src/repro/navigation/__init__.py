"""Ecosystem Navigation substrate (S14): the C9 challenge.

Component catalogs with API and NFR metadata, comparison/selection in
satisficing and optimizing modes, transitive composition, and drop-in
replacement search.
"""

from .catalog import ComponentCatalog, NFRProfile, ServiceComponent
from .selection import (
    CompositionError,
    Requirements,
    compare,
    compose,
    find_replacements,
    select_optimizing,
    select_satisficing,
)

__all__ = [
    "NFRProfile",
    "ServiceComponent",
    "ComponentCatalog",
    "Requirements",
    "compare",
    "select_satisficing",
    "select_optimizing",
    "compose",
    "find_replacements",
    "CompositionError",
]
