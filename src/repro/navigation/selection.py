"""Comparison, selection, composition, replacement (C9).

The Ecosystem Navigation challenge: "solving problems of comparison,
selection, composition, replacement, and adaptation of components (and
assemblies) on behalf of the user, subject to custom requirements".

Two decision modes implement the paper's §3.5 dichotomy:

- *satisficing* (Simon): the first component meeting every requirement;
- *optimizing*: the best weighted-utility component, searched
  exhaustively.

Composition resolves required APIs transitively against the catalog
(the API-Harmony-style recommendation of [124]); replacement finds
drop-in substitutes whose profile is at least as good.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .catalog import ComponentCatalog, NFRProfile, ServiceComponent

__all__ = ["Requirements", "compare", "select_satisficing",
           "select_optimizing", "compose", "find_replacements",
           "CompositionError"]


class CompositionError(Exception):
    """Raised when no assembly can satisfy a composition request."""


@dataclass(frozen=True)
class Requirements:
    """User requirements over the four NFR dimensions.

    ``None`` means "don't care".  Weights steer the optimizing mode.
    """

    max_latency_ms: float | None = None
    min_availability: float | None = None
    max_cost: float | None = None
    min_throughput: float | None = None
    weights: Mapping[str, float] | None = None

    def satisfied_by(self, profile: NFRProfile) -> bool:
        """Satisficing test of a profile against the requirements."""
        if (self.max_latency_ms is not None
                and profile.latency_ms > self.max_latency_ms):
            return False
        if (self.min_availability is not None
                and profile.availability < self.min_availability):
            return False
        if self.max_cost is not None and profile.cost > self.max_cost:
            return False
        if (self.min_throughput is not None
                and profile.throughput < self.min_throughput):
            return False
        return True

    def utility(self, profile: NFRProfile) -> float:
        """Weighted utility of a profile (higher is better).

        Each dimension is normalized to (0, 1] via ``x / (x + scale)``
        shapes so utilities are comparable across dimensions.
        """
        weights = dict(self.weights or {"latency": 1.0, "availability": 1.0,
                                        "cost": 1.0, "throughput": 1.0})
        latency_util = 1.0 / (1.0 + profile.latency_ms / 100.0)
        cost_util = 1.0 / (1.0 + profile.cost / 100.0)
        throughput_util = profile.throughput / (profile.throughput + 1000.0)
        scores = {
            "latency": latency_util,
            "availability": profile.availability,
            "cost": cost_util,
            "throughput": throughput_util,
        }
        total_weight = sum(weights.values())
        if total_weight <= 0:
            raise ValueError("weights must sum to a positive value")
        return sum(weights.get(k, 0.0) * v for k, v in scores.items()
                   ) / total_weight


def compare(candidates: Sequence[ServiceComponent],
            requirements: Requirements) -> list[tuple[ServiceComponent,
                                                      float, bool]]:
    """Rank candidates: (component, utility, meets-requirements) rows,
    best utility first — the 'comparison' task of C9."""
    rows = [(c, requirements.utility(c.profile),
             requirements.satisfied_by(c.profile)) for c in candidates]
    return sorted(rows, key=lambda row: -row[1])


def select_satisficing(catalog: ComponentCatalog, api: str,
                       requirements: Requirements,
                       ) -> ServiceComponent | None:
    """First provider of ``api`` meeting all requirements (Simon's
    satisficing, §3.5), or None."""
    for component in catalog.providers_of(api):
        if requirements.satisfied_by(component.profile):
            return component
    return None


def select_optimizing(catalog: ComponentCatalog, api: str,
                      requirements: Requirements,
                      require_feasible: bool = True,
                      ) -> ServiceComponent | None:
    """Best-utility provider of ``api``; exhaustive search.

    With ``require_feasible`` only components meeting the requirements
    compete; otherwise the best-utility component wins regardless.
    """
    candidates = catalog.providers_of(api)
    if require_feasible:
        candidates = [c for c in candidates
                      if requirements.satisfied_by(c.profile)]
    if not candidates:
        return None
    return max(candidates,
               key=lambda c: (requirements.utility(c.profile), c.name))


def compose(catalog: ComponentCatalog, target_api: str,
            requirements: Requirements,
            max_depth: int = 10) -> list[ServiceComponent]:
    """Resolve a full assembly providing ``target_api``.

    Greedily selects a satisficing provider for the target API, then
    transitively for every required API, deduplicating shared
    dependencies.  Raises :class:`CompositionError` when some API has
    no feasible provider or the dependency chain is too deep (cycles).
    """
    assembly: dict[str, ServiceComponent] = {}
    satisfied_apis: set[str] = set()

    def resolve(api: str, depth: int) -> None:
        if api in satisfied_apis:
            return
        if depth > max_depth:
            raise CompositionError(
                f"dependency chain for {api!r} exceeds depth {max_depth}")
        component = select_satisficing(catalog, api, requirements)
        if component is None:
            raise CompositionError(
                f"no feasible provider of {api!r} under the requirements")
        satisfied_apis.update(component.provides)
        if component.name not in assembly:
            assembly[component.name] = component
            for required in sorted(component.requires):
                resolve(required, depth + 1)

    resolve(target_api, 0)
    return list(assembly.values())


def find_replacements(catalog: ComponentCatalog,
                      incumbent: ServiceComponent,
                      ) -> list[ServiceComponent]:
    """Drop-in substitutes for ``incumbent`` (the 'replacement' task).

    A valid replacement provides every API the incumbent provides,
    requires no APIs beyond the incumbent's, and its profile is not
    Pareto-dominated by the incumbent's.
    """
    replacements = []
    for candidate in catalog:
        if candidate.name == incumbent.name:
            continue
        if not incumbent.provides <= candidate.provides:
            continue
        if not candidate.requires <= incumbent.requires:
            continue
        if incumbent.profile.dominates(candidate.profile):
            continue
        replacements.append(candidate)
    return sorted(replacements, key=lambda c: c.name)
