"""Ecosystem evolution dynamics: Darwinian vs. non-Darwinian (§3.2).

The paper: "ecosystem evolution can be at times *Darwinian* ...
incremental, selecting and varying closely related components ... but
also *non-Darwinian* ... radically different and abrupt, combining
seemingly unrelated technology ... with seemingly random events —
which ecosystem adopted the technology first ... and other soft
lock-in elements — contributing to the propagation of the technology."

:class:`EvolutionModel` simulates a population of technologies
competing for market share:

- *Darwinian* steps vary existing technologies incrementally and let
  adoption track quality (replicator dynamics).
- *Non-Darwinian* steps occasionally recombine unrelated technologies
  into radical newcomers, and adoption is weighted by *installed base*
  (soft lock-in), so inferior-but-early technologies can win — the
  model's measurable signature.

The §3.2 mechanism list (combine, remove, replace, bridge, add) is
exposed as explicit operations on the population.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

__all__ = ["Technology", "EvolutionEvent", "EvolutionTrace",
           "EvolutionModel"]

_tech_ids = itertools.count(1)


@dataclass
class Technology:
    """One competing technology: intrinsic quality and market share."""

    name: str
    quality: float
    share: float
    generation_born: int = 0
    radical: bool = False
    tech_id: int = field(default_factory=lambda: next(_tech_ids))

    def __post_init__(self) -> None:
        if self.quality < 0:
            raise ValueError("quality must be non-negative")
        if not 0.0 <= self.share <= 1.0:
            raise ValueError("share must be in [0, 1]")


@dataclass(frozen=True)
class EvolutionEvent:
    """A notable event in an evolution run."""

    generation: int
    kind: str  # "combine", "remove", "replace", "bridge", "add", "lock-in"
    description: str


@dataclass
class EvolutionTrace:
    """Recorded outcome of an evolution run."""

    generations: int
    mean_quality: list[float] = field(default_factory=list)
    best_quality: list[float] = field(default_factory=list)
    concentration: list[float] = field(default_factory=list)
    events: list[EvolutionEvent] = field(default_factory=list)

    @property
    def lock_in_events(self) -> list[EvolutionEvent]:
        """Generations where an inferior technology led the market."""
        return [e for e in self.events if e.kind == "lock-in"]


class EvolutionModel:
    """Replicator dynamics with optional soft lock-in and radical jumps.

    Args:
        n_initial: Starting population size.
        radical_probability: Per-generation chance of a non-Darwinian
            recombination event (0 gives a purely Darwinian run).
        lock_in_strength: Exponent on installed base in the adoption
            weight ``share^lock_in * quality``; 0 disables lock-in.
        variation: Std-dev of Darwinian quality variation.
        extinction_share: Technologies below this share are removed.
    """

    def __init__(self, n_initial: int = 6,
                 radical_probability: float = 0.0,
                 lock_in_strength: float = 0.0,
                 variation: float = 0.05,
                 extinction_share: float = 0.01,
                 rng: random.Random | None = None) -> None:
        if n_initial < 2:
            raise ValueError("n_initial must be >= 2")
        if not 0.0 <= radical_probability <= 1.0:
            raise ValueError("radical_probability must be in [0, 1]")
        if lock_in_strength < 0:
            raise ValueError("lock_in_strength must be non-negative")
        if variation < 0:
            raise ValueError("variation must be non-negative")
        if not 0.0 <= extinction_share < 1.0:
            raise ValueError("extinction_share must be in [0, 1)")
        self.radical_probability = radical_probability
        self.lock_in_strength = lock_in_strength
        self.variation = variation
        self.extinction_share = extinction_share
        self.rng = rng or random.Random(0)
        self.generation = 0
        self.population: list[Technology] = [
            Technology(name=f"tech-{i}",
                       quality=self.rng.uniform(0.5, 1.0),
                       share=1.0 / n_initial)
            for i in range(n_initial)]

    # ------------------------------------------------------------------
    # §3.2 mechanisms as explicit operations
    # ------------------------------------------------------------------
    def combine(self, a: Technology, b: Technology,
                radical: bool = False) -> Technology:
        """Combine two technologies into a larger assembly."""
        if radical:
            quality = self.rng.uniform(0.3, 2.0)  # abrupt, unpredictable
        else:
            quality = max(a.quality, b.quality) * self.rng.uniform(0.95,
                                                                   1.15)
        child = Technology(name=f"{a.name}+{b.name}",
                           quality=quality, share=0.02,
                           generation_born=self.generation,
                           radical=radical)
        self.population.append(child)
        self._normalize()
        return child

    def remove(self, technology: Technology) -> None:
        """Remove a redundant or useless component."""
        if len(self.population) <= 1:
            raise ValueError("cannot empty the population")
        self.population.remove(technology)
        self._normalize()

    def replace(self, old: Technology, new: Technology) -> None:
        """Replace a component with a more advanced one."""
        if old not in self.population:
            raise ValueError(f"{old.name} is not in the population")
        new.share = old.share
        index = self.population.index(old)
        self.population[index] = new

    def bridge(self, a: Technology, b: Technology) -> None:
        """Adapt end-points so two technologies interoperate.

        Bridging lifts both qualities slightly — each gains the other's
        users' use cases.
        """
        boost = 1.0 + 0.05 * self.rng.random()
        a.quality *= boost
        b.quality *= boost

    def add(self, name: str, quality: float) -> Technology:
        """Add a new component addressing new functions."""
        technology = Technology(name=name, quality=quality, share=0.02,
                                generation_born=self.generation)
        self.population.append(technology)
        self._normalize()
        return technology

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def _normalize(self) -> None:
        total = sum(t.share for t in self.population)
        if total <= 0:
            share = 1.0 / len(self.population)
            for technology in self.population:
                technology.share = share
            return
        for technology in self.population:
            technology.share /= total

    def _adoption_weight(self, technology: Technology) -> float:
        base = max(technology.share, 1e-6)
        return (base ** self.lock_in_strength) * technology.quality

    def step(self, trace: EvolutionTrace) -> None:
        """One generation: variation, possible radical jump, adoption."""
        self.generation += 1
        # Darwinian variation of every incumbent.
        for technology in self.population:
            technology.quality = max(
                0.01, technology.quality
                + self.rng.gauss(0.0, self.variation))
        # Non-Darwinian recombination.
        if (len(self.population) >= 2
                and self.rng.random() < self.radical_probability):
            a, b = self.rng.sample(self.population, 2)
            child = self.combine(a, b, radical=True)
            trace.events.append(EvolutionEvent(
                self.generation, "combine",
                f"radical recombination created {child.name} "
                f"(quality {child.quality:.2f})"))
        # Adoption: replicator dynamics over the (lock-in-weighted) merit.
        weights = [self._adoption_weight(t) for t in self.population]
        total = sum(weights)
        for technology, weight in zip(self.population, weights):
            technology.share = weight / total
        # Lock-in signature: the market leader is not the best tech.
        # Checked *before* extinction — under strong lock-in the better
        # newcomer is typically starved out within a generation, and
        # that starvation IS the lock-in phenomenon to record.
        leader = max(self.population, key=lambda t: t.share)
        best = max(self.population, key=lambda t: t.quality)
        if leader is not best and leader.quality < 0.9 * best.quality:
            trace.events.append(EvolutionEvent(
                self.generation, "lock-in",
                f"{leader.name} leads the market despite "
                f"{best.name} being better"))
        # Extinction of marginal technologies.
        for technology in list(self.population):
            if (technology.share < self.extinction_share
                    and len(self.population) > 1):
                self.population.remove(technology)
                trace.events.append(EvolutionEvent(
                    self.generation, "remove",
                    f"{technology.name} went extinct"))
        self._normalize()

    def run(self, generations: int = 50) -> EvolutionTrace:
        """Run the model; returns the recorded trace."""
        if generations < 1:
            raise ValueError("generations must be >= 1")
        trace = EvolutionTrace(generations=generations)
        for _ in range(generations):
            self.step(trace)
            qualities = [t.quality for t in self.population]
            trace.mean_quality.append(sum(qualities) / len(qualities))
            trace.best_quality.append(max(qualities))
            trace.concentration.append(
                sum(t.share ** 2 for t in self.population))
        return trace
