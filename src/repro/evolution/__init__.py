"""Evolution substrate (S16): Figure 2 and the §3.2 dynamics.

The technology-lineage registry behind Figure 2 and a replicator-
dynamics model of Darwinian vs. non-Darwinian ecosystem evolution with
soft lock-in.
"""

from .model import EvolutionEvent, EvolutionModel, EvolutionTrace, Technology
from .timeline import TIMELINE, TechnologyEra, TechnologyTimeline

__all__ = [
    "TechnologyEra",
    "TIMELINE",
    "TechnologyTimeline",
    "Technology",
    "EvolutionEvent",
    "EvolutionTrace",
    "EvolutionModel",
]
