"""The technology lineage leading to MCS (paper Figure 2).

Figure 2 traces "the main technologies leading to MCS" across the
three contributing fields — Distributed Systems, Software Engineering,
and Performance Engineering — converging on MCS as "a response to the
ecosystems crisis of late-2010s".  The registry regenerates the figure
and answers lineage queries (ancestors, era slices, convergent
inputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["TechnologyEra", "TIMELINE", "TechnologyTimeline"]


@dataclass(frozen=True)
class TechnologyEra:
    """One technology node of Figure 2."""

    name: str
    decade: str
    field: str
    predecessors: tuple[str, ...] = ()


#: Figure 2's lineage, one tuple per technology node.
TIMELINE: tuple[TechnologyEra, ...] = (
    # Distributed Systems lineage.
    TechnologyEra("Computer Systems", "1960s", "Distributed Systems"),
    TechnologyEra("Distributed Systems", "1970s", "Distributed Systems",
                  ("Computer Systems",)),
    TechnologyEra("Cluster Computing", "1990s", "Distributed Systems",
                  ("Distributed Systems",)),
    TechnologyEra("Grid Computing", "1990s", "Distributed Systems",
                  ("Cluster Computing",)),
    TechnologyEra("Peer-to-Peer Computing", "2000s", "Distributed Systems",
                  ("Distributed Systems",)),
    TechnologyEra("Cloud Computing", "2000s", "Distributed Systems",
                  ("Grid Computing", "Cluster Computing")),
    TechnologyEra("Edge-centric Computing", "2010s", "Distributed Systems",
                  ("Cloud Computing", "Peer-to-Peer Computing")),
    # Software Engineering lineage.
    TechnologyEra("Structured Programming", "1970s", "Software Engineering"),
    TechnologyEra("Object-Oriented Design", "1980s", "Software Engineering",
                  ("Structured Programming",)),
    TechnologyEra("Agile Processes", "2000s", "Software Engineering",
                  ("Object-Oriented Design",)),
    TechnologyEra("DevOps", "2010s", "Software Engineering",
                  ("Agile Processes",)),
    # Performance Engineering lineage.
    TechnologyEra("Queueing Theory", "1960s", "Performance Engineering"),
    TechnologyEra("Benchmarking", "1980s", "Performance Engineering",
                  ("Queueing Theory",)),
    TechnologyEra("Cloud Metrics & Elasticity", "2010s",
                  "Performance Engineering", ("Benchmarking",)),
    # The convergence point.
    TechnologyEra("Massivizing Computer Systems", "late-2010s", "MCS",
                  ("Edge-centric Computing", "Cloud Computing", "DevOps",
                   "Cloud Metrics & Elasticity")),
)


class TechnologyTimeline:
    """Queryable regeneration of Figure 2."""

    def __init__(self, entries: tuple[TechnologyEra, ...] = TIMELINE) -> None:
        names = [e.name for e in entries]
        if len(set(names)) != len(names):
            raise ValueError("duplicate technology names")
        self._by_name = {e.name: e for e in entries}
        for entry in entries:
            for predecessor in entry.predecessors:
                if predecessor not in self._by_name:
                    raise ValueError(
                        f"{entry.name!r} references unknown predecessor "
                        f"{predecessor!r}")
        self._entries = entries

    def __iter__(self) -> Iterator[TechnologyEra]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str) -> TechnologyEra:
        """Look up one technology node."""
        if name not in self._by_name:
            raise KeyError(name)
        return self._by_name[name]

    def fields(self) -> set[str]:
        """The contributing fields of Figure 2."""
        return {e.field for e in self._entries}

    def by_field(self, field: str) -> list[TechnologyEra]:
        """One field's lineage, in timeline order."""
        return [e for e in self._entries if e.field == field]

    def ancestors(self, name: str) -> set[str]:
        """All transitive predecessors of a technology."""
        result: set[str] = set()
        frontier = list(self.get(name).predecessors)
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self.get(current).predecessors)
        return result

    def mcs_inputs(self) -> set[str]:
        """The fields that converge into MCS (the figure's punchline)."""
        mcs = self.get("Massivizing Computer Systems")
        return {self.get(p).field for p in mcs.predecessors}

    def table_rows(self) -> list[tuple[str, str, str]]:
        """(decade, field, technology) rows regenerating Figure 2."""
        return [(e.decade, e.field, e.name) for e in self._entries]
