"""Plain-text table and series rendering (C11, C13).

C13 asks for "support for showing and explaining the operation of the
ecosystem to all stakeholders"; the benchmark harnesses use these
renderers to print each reproduced table and figure in the paper's own
row structure.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "render_kv"]


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with auto-sized columns."""
    if not headers:
        raise ValueError("headers must be non-empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}")
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(header), *(len(row[i]) for row in cells))
              if cells else len(header)
              for i, header in enumerate(headers)]
    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in cells)
    return "\n".join(lines)


def render_series(points: Sequence[tuple[float, float]], title: str = "",
                  width: int = 40) -> str:
    """Render an (x, y) series as a horizontal ASCII bar chart."""
    if not points:
        raise ValueError("series must be non-empty")
    if width < 1:
        raise ValueError("width must be >= 1")
    max_y = max(abs(y) for _, y in points) or 1.0
    lines = [title] if title else []
    for x, y in points:
        bar = "#" * max(0, round(abs(y) / max_y * width))
        lines.append(f"{_fmt(x):>10} | {bar} {_fmt(y)}")
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], title: str = "") -> str:
    """Render key-value pairs, aligned."""
    if not pairs:
        raise ValueError("pairs must be non-empty")
    key_width = max(len(key) for key, _ in pairs)
    lines = [title] if title else []
    lines.extend(f"{key.ljust(key_width)} : {_fmt(value)}"
                 for key, value in pairs)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
