"""Operational transparency reports for all stakeholders (C13).

"We envision that operators of ecosystems will have a duty, possibly
legislated, to continuously and transparently inform stakeholders on a
variety of operational properties, including risk (e.g., frequency of
outages, impact of security breaches, possibility of data loss), cost
(e.g., financial, energy), and legal aspects."

:class:`TransparencyReporter` collects those properties from the
running substrates and renders a per-stakeholder view: clients see
service quality and what they pay, operators see efficiency and risk,
regulators see compliance-relevant aggregates.  P6's teachability
requirement ("individuals should be able to read their own consumption
meters") is the client view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .tables import render_kv

__all__ = ["OperationalSnapshot", "TransparencyReporter", "STAKEHOLDERS"]

#: The stakeholder roles of C13 / §3.1.
STAKEHOLDERS = ("client", "operator", "regulator")


@dataclass(frozen=True)
class OperationalSnapshot:
    """One reporting period's operational facts.

    All fields are plain aggregates so any substrate can produce them:
    outages and victim counts from a failure injector, energy from the
    datacenter, cost from a provisioner, SLA fraction from an SLA
    evaluation, latency/completion from a scheduler.
    """

    period: str
    completed_work: int
    mean_latency: float
    sla_fraction_met: float
    outages: int
    tasks_lost_to_failures: int
    cost_dollars: float
    energy_kilojoules: float
    mean_utilization: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.sla_fraction_met <= 1.0:
            raise ValueError("sla_fraction_met must be in [0, 1]")
        if not 0.0 <= self.mean_utilization <= 1.0:
            raise ValueError("mean_utilization must be in [0, 1]")
        for name in ("completed_work", "outages",
                     "tasks_lost_to_failures"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class TransparencyReporter:
    """Accumulates snapshots and renders per-stakeholder views."""

    def __init__(self, service_name: str) -> None:
        self.service_name = service_name
        self._snapshots: list[OperationalSnapshot] = []

    def publish(self, snapshot: OperationalSnapshot) -> None:
        """Record one reporting period (append-only, audit-friendly)."""
        self._snapshots.append(snapshot)

    @property
    def snapshots(self) -> Sequence[OperationalSnapshot]:
        """All published periods, oldest first."""
        return tuple(self._snapshots)

    def _latest(self) -> OperationalSnapshot:
        if not self._snapshots:
            raise RuntimeError("no snapshots published yet")
        return self._snapshots[-1]

    # ------------------------------------------------------------------
    # Stakeholder views
    # ------------------------------------------------------------------
    def view(self, stakeholder: str) -> dict[str, object]:
        """The facts one stakeholder is entitled to (and can read)."""
        snapshot = self._latest()
        if stakeholder == "client":
            return {
                "service": self.service_name,
                "period": snapshot.period,
                "your work completed": snapshot.completed_work,
                "mean latency [s]": round(snapshot.mean_latency, 3),
                "SLA objectives met": f"{snapshot.sla_fraction_met:.0%}",
                "billed [$]": round(snapshot.cost_dollars, 2),
            }
        if stakeholder == "operator":
            return {
                "service": self.service_name,
                "period": snapshot.period,
                "mean utilization": round(snapshot.mean_utilization, 3),
                "energy [kJ]": round(snapshot.energy_kilojoules, 1),
                "outages": snapshot.outages,
                "tasks lost to failures": snapshot.tasks_lost_to_failures,
                "cost [$]": round(snapshot.cost_dollars, 2),
            }
        if stakeholder == "regulator":
            history = self._snapshots
            return {
                "service": self.service_name,
                "periods reported": len(history),
                "total outages": sum(s.outages for s in history),
                "worst SLA period": f"{min(s.sla_fraction_met for s in history):.0%}",
                "total energy [kJ]": round(sum(s.energy_kilojoules
                                               for s in history), 1),
                "continuous reporting": len(history) >= 1,
            }
        raise KeyError(f"unknown stakeholder {stakeholder!r}; "
                       f"known: {STAKEHOLDERS}")

    def render(self, stakeholder: str) -> str:
        """The view rendered as the plain text a human can read (P6)."""
        view = self.view(stakeholder)
        return render_kv(list(view.items()),
                         title=f"{self.service_name} — "
                               f"{stakeholder} transparency report")

    # ------------------------------------------------------------------
    # Risk indicators (C13's "frequency of outages")
    # ------------------------------------------------------------------
    def outage_frequency(self) -> float:
        """Outages per reported period."""
        if not self._snapshots:
            raise RuntimeError("no snapshots published yet")
        return sum(s.outages for s in self._snapshots) / len(self._snapshots)

    def risk_trend(self) -> str:
        """'improving' / 'stable' / 'degrading' over the last 3 periods."""
        if len(self._snapshots) < 2:
            return "stable"
        recent = [s.outages + s.tasks_lost_to_failures
                  for s in self._snapshots[-3:]]
        if recent[-1] < recent[0]:
            return "improving"
        if recent[-1] > recent[0]:
            return "degrading"
        return "stable"
