"""Rendering observability data for stakeholders (C13).

The observability layer (:mod:`repro.observability`) produces JSON-able
snapshots; operators mostly want them as readable tables.  These
renderers turn a :class:`~repro.observability.metrics.MetricsRegistry`
snapshot and a :class:`~repro.observability.profiling.SubsystemProfiler`
report into the same plain-text table style the benchmark harnesses
use, so a chaos run, a scheduler study, and a live dashboard all read
alike.
"""

from __future__ import annotations

from .tables import render_table

__all__ = ["render_metrics", "render_profile", "render_alerts",
           "render_critical_path", "render_fleet_report",
           "render_slo_report"]


def render_metrics(snapshot: dict, title: str = "Metrics") -> str:
    """Render a registry snapshot as one table.

    ``snapshot`` is the dict returned by
    :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`.
    Counters and gauges show their value; histograms show count, mean,
    and the p50/p95/p99 bucket upper bounds (taken from the snapshot's
    own percentile keys) so latency tails are visible without raw
    samples.
    """
    rows: list[tuple] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append((name, "counter", _short(value)))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append((name, "gauge", _short(value)))
    for name, entry in snapshot.get("histograms", {}).items():
        count = entry["count"]
        mean = entry["sum"] / count if count else 0.0
        p50 = entry.get("p50", _bucket_quantile(entry, 0.50))
        p95 = entry.get("p95", _bucket_quantile(entry, 0.95))
        p99 = entry.get("p99", _bucket_quantile(entry, 0.99))
        rows.append((name, "histogram",
                     f"n={count} mean={_short(mean)} "
                     f"p50<={_short(p50)} p95<={_short(p95)} "
                     f"p99<={_short(p99)}"))
    rows.sort(key=lambda row: row[0])
    if not rows:
        rows.append(("(no instruments registered)", "-", "-"))
    return render_table(["Metric", "Kind", "Value"], rows, title=title)


def render_alerts(log, title: str = "Alert log") -> str:
    """Render an :class:`~repro.observability.slo.AlertLog` as one table.

    Accepts the log itself or any iterable of
    :class:`~repro.observability.slo.AlertEvent`; each fire/resolve
    transition becomes a row with its sim-time and the short/long
    burn rates at the transition.
    """
    rows = [(f"{event.time:.1f}", event.slo, event.rule, event.kind,
             f"{event.burn_short:.2f}x", f"{event.burn_long:.2f}x")
            for event in log]
    if not rows:
        rows.append(("-", "(no alerts)", "-", "-", "-", "-"))
    return render_table(
        ["Time [s]", "SLO", "Rule", "Event", "Burn (short)", "Burn (long)"],
        rows, title=title)


def render_critical_path(segments, title: str = "Critical path") -> str:
    """Render :func:`~repro.observability.traceanalysis.critical_path`.

    One row per :class:`~repro.observability.traceanalysis.PathSegment`
    with its interval, duration, and share of the whole path — the
    ``(wait)`` rows are where capacity, not faster tasks, would shorten
    the run.
    """
    segments = list(segments)
    total = sum(segment.duration for segment in segments) or 1.0
    rows = [(segment.name, segment.kind, f"{segment.start:.1f}",
             f"{segment.end:.1f}", _short(segment.duration),
             f"{segment.duration / total:.1%}")
            for segment in segments]
    if not rows:
        rows.append(("(empty path)", "-", "-", "-", "-", "-"))
    return render_table(
        ["Segment", "Kind", "Start [s]", "End [s]", "Duration [s]", "Share"],
        rows, title=title)


def render_slo_report(report: dict, title: str = "SLO report") -> str:
    """Render :meth:`~repro.observability.slo.SLOEngine.report`.

    One row per objective: target vs achieved compliance, the error
    budget consumed (``> 1`` means blown), alert counts, and the
    verdict.
    """
    rows = [(name, f"{entry['target']:.3f}", f"{entry['compliance']:.4f}",
             f"{entry['budget_consumed']:.2f}x",
             f"{int(entry['alerts_fired'])}/{int(entry['alerts_active'])}",
             "ok" if entry["ok"] else "VIOLATED")
            for name, entry in report.items()]
    if not rows:
        rows.append(("(no objectives)", "-", "-", "-", "-", "-"))
    return render_table(
        ["SLO", "Target", "Compliance", "Budget used",
         "Alerts fired/active", "Verdict"],
        rows, title=title)


def render_profile(report: dict, wall: dict | None = None,
                   title: str = "Subsystem profile") -> str:
    """Render a profiler report as one table.

    ``report`` is
    :meth:`~repro.observability.profiling.SubsystemProfiler.report`
    (deterministic: events and simulated time); pass the matching
    :meth:`~repro.observability.profiling.SubsystemProfiler.wall_report`
    as ``wall`` to add the non-deterministic wall-clock column.
    """
    total_events = sum(entry["events"] for entry in report.values()) or 1.0
    headers = ["Subsystem", "Events", "Share", "Sim time [s]"]
    if wall is not None:
        headers.append("Wall time [ms]")
    rows = []
    for name in sorted(report):
        entry = report[name]
        row = [name, f"{entry['events']:.0f}",
               f"{entry['events'] / total_events:.1%}",
               _short(entry["sim_time"])]
        if wall is not None:
            row.append(f"{wall.get(name, 0.0) * 1e3:.2f}")
        rows.append(tuple(row))
    if not rows:
        rows.append(tuple(["(no events profiled)"] + ["-"] * (len(headers) - 1)))
    return render_table(headers, rows, title=title)


def render_fleet_report(fleet: dict,
                        title: str = "Fleet telemetry") -> str:
    """Render a merged fleet view as the operator's stacked tables.

    ``fleet`` is the ``telemetry-fleet/v1`` dict produced by
    :func:`~repro.observability.federation.merge_snapshots` (or found
    at :attr:`~repro.scenario.sweep.SweepReport.telemetry`): the run
    roster, the merged metrics, the summed per-subsystem profile, and
    the span census per causal run id.
    """
    from ..observability.federation import fleet_digest
    runs = fleet.get("runs", [])
    sections = [
        f"{title}: {len(runs)} run(s), digest {fleet_digest(fleet)}",
        "Runs: " + (", ".join(runs) if runs else "(none)"),
        render_metrics(fleet.get("metrics", {}),
                       title="Merged metrics (fleet)"),
    ]
    profile = fleet.get("profile", {})
    if profile:
        sections.append(render_profile(profile,
                                       title="Merged subsystem profile"))
    spans = fleet.get("spans", {})
    rows = [(run_id, str(sum(census.values())),
             ", ".join(f"{kind}={count}"
                       for kind, count in sorted(census.items())) or "-")
            for run_id, census in spans.get("by_run", {}).items()]
    if rows:
        rows.append(("(fleet total)", str(spans.get("total", 0)),
                     ", ".join(f"{kind}={count}" for kind, count
                               in sorted(spans.get("census", {}).items()))
                     or "-"))
        sections.append(render_table(
            ["Run", "Spans", "Census"], rows,
            title="Span census by causal run id"))
    return "\n\n".join(sections)


def _bucket_quantile(entry: dict, q: float) -> float:
    """Quantile bucket upper bound from a histogram snapshot entry."""
    count = entry["count"]
    if count == 0:
        return 0.0
    target = q * count
    cumulative = 0
    boundaries = entry["boundaries"]
    for index, bucket_count in enumerate(entry["counts"]):
        cumulative += bucket_count
        if cumulative >= target and bucket_count:
            if index < len(boundaries):
                return boundaries[index]
            return entry.get("max", boundaries[-1])
    return entry.get("max", boundaries[-1])


def _short(value: float) -> str:
    """Compact numeric formatting shared by both tables."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if abs(value) >= 1000 or 0 < abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.3f}".rstrip("0").rstrip(".")
