"""Reporting substrate (S17): plain-text rendering of results."""

from .observability import (
    render_alerts,
    render_critical_path,
    render_fleet_report,
    render_metrics,
    render_profile,
    render_slo_report,
)
from .tables import render_kv, render_series, render_table
from .transparency import (
    STAKEHOLDERS,
    OperationalSnapshot,
    TransparencyReporter,
)

__all__ = [
    "render_table",
    "render_series",
    "render_kv",
    "render_metrics",
    "render_profile",
    "render_alerts",
    "render_critical_path",
    "render_fleet_report",
    "render_slo_report",
    "OperationalSnapshot",
    "TransparencyReporter",
    "STAKEHOLDERS",
]
