"""Reporting substrate (S17): plain-text rendering of results."""

from .observability import render_metrics, render_profile
from .tables import render_kv, render_series, render_table
from .transparency import (
    STAKEHOLDERS,
    OperationalSnapshot,
    TransparencyReporter,
)

__all__ = [
    "render_table",
    "render_series",
    "render_kv",
    "render_metrics",
    "render_profile",
    "OperationalSnapshot",
    "TransparencyReporter",
    "STAKEHOLDERS",
]
