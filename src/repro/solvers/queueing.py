"""Queueing-theory models: M/M/1, M/M/c, Little's Law (§3.5).

"More complex models, as the ones defined by queuing theory led to
seminal results such as Little's Law, widely used in distributed
systems, networking and scheduling."

These closed forms are the *stochastic performance models* of C6
approach class (vi), and the analytical baselines the simulation-based
experiments validate against (C15's model-validation obligation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MM1", "MMc", "littles_law_holds"]


@dataclass(frozen=True)
class MM1:
    """An M/M/1 queue: Poisson arrivals, exponential service, 1 server."""

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.service_rate <= 0:
            raise ValueError("rates must be positive")
        if self.arrival_rate >= self.service_rate:
            raise ValueError("unstable queue: arrival rate >= service rate")

    @property
    def utilization(self) -> float:
        """Server utilization rho = lambda / mu."""
        return self.arrival_rate / self.service_rate

    @property
    def mean_jobs_in_system(self) -> float:
        """L = rho / (1 - rho)."""
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def mean_response_time(self) -> float:
        """W = 1 / (mu - lambda)."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def mean_waiting_time(self) -> float:
        """Wq = W - 1/mu."""
        return self.mean_response_time - 1.0 / self.service_rate

    @property
    def mean_queue_length(self) -> float:
        """Lq = lambda * Wq (Little's law on the queue)."""
        return self.arrival_rate * self.mean_waiting_time


@dataclass(frozen=True)
class MMc:
    """An M/M/c queue with ``servers`` parallel servers (Erlang C)."""

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0 or self.service_rate <= 0:
            raise ValueError("rates must be positive")
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.arrival_rate >= self.servers * self.service_rate:
            raise ValueError("unstable queue: offered load >= capacity")

    @property
    def offered_load(self) -> float:
        """a = lambda / mu, in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """Per-server utilization rho = a / c."""
        return self.offered_load / self.servers

    @property
    def erlang_c(self) -> float:
        """Probability an arrival must wait (Erlang C formula)."""
        a, c = self.offered_load, self.servers
        rho = self.utilization
        summation = sum(a ** k / math.factorial(k) for k in range(c))
        tail = a ** c / (math.factorial(c) * (1.0 - rho))
        return tail / (summation + tail)

    @property
    def mean_waiting_time(self) -> float:
        """Wq = C(c, a) / (c mu - lambda)."""
        return self.erlang_c / (self.servers * self.service_rate
                                - self.arrival_rate)

    @property
    def mean_response_time(self) -> float:
        """W = Wq + 1/mu."""
        return self.mean_waiting_time + 1.0 / self.service_rate

    @property
    def mean_jobs_in_system(self) -> float:
        """L = lambda W (Little's law)."""
        return self.arrival_rate * self.mean_response_time


def littles_law_holds(arrival_rate: float, mean_in_system: float,
                      mean_response: float, tolerance: float = 0.1) -> bool:
    """Check L = lambda W on measured values, within ``tolerance``.

    The consistency check every measurement campaign should run on its
    own numbers (P8: everything tested, reproducibly).
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    predicted = arrival_rate * mean_response
    if predicted == 0:
        return mean_in_system == 0
    return abs(mean_in_system - predicted) / predicted <= tolerance
