"""Heuristic state-space search: A* and iterative-deepening A* (§3.5).

"Possibly the most widely used family of methods to investigate large
solution spaces are the A* algorithm and its optimizations, such as
the iterative deepening A*."

Both solvers are generic over a :class:`SearchProblem`; a grid
path-finding problem is included as the canonical instance (and as the
test vehicle).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Generic, Hashable, Iterable, TypeVar

__all__ = ["SearchProblem", "SearchResult", "astar", "ida_star",
           "GridPathProblem"]

State = TypeVar("State", bound=Hashable)


class SearchProblem(Generic[State]):
    """Interface for state-space search problems."""

    def initial_state(self) -> State:
        """The start state."""
        raise NotImplementedError

    def is_goal(self, state: State) -> bool:
        """Whether ``state`` is a goal."""
        raise NotImplementedError

    def successors(self, state: State) -> Iterable[tuple[State, float]]:
        """(next_state, step_cost) pairs."""
        raise NotImplementedError

    def heuristic(self, state: State) -> float:
        """Admissible estimate of remaining cost (default 0 = Dijkstra)."""
        return 0.0


@dataclass(frozen=True)
class SearchResult(Generic[State]):
    """Outcome of a search."""

    path: tuple[State, ...]
    cost: float
    expanded: int

    @property
    def found(self) -> bool:
        """Whether a goal was reached."""
        return bool(self.path)


def astar(problem: SearchProblem[State],
          max_expansions: int = 1_000_000) -> SearchResult[State]:
    """A* search; optimal when the heuristic is admissible."""
    start = problem.initial_state()
    frontier: list[tuple[float, int, State]] = []
    counter = 0
    heapq.heappush(frontier, (problem.heuristic(start), counter, start))
    best_cost: dict[State, float] = {start: 0.0}
    parent: dict[State, State] = {}
    expanded = 0
    while frontier:
        _, _, state = heapq.heappop(frontier)
        if problem.is_goal(state):
            return SearchResult(_reconstruct(parent, state),
                                best_cost[state], expanded)
        expanded += 1
        if expanded > max_expansions:
            break
        for successor, cost in problem.successors(state):
            if cost < 0:
                raise ValueError("step costs must be non-negative")
            candidate = best_cost[state] + cost
            if candidate < best_cost.get(successor, float("inf")):
                best_cost[successor] = candidate
                parent[successor] = state
                counter += 1
                heapq.heappush(frontier, (
                    candidate + problem.heuristic(successor), counter,
                    successor))
    return SearchResult((), float("inf"), expanded)


def _reconstruct(parent: dict, goal) -> tuple:
    path = [goal]
    while path[-1] in parent:
        path.append(parent[path[-1]])
    return tuple(reversed(path))


def ida_star(problem: SearchProblem[State],
             max_iterations: int = 100) -> SearchResult[State]:
    """Iterative-deepening A*: optimal with O(depth) memory."""
    start = problem.initial_state()
    bound = problem.heuristic(start)
    expanded = 0

    def depth_first(path: list[State], g: float,
                    bound: float) -> tuple[float, bool]:
        nonlocal expanded
        state = path[-1]
        f = g + problem.heuristic(state)
        if f > bound + 1e-12:
            return f, False
        if problem.is_goal(state):
            return g, True
        expanded += 1
        minimum = float("inf")
        for successor, cost in problem.successors(state):
            if successor in path:
                continue
            path.append(successor)
            threshold, found = depth_first(path, g + cost, bound)
            if found:
                return threshold, True
            path.pop()
            minimum = min(minimum, threshold)
        return minimum, False

    for _ in range(max_iterations):
        path = [start]
        threshold, found = depth_first(path, 0.0, bound)
        if found:
            return SearchResult(tuple(path), threshold, expanded)
        if threshold == float("inf"):
            break
        bound = threshold
    return SearchResult((), float("inf"), expanded)


class GridPathProblem(SearchProblem[tuple[int, int]]):
    """Shortest path on a 2D grid with obstacles; Manhattan heuristic."""

    def __init__(self, width: int, height: int,
                 start: tuple[int, int], goal: tuple[int, int],
                 obstacles: Iterable[tuple[int, int]] = ()) -> None:
        if width < 1 or height < 1:
            raise ValueError("grid dimensions must be >= 1")
        self.width = width
        self.height = height
        self.start = start
        self.goal = goal
        self.obstacles = set(obstacles)
        for point in (start, goal):
            if not self._inside(point) or point in self.obstacles:
                raise ValueError(f"invalid start/goal {point}")

    def _inside(self, point: tuple[int, int]) -> bool:
        x, y = point
        return 0 <= x < self.width and 0 <= y < self.height

    def initial_state(self) -> tuple[int, int]:
        """Return the configured start cell."""
        return self.start

    def is_goal(self, state: tuple[int, int]) -> bool:
        """Whether the cell is the goal."""
        return state == self.goal

    def successors(self, state: tuple[int, int]):
        """Yield 4-neighborhood moves of unit cost."""
        x, y = state
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            candidate = (x + dx, y + dy)
            if self._inside(candidate) and candidate not in self.obstacles:
                yield candidate, 1.0

    def heuristic(self, state: tuple[int, int]) -> float:
        """Manhattan distance to the goal (admissible)."""
        return abs(state[0] - self.goal[0]) + abs(state[1] - self.goal[1])
