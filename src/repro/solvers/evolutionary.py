"""Evolutionary and annealing metaheuristics (§3.5).

"...developed into new fields of study, such as evolutionary
computing, which describes a wide variety of biology-inspired search
algorithms: genetic algorithms, genetic programming, particle-swarm
optimization..."

Generic maximizers over user-supplied genomes: a steady-state
:class:`GeneticAlgorithm` and :func:`simulated_annealing`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

__all__ = ["GeneticAlgorithm", "GAResult", "simulated_annealing"]

Genome = TypeVar("Genome")


@dataclass(frozen=True)
class GAResult:
    """Outcome of a genetic-algorithm run."""

    best: object
    best_fitness: float
    generations: int
    history: tuple[float, ...]


class GeneticAlgorithm:
    """A generational GA with tournament selection and elitism.

    Args:
        fitness: Genome -> score (maximized).
        crossover: (parent_a, parent_b, rng) -> child genome.
        mutate: (genome, rng) -> mutated genome.
        population_size: Individuals per generation.
        tournament: Tournament size for parent selection.
        elite: Best individuals copied unchanged each generation.
        mutation_rate: Probability a child is mutated.
    """

    def __init__(self, fitness: Callable[[Genome], float],
                 crossover: Callable[[Genome, Genome, random.Random], Genome],
                 mutate: Callable[[Genome, random.Random], Genome],
                 population_size: int = 50, tournament: int = 3,
                 elite: int = 2, mutation_rate: float = 0.2,
                 rng: random.Random | None = None) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if tournament < 1:
            raise ValueError("tournament must be >= 1")
        if elite < 0 or elite >= population_size:
            raise ValueError("need 0 <= elite < population_size")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        self.fitness = fitness
        self.crossover = crossover
        self.mutate = mutate
        self.population_size = population_size
        self.tournament = tournament
        self.elite = elite
        self.mutation_rate = mutation_rate
        self.rng = rng or random.Random(0)

    def _select(self, scored: list[tuple[float, int, Genome]]) -> Genome:
        contenders = [scored[self.rng.randrange(len(scored))]
                      for _ in range(self.tournament)]
        return max(contenders, key=lambda pair: pair[0])[2]

    def run(self, initial_population: Sequence[Genome],
            generations: int = 50) -> GAResult:
        """Evolve for ``generations``; returns the best genome found."""
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if len(initial_population) < 2:
            raise ValueError("initial population needs >= 2 genomes")
        population = list(initial_population)
        history = []
        best: Genome = population[0]
        best_fitness = -float("inf")
        for generation in range(generations):
            scored = sorted(
                ((self.fitness(genome), index, genome)
                 for index, genome in enumerate(population)),
                key=lambda pair: -pair[0])
            if scored[0][0] > best_fitness:
                best_fitness, _, best = scored[0]
            history.append(scored[0][0])
            next_population = [genome for _, _, genome
                               in scored[:self.elite]]
            while len(next_population) < self.population_size:
                parent_a = self._select(scored)
                parent_b = self._select(scored)
                child = self.crossover(parent_a, parent_b, self.rng)
                if self.rng.random() < self.mutation_rate:
                    child = self.mutate(child, self.rng)
                next_population.append(child)
            population = next_population
        return GAResult(best=best, best_fitness=best_fitness,
                        generations=generations, history=tuple(history))


def simulated_annealing(initial: Genome,
                        energy: Callable[[Genome], float],
                        neighbor: Callable[[Genome, random.Random], Genome],
                        initial_temperature: float = 1.0,
                        cooling: float = 0.995,
                        iterations: int = 5000,
                        rng: random.Random | None = None,
                        ) -> tuple[Genome, float]:
    """Minimize ``energy`` by annealing; returns (best, best_energy)."""
    if initial_temperature <= 0:
        raise ValueError("initial_temperature must be positive")
    if not 0.0 < cooling < 1.0:
        raise ValueError("cooling must be in (0, 1)")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    rng = rng or random.Random(0)
    current = best = initial
    current_energy = best_energy = energy(initial)
    temperature = initial_temperature
    for _ in range(iterations):
        candidate = neighbor(current, rng)
        candidate_energy = energy(candidate)
        delta = candidate_energy - current_energy
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current, current_energy = candidate, candidate_energy
            if current_energy < best_energy:
                best, best_energy = current, current_energy
        temperature *= cooling
    return best, best_energy
