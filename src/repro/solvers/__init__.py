"""Problem-solving toolbox (S15): the §3.5 computer-centric techniques.

A*/IDA* heuristic search, genetic algorithms and simulated annealing,
M/M/1 and M/M/c queueing with Little's-law checking, and the Roofline
performance model.
"""

from .evolutionary import GAResult, GeneticAlgorithm, simulated_annealing
from .queueing import MM1, MMc, littles_law_holds
from .roofline import RooflineModel
from .search import (
    GridPathProblem,
    SearchProblem,
    SearchResult,
    astar,
    ida_star,
)

__all__ = [
    "SearchProblem",
    "SearchResult",
    "astar",
    "ida_star",
    "GridPathProblem",
    "GeneticAlgorithm",
    "GAResult",
    "simulated_annealing",
    "MM1",
    "MMc",
    "littles_law_holds",
    "RooflineModel",
]
