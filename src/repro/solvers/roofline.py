"""The Roofline performance model (Williams et al. [67]; §3.5).

"Frameworks such as the Roofline model are effective in predicting the
performance achieved by modern multicore architectures using only
modest numbers of parameters (e.g., memory bandwidth, floating-point
performance, operational intensity)."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RooflineModel"]


@dataclass(frozen=True)
class RooflineModel:
    """A two-parameter roofline: peak compute and peak memory bandwidth.

    Attributes:
        peak_gflops: Peak floating-point rate, GFLOP/s.
        peak_bandwidth: Peak memory bandwidth, GB/s.
    """

    peak_gflops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.peak_bandwidth <= 0:
            raise ValueError("peaks must be positive")

    @property
    def ridge_point(self) -> float:
        """Operational intensity (FLOP/byte) where the roofs meet."""
        return self.peak_gflops / self.peak_bandwidth

    def attainable_gflops(self, operational_intensity: float) -> float:
        """Attainable performance at a given operational intensity."""
        if operational_intensity <= 0:
            raise ValueError("operational intensity must be positive")
        return min(self.peak_gflops,
                   self.peak_bandwidth * operational_intensity)

    def is_memory_bound(self, operational_intensity: float) -> bool:
        """Whether a kernel at this intensity is memory-bandwidth bound."""
        return operational_intensity < self.ridge_point

    def roofline_series(self, intensities: list[float],
                        ) -> list[tuple[float, float]]:
        """(intensity, attainable GFLOP/s) points for plotting."""
        return [(oi, self.attainable_gflops(oi)) for oi in intensities]
