"""The result cache: fingerprint-keyed, provably-correct hits (P8).

The scenario kernel's determinism contract is that a spec's JSON form
*is* its identity: two byte-identical specs produce byte-identical
:class:`~repro.scenario.result.ScenarioResult` JSON, whoever runs them
and wherever.  That turns caching from a heuristic into a theorem —
serving a stored result for a spec with the same
:meth:`~repro.scenario.spec.ScenarioSpec.fingerprint` is exactly as
correct as re-running it, and infinitely cheaper.  The service fronts
its worker pool with this cache, and the CI smoke test pins the
contract end to end: a re-submitted spec must come back cached with
the identical digest.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["ResultCache"]


class ResultCache:
    """LRU cache of result JSON keyed by spec fingerprint.

    Args:
        capacity: Maximum retained results; the least recently used
            entry is evicted beyond it.

    Entries are also indexed by their result digest, so clients can
    fetch telemetry-bearing results by the digest a report quoted
    (``GET /v1/results/<digest>``) long after the job id expired.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, tuple[str, str]] = OrderedDict()
        self._by_digest: dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, fingerprint: str) -> str | None:
        """The cached result JSON for ``fingerprint``, or ``None``."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry[0]

    def put(self, fingerprint: str, result_json: str,
            digest: str) -> None:
        """Store one result under its spec fingerprint and digest."""
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
            return
        self._entries[fingerprint] = (result_json, digest)
        self._by_digest[digest] = fingerprint
        if len(self._entries) > self.capacity:
            evicted, (_, old_digest) = self._entries.popitem(last=False)
            self._by_digest.pop(old_digest, None)
            self.evictions += 1

    def by_digest(self, digest: str) -> str | None:
        """The cached result JSON whose digest is ``digest``, or None."""
        fingerprint = self._by_digest.get(digest)
        if fingerprint is None:
            return None
        return self.get(fingerprint)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def statistics(self) -> dict[str, float]:
        """Hit/miss/eviction counts and current size."""
        lookups = self.hits + self.misses
        return {
            "size": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_fraction": self.hits / lookups if lookups else 0.0,
        }
