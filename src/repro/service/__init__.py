"""Simulation-as-a-service: the scenario kernel as a resilient server.

The paper's central claim is that computer ecosystems must absorb
heavy, bursty, multi-tenant load while staying dependable (§2.2, C4,
C17).  This package makes that claim *executable against ourselves*:
it runs the scenario kernel as a long-lived multi-tenant service and
puts the repository's own resilience stack in front of it —

- :class:`~repro.service.core.ScenarioService` — the transport-
  agnostic service core: submit :class:`~repro.scenario.spec.ScenarioSpec`
  JSON, poll job status, fetch results and telemetry by digest;
- :class:`~repro.service.admission.ServiceAdmission` — bounded-queue,
  per-tenant-quota admission control in the mold of
  :class:`~repro.resilience.shedding.LoadSheddingAdmission`: overload
  answers 429/503 with ``Retry-After`` instead of collapse;
- per-tenant :class:`~repro.resilience.policies.RetryBudget`\\ s and a
  :class:`~repro.resilience.breakers.CircuitBreaker` around the warm
  worker pool, so crashed or hung workers are detected, their jobs
  deterministically retried, and a failing pool stops being hammered;
- :class:`~repro.service.cache.ResultCache` — results keyed on
  ``spec.fingerprint()``; specs are byte-identical by contract, so a
  cache hit is provably the correct response;
- service-level metrics through the existing
  :class:`~repro.observability.metrics.MetricsRegistry`, graded by the
  existing :class:`~repro.observability.slo.SLOEngine` — the service
  watches itself with the same instruments its scenarios use;
- :class:`~repro.service.chaos.ServiceChaosDrill` — a deterministic
  overload-plus-worker-crash drill that must keep the availability
  SLO green (the dogfooding proof, pinned by tests).

Transports: :class:`~repro.service.http.ServiceHTTPServer` (stdlib
``http.server``; ``python -m repro serve``) and the in-process core
directly.  See ``docs/SERVICE.md`` for endpoints and semantics.
"""

from .admission import AdmissionDecision, ServiceAdmission
from .cache import ResultCache
from .chaos import DrillReport, ServiceChaosDrill
from .clock import ServiceClock
from .core import ScenarioService, ServiceConfig, SubmitOutcome
from .events import ServiceEventLog
from .executors import ExecutionFailure, InlineExecutor, PoolExecutor
from .http import ServiceHTTPServer
from .client import ServiceClient, ServiceError
from .jobs import Job, JobState, JobTable
from .telemetry import TelemetryStore

__all__ = [
    "AdmissionDecision",
    "ServiceAdmission",
    "ResultCache",
    "DrillReport",
    "ServiceChaosDrill",
    "ServiceClock",
    "ScenarioService",
    "ServiceConfig",
    "SubmitOutcome",
    "ExecutionFailure",
    "InlineExecutor",
    "PoolExecutor",
    "ServiceHTTPServer",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobState",
    "JobTable",
    "ServiceEventLog",
    "TelemetryStore",
]
