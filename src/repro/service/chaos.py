"""The deterministic chaos drill: prove the service survives itself.

This is the PR's acceptance harness, as a library: a scripted incident
— an overload burst from several tenants, injected worker crashes
timed to trip the circuit breaker, a submission against the open
breaker — driven entirely on the deterministic
:class:`~repro.service.clock.ServiceClock` with an
:class:`~repro.service.executors.InlineExecutor` crash plan.  Because
every fault is injected *outside* the specs, the drill can assert the
strongest possible recovery property: every admitted run's result
digest is byte-identical to a clean serial execution of the same spec,
crashes and retries notwithstanding.

What the drill checks (all recorded in :class:`DrillReport`):

- overload sheds with 429 semantics and a positive ``Retry-After``
  hint on every shed decision — degradation, not collapse;
- three consecutive injected crashes open the breaker; a submission
  during the open window gets 503 + ``Retry-After``;
- the breaker recovers through half-open and every admitted job
  completes, retried points included;
- digests match serial execution byte for byte;
- a re-submission after the storm is served from the result cache;
- the availability SLO stays within budget and no burn-rate alert is
  left firing in the :class:`~repro.observability.slo.AlertLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..scenario.spec import ScenarioSpec
from .core import ScenarioService, ServiceConfig, SubmitOutcome
from .executors import InlineExecutor
from .jobs import JobState

__all__ = ["DrillReport", "ServiceChaosDrill"]

#: Drill-sized service: small bounds so a modest burst overloads it,
#: short breaker recovery so the drill stays a few dozen pump steps.
DRILL_CONFIG = ServiceConfig(
    max_queue=8,
    tenant_quota=4,
    max_attempts=3,
    breaker_threshold=3,
    breaker_recovery=5.0,
    queue_deadline=120.0,
)


@dataclass
class DrillReport:
    """Everything the chaos drill observed, JSON-ready and assertable.

    ``passed`` is the drill's single verdict: the service shed politely,
    broke the circuit, recovered, completed every admitted run with a
    serially-verified digest, served the cache, and kept its
    availability SLO green.
    """

    submissions: int = 0
    admitted: int = 0
    shed_429: int = 0
    breaker_503: int = 0
    retry_after_violations: int = 0
    injected_crashes: int = 0
    retries: int = 0
    completed: int = 0
    failed: int = 0
    digest_mismatches: list[dict[str, str]] = field(default_factory=list)
    cache_hit_ok: bool = False
    availability: dict[str, float] = field(default_factory=dict)
    alerts: list[dict[str, Any]] = field(default_factory=list)
    alerts_active: int = 0
    slo_ok: bool = False
    health: dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """The drill's overall verdict (every invariant held)."""
        return (self.shed_429 > 0
                and self.breaker_503 > 0
                and self.retry_after_violations == 0
                and self.injected_crashes > 0
                and self.completed == self.admitted
                and self.failed == 0
                and not self.digest_mismatches
                and self.cache_hit_ok
                and self.slo_ok
                and self.alerts_active == 0)

    def to_dict(self) -> dict[str, Any]:
        """The report as a JSON-ready dict (includes the verdict)."""
        return {
            "passed": self.passed,
            "submissions": self.submissions,
            "admitted": self.admitted,
            "shed_429": self.shed_429,
            "breaker_503": self.breaker_503,
            "retry_after_violations": self.retry_after_violations,
            "injected_crashes": self.injected_crashes,
            "retries": self.retries,
            "completed": self.completed,
            "failed": self.failed,
            "digest_mismatches": list(self.digest_mismatches),
            "cache_hit_ok": self.cache_hit_ok,
            "availability": dict(self.availability),
            "alerts": list(self.alerts),
            "alerts_active": self.alerts_active,
            "slo_ok": self.slo_ok,
            "health": dict(self.health),
        }


class ServiceChaosDrill:
    """A scripted, fully deterministic service incident.

    Args:
        base: The scenario spec the drill derives its workload from;
            each submission is ``base`` with a distinct seed, so every
            job is a distinct fingerprint (no accidental cache hits
            during the storm).
        tenants: Tenant names that submit round-robin.
        seeds: Seed per submission; more seeds than the drill config's
            capacity means the tail of the burst is shed — pick at
            least ``max_queue + 2`` to guarantee 429s.
        crash_points: How many of the first admitted jobs get one
            injected crash each; must be >= the config's breaker
            threshold to trip the breaker.
        config: Service tunables (defaults to :data:`DRILL_CONFIG`).
    """

    def __init__(self, base: ScenarioSpec,
                 tenants: tuple[str, ...] = ("acme", "beta", "carol"),
                 seeds: tuple[int, ...] = tuple(range(1, 19)),
                 crash_points: int = 3,
                 config: ServiceConfig | None = None) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        if crash_points < 1:
            raise ValueError("crash_points must be >= 1")
        self.base = base
        self.tenants = tuple(tenants)
        self.seeds = tuple(seeds)
        self.crash_points = crash_points
        self.config = config or DRILL_CONFIG

    def run(self) -> DrillReport:
        """Execute the scripted incident; returns the full report."""
        report = DrillReport()
        executor = InlineExecutor()
        service = ScenarioService(self.config, executor=executor)
        try:
            self._drive(service, executor, report)
        finally:
            service.close()
        return report

    # ------------------------------------------------------------------
    def _submit(self, service: ScenarioService, spec: ScenarioSpec,
                tenant: str, report: DrillReport) -> SubmitOutcome:
        outcome = service.submit(spec.to_json(), tenant=tenant)
        report.submissions += 1
        if outcome.status == 202:
            report.admitted += 1
        elif outcome.status == 429:
            report.shed_429 += 1
            if outcome.retry_after <= 0:
                report.retry_after_violations += 1
        elif outcome.status == 503:
            report.breaker_503 += 1
            if outcome.retry_after <= 0:
                report.retry_after_violations += 1
        return outcome

    def _drive(self, service: ScenarioService, executor: InlineExecutor,
               report: DrillReport) -> None:
        specs = [self.base.override({"seed": seed})
                 for seed in self.seeds]

        # Act 1 — overload burst: more submissions than the bounded
        # queue and tenant quotas can hold; the tail is shed with 429.
        for index, spec in enumerate(specs):
            self._submit(service, spec,
                         self.tenants[index % len(self.tenants)], report)

        # Act 2 — arm the crash plan against the first admitted jobs,
        # then pump exactly enough steps to watch them crash and trip
        # the breaker.  The plan keys on spec fingerprints, so the
        # faults live entirely outside the specs themselves.
        queued = [service.jobs.get(job_id) for job_id in
                  list(service._queue)[:self.crash_points]]
        executor.crash_plan = {job.fingerprint: 1 for job in queued
                               if job is not None}
        for _ in range(self.crash_points):
            service.pump_once()

        # Act 3 — submit against the open breaker: 503 + Retry-After.
        storm_probe = self.base.override({"seed": max(self.seeds) + 1})
        self._submit(service, storm_probe, self.tenants[0], report)

        # Act 4 — let the service dig out: breaker waits, half-open
        # probe, retries of the crashed points, the rest of the queue.
        service.pump()

        # Act 5 — after the storm: the probe spec is admitted now, and
        # a re-submission of a completed spec is a pure cache hit.
        retry_probe = self._submit(service, storm_probe,
                                   self.tenants[0], report)
        if retry_probe.status == 202:
            service.pump()
        cache_probe = service.submit(specs[0].to_json(),
                                     tenant=self.tenants[1])
        report.cache_hit_ok = bool(
            cache_probe.status == 200 and cache_probe.cached
            and cache_probe.result_digest is not None)

        self._audit(service, executor, report)

    def _audit(self, service: ScenarioService, executor: InlineExecutor,
               report: DrillReport) -> None:
        """Verify digests against serial runs and collect the verdicts."""
        report.injected_crashes = executor.injected_crashes
        report.retries = int(
            service.metrics.counter("service.retries").value)
        for job in service.jobs:
            if job.state is JobState.DONE and not job.cached:
                report.completed += 1
                serial = ScenarioSpec.from_json(job.spec_json).run()
                if serial.digest() != job.result_digest:
                    report.digest_mismatches.append({
                        "job_id": job.job_id,
                        "fingerprint": job.fingerprint,
                        "served": str(job.result_digest),
                        "serial": serial.digest(),
                    })
            elif job.state is JobState.DONE:
                report.completed += 1
            elif job.state.terminal:
                report.failed += 1
        slo = service.slo_report()
        availability = slo["slo"].get("service-availability", {})
        report.availability = availability
        report.alerts = slo["alerts"]
        report.alerts_active = len(service.engine.alerts.active())
        report.slo_ok = bool(availability.get("ok"))
        report.health = service.health()
