"""The service's structured event log: causal ids, one JSONL stream.

The federation design threads one causal chain through the service —
tenant → job → run → span: a submission names a tenant, admission
mints a job id, an observed execution stamps its telemetry with the
run id ``<tenant>/<job id>``, and the snapshot's span census hangs off
that run id in the fleet view.  This log is the chain made visible:
every service-side decision appends one flat record carrying whichever
ids exist at that point, and ``GET /v1/events`` streams them as JSON
Lines for operators (and tests) to follow a request end to end.

Records are deterministic under the
:class:`~repro.service.clock.ServiceClock`: ``seq`` is a monotonic
sequence number, ``time`` is logical service time, and the JSONL
rendering uses the deterministic encoder — no wall clock anywhere.
The log is bounded; old records fall off the front.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..observability.export import dumps_deterministic

__all__ = ["ServiceEventLog"]


class ServiceEventLog:
    """A bounded, append-only log of structured service events.

    Args:
        capacity: Maximum retained records (oldest dropped beyond it).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0

    def emit(self, kind: str, time: float, **ids: Any) -> dict[str, Any]:
        """Append one event record; returns it.

        ``ids`` carries the causal identifiers present at this point
        (``tenant`` / ``job_id`` / ``sweep_id`` / ``run_id`` /
        ``fingerprint`` / ``digest`` / ``error`` ...); ``None`` values
        are dropped so every record is flat and minimal.
        """
        record: dict[str, Any] = {"seq": self._seq, "time": time,
                                  "kind": kind}
        record.update({key: value for key, value in ids.items()
                       if value is not None})
        self._records.append(record)
        self._seq += 1
        return record

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[dict[str, Any]]:
        """The retained records, oldest first."""
        return list(self._records)

    def to_jsonl(self) -> str:
        """The retained records as JSON Lines (deterministic encoder)."""
        return "".join(dumps_deterministic(record) + "\n"
                       for record in self._records)
