"""The scenario service core: multi-tenant serving that survives itself.

This is ROADMAP item 1 made executable: the scenario kernel as a
long-lived service whose request path is wrapped in the repository's
*own* resilience stack (the dogfooding move the AtLarge design vision
argues for — the serving tier deserves the same dependability
disciplines as the systems it studies):

- **admission control** — a bounded queue with per-tenant quotas
  (:class:`~repro.service.admission.ServiceAdmission`); overload sheds
  with 429 + ``Retry-After`` instead of collapsing;
- **circuit breaker** — a
  :class:`~repro.resilience.breakers.CircuitBreaker` around the worker
  pool; while it is open, submissions get 503 + ``Retry-After`` and
  queued jobs wait for the half-open probe instead of hammering a
  failing pool;
- **retry budgets** — each tenant holds a
  :class:`~repro.resilience.policies.RetryBudget`; worker crashes are
  retried deterministically on a fresh worker until the budget or the
  per-job attempt cap says stop, at which point the job fails *with
  its error recorded* rather than taking the service down;
- **deadlines** — jobs that outwait ``queue_deadline`` expire
  gracefully;
- **result cache** — keyed on ``spec.fingerprint()``; byte-identical
  specs are byte-identical runs, so hits are provably correct;
- **self-grading** — every decision lands in a
  :class:`~repro.observability.metrics.MetricsRegistry` and the
  service's availability SLO is judged by the same
  :class:`~repro.observability.slo.SLOEngine` scenarios use, on the
  deterministic :class:`~repro.service.clock.ServiceClock`.

The core is transport-agnostic and single-threaded by design: the
HTTP layer (:mod:`repro.service.http`) serializes calls into it, and
the deterministic chaos drill (:mod:`repro.service.chaos`) drives it
directly.  Shed requests count as *graceful degradation*, not
availability failures — the availability objective judges admitted
work only, which is exactly the promise ``Retry-After`` makes.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..observability.metrics import MetricsRegistry
from ..observability.openmetrics import render_openmetrics
from ..observability.slo import (
    AvailabilityObjective,
    BurnRateRule,
    SLOEngine,
)
from ..observability.streaming import StreamingPipeline
from ..resilience.breakers import BreakerState, CircuitBreaker
from ..resilience.policies import RetryBudget
from ..scenario.spec import ScenarioSpec
from ..scenario.sweep import SweepPoint, SweepReport, SweepRunner
from .admission import ServiceAdmission
from .cache import ResultCache
from .clock import ServiceClock
from .events import ServiceEventLog
from .executors import ExecutionFailure, PoolExecutor
from .jobs import Job, JobState, JobTable
from .telemetry import TelemetryStore

__all__ = ["ServiceConfig", "SubmitOutcome", "ScenarioService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`ScenarioService` instance.

    Times are logical service-seconds (see
    :class:`~repro.service.clock.ServiceClock`); the clock advances by
    ``clock_step`` per pump step, so e.g. ``breaker_recovery=10`` means
    "ten units of service work".

    Attributes:
        max_queue: Global bound on queued + running jobs.
        tenant_quota: Per-tenant bound on queued + running jobs.
        max_attempts: Execution attempts per job (first + retries).
        retry_budget_ratio / retry_budget_initial / retry_budget_max:
            Per-tenant :class:`~repro.resilience.policies.RetryBudget`
            parameters — the global cap on retry amplification.
        breaker_threshold: Consecutive worker failures that open the
            breaker.
        breaker_recovery: Service-seconds the breaker stays open.
        queue_deadline: Service-seconds a job may wait before it
            expires gracefully.
        cache_capacity: Retained results (LRU beyond it).
        telemetry_interval: Streaming-telemetry tick period.
        availability_target: The service availability SLO.
        burn_rules: Burn-rate alerting rules for the SLO engine.
        clock_step: Logical seconds one pump step advances the clock.
        retry_after: Back-off hint on shed/rejected responses.
        default_tenant: Tenant assumed when a request names none.
        workers: Warm worker processes (pooled executor only).
        worker_timeout: Wall-clock hang deadline per attempt (pooled
            executor only; never enters any deterministic artifact).
        observe: Federated observation: every executed job arms a
            worker-side Observer, its telemetry snapshot lands in the
            :class:`~repro.service.telemetry.TelemetryStore` under the
            causal run id ``<tenant>/<job id>``, and the fleet merge
            joins the OpenMetrics exposition.  Result bytes are
            unchanged (cache hits skip execution and carry none).
        telemetry_capacity: Retained telemetry snapshots (LRU).
        event_log_capacity: Retained structured event records.
    """

    max_queue: int = 64
    tenant_quota: int = 16
    max_attempts: int = 3
    retry_budget_ratio: float = 0.5
    retry_budget_initial: float = 4.0
    retry_budget_max: float = 20.0
    breaker_threshold: int = 3
    breaker_recovery: float = 10.0
    queue_deadline: float = 300.0
    cache_capacity: int = 256
    telemetry_interval: float = 1.0
    availability_target: float = 0.95
    burn_rules: tuple[BurnRateRule, ...] = (
        BurnRateRule("page", long_window=30.0, short_window=5.0,
                     threshold=2.0),
        BurnRateRule("ticket", long_window=120.0, short_window=30.0,
                     threshold=1.5),
    )
    clock_step: float = 1.0
    retry_after: float = 5.0
    default_tenant: str = "public"
    workers: int = 2
    worker_timeout: float | None = 120.0
    observe: bool = False
    telemetry_capacity: int = 256
    event_log_capacity: int = 1024


@dataclass
class SubmitOutcome:
    """What one submission (or result fetch) produced.

    ``status`` follows HTTP semantics so transports map it directly:
    200 (served from cache / result ready), 202 (admitted), 400
    (invalid spec), 404 (unknown id/digest), 409 (not finished yet),
    429 (shed — quota or queue), 503 (breaker open).  ``retry_after``
    is non-zero exactly when a polite later retry could succeed.
    """

    status: int
    job_id: str | None = None
    sweep_id: str | None = None
    reason: str = ""
    retry_after: float = 0.0
    fingerprint: str = ""
    result_json: str | None = None
    result_digest: str | None = None
    cached: bool = False
    error: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        """Whether the request was admitted or served (2xx)."""
        return 200 <= self.status < 300

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready body for transports (``result_json`` kept raw)."""
        body: dict[str, Any] = {"status": self.status}
        for key in ("job_id", "sweep_id", "result_digest", "error"):
            value = getattr(self, key)
            if value is not None:
                body[key] = value
        if self.reason:
            body["reason"] = self.reason
        if self.retry_after:
            body["retry_after"] = self.retry_after
        if self.fingerprint:
            body["fingerprint"] = self.fingerprint
        if self.cached:
            body["cached"] = True
        body.update(self.extra)
        return body


class _SweepRecord:
    """Book-keeping for one admitted sweep: its points and child jobs."""

    __slots__ = ("sweep_id", "tenant", "base", "points", "children")

    def __init__(self, sweep_id: str, tenant: str, base: ScenarioSpec,
                 points: Sequence[SweepPoint],
                 children: dict[int, str]) -> None:
        self.sweep_id = sweep_id
        self.tenant = tenant
        self.base = base
        self.points = list(points)
        self.children = dict(children)


class ScenarioService:
    """The multi-tenant scenario server behind every transport.

    Args:
        config: Service tunables (defaults are drill-friendly).
        executor: The execution tier; defaults to a
            :class:`~repro.service.executors.PoolExecutor` with
            ``config.workers`` warm processes.  Tests and the chaos
            drill pass an
            :class:`~repro.service.executors.InlineExecutor` (with a
            crash plan) for full determinism.

    The core is **not** thread-safe; transports must serialize calls.
    Work executes in :meth:`pump_once` steps — the HTTP layer runs a
    dispatcher loop over it, deterministic drivers call :meth:`pump`.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 executor: Any = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.clock = ServiceClock()
        self.metrics = MetricsRegistry()
        self.executor = executor if executor is not None else PoolExecutor(
            workers=cfg.workers, timeout=cfg.worker_timeout)
        self.admission = ServiceAdmission(max_queue=cfg.max_queue,
                                          tenant_quota=cfg.tenant_quota,
                                          retry_after=cfg.retry_after)
        self.cache = ResultCache(capacity=cfg.cache_capacity)
        self.jobs = JobTable()
        self.breaker = CircuitBreaker(
            self.clock, name="worker-pool",
            failure_threshold=cfg.breaker_threshold,
            recovery_timeout=cfg.breaker_recovery)
        self.budgets: dict[str, RetryBudget] = {}
        self.pipeline = StreamingPipeline(self.clock, self.metrics,
                                          interval=cfg.telemetry_interval)
        self.engine = SLOEngine(
            self.pipeline,
            objectives=[AvailabilityObjective(
                "service-availability",
                good="service.requests_ok",
                bad="service.requests_failed",
                target=cfg.availability_target,
                description="admitted requests that completed")],
            rules=cfg.burn_rules)
        self._queue: deque[str] = deque()
        self._sweeps: dict[str, _SweepRecord] = {}
        self.telemetry = TelemetryStore(capacity=cfg.telemetry_capacity)
        self.events = ServiceEventLog(capacity=cfg.event_log_capacity)
        # Eagerly register every instrument so snapshots show explicit
        # zeros from the first scrape on.
        for name in ("submissions", "admitted", "cache_hits",
                     "rejected_invalid", "rejected_breaker",
                     "shed_queue_full", "shed_tenant_quota",
                     "requests_ok", "requests_failed", "worker_failures",
                     "retries", "retries_denied", "expired",
                     "telemetry_captured"):
            self.metrics.counter(f"service.{name}")
        self.metrics.gauge("service.queue_depth")
        self.metrics.histogram("service.queue_wait")
        self.metrics.histogram("service.attempts",
                               boundaries=(1.0, 2.0, 3.0, 4.0, 5.0))
        self.pipeline.watch("service.requests_ok")
        self.pipeline.watch("service.queue_depth")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(f"service.{name}").inc(amount)

    def _tenant_budget(self, tenant: str) -> RetryBudget:
        cfg = self.config
        budget = self.budgets.get(tenant)
        if budget is None:
            budget = RetryBudget(ratio=cfg.retry_budget_ratio,
                                 initial=cfg.retry_budget_initial,
                                 max_tokens=cfg.retry_budget_max)
            self.budgets[tenant] = budget
        return budget

    def _parse_spec(self, spec_json: str) -> ScenarioSpec:
        """Validate and rehydrate a submitted spec (raises ValueError)."""
        try:
            return ScenarioSpec.from_json(spec_json)
        except (ValueError, KeyError, TypeError,
                json.JSONDecodeError) as exc:
            raise ValueError(f"invalid scenario spec: "
                             f"{type(exc).__name__}: {exc}") from exc

    def _breaker_retry_after(self) -> float:
        """Seconds until an open breaker would admit half-open probes."""
        opened_at = (self.breaker.transitions[-1][0]
                     if self.breaker.transitions else self.clock.now)
        remaining = (self.config.breaker_recovery
                     - (self.clock.now - opened_at))
        return max(remaining, self.config.clock_step)

    def _queue_gauge(self) -> None:
        self.metrics.gauge("service.queue_depth").set(len(self._queue))

    def submit(self, spec_json: str,
               tenant: str | None = None) -> SubmitOutcome:
        """Submit one scenario spec; returns the admission outcome.

        The request path, in order: validate → cache → circuit breaker
        → admission (queue bound, tenant quota) → enqueue.  Every exit
        is graceful: invalid specs get 400 with the parse error, a
        tripped breaker gets 503 + ``Retry-After``, shed load gets 429
        + ``Retry-After``, cache hits return the stored result
        immediately with 200.
        """
        tenant = tenant or self.config.default_tenant
        self._count("submissions")
        try:
            spec = self._parse_spec(spec_json)
        except ValueError as exc:
            self._count("rejected_invalid")
            self.events.emit("job-rejected", self.clock.now,
                             tenant=tenant, reason="invalid-spec")
            return SubmitOutcome(status=400, error=str(exc))
        fingerprint = spec.fingerprint()
        cached = self.cache.get(fingerprint)
        if cached is not None:
            self._count("cache_hits")
            self._count("requests_ok")
            self.events.emit("job-cached", self.clock.now,
                             tenant=tenant, fingerprint=fingerprint)
            return SubmitOutcome(
                status=200, fingerprint=fingerprint, cached=True,
                result_json=cached, result_digest=_digest(cached))
        if self.breaker.state is BreakerState.OPEN:
            self._count("rejected_breaker")
            self.events.emit("job-rejected", self.clock.now,
                             tenant=tenant, fingerprint=fingerprint,
                             reason="breaker-open")
            return SubmitOutcome(status=503, reason="breaker-open",
                                 retry_after=self._breaker_retry_after(),
                                 fingerprint=fingerprint)
        decision = self.admission.admit(tenant)
        if not decision.admitted:
            self._count("shed_queue_full"
                        if decision.reason == "queue-full"
                        else "shed_tenant_quota")
            self.events.emit("job-shed", self.clock.now, tenant=tenant,
                             fingerprint=fingerprint,
                             reason=decision.reason)
            return SubmitOutcome(status=429, reason=decision.reason,
                                 retry_after=decision.retry_after,
                                 fingerprint=fingerprint)
        job = Job(self.jobs.new_id("run"), tenant,
                  spec.to_json(), fingerprint, spec.name,
                  submitted_at=self.clock.now)
        self.jobs.add(job)
        self._queue.append(job.job_id)
        self._queue_gauge()
        self._tenant_budget(tenant).record_attempt()
        self._count("admitted")
        self.events.emit("job-admitted", self.clock.now, tenant=tenant,
                         job_id=job.job_id, fingerprint=fingerprint)
        return SubmitOutcome(status=202, job_id=job.job_id,
                             fingerprint=fingerprint)

    def submit_sweep(self, spec_json: str,
                     axes: Mapping[str, Any] | None = None,
                     tenant: str | None = None) -> SubmitOutcome:
        """Submit a sweep: a spec plus grid axes, admitted atomically.

        ``axes`` may carry ``seeds`` / ``policies`` / ``scale`` /
        ``overrides`` exactly as
        :meth:`~repro.scenario.sweep.SweepRunner.grid` takes them.
        Admission is all-or-nothing over the whole grid (a
        half-admitted sweep would wedge the queue), every grid point
        rides the same cache/retry/breaker path as a single run, and
        the assembled report carries explicit gap accounting for
        points that failed after retry
        (:attr:`~repro.scenario.sweep.SweepReport.failed`).
        """
        tenant = tenant or self.config.default_tenant
        axes = dict(axes or {})
        self._count("submissions")
        try:
            spec = self._parse_spec(spec_json)
            points = SweepRunner(spec).grid(
                seeds=axes.get("seeds", ()),
                policies=axes.get("policies", ()),
                scale=axes.get("scale", ()),
                overrides=axes.get("overrides", ()))
        except (ValueError, KeyError, TypeError) as exc:
            self._count("rejected_invalid")
            return SubmitOutcome(
                status=400, error=f"invalid sweep request: "
                                  f"{type(exc).__name__}: {exc}")
        if self.breaker.state is BreakerState.OPEN:
            self._count("rejected_breaker")
            return SubmitOutcome(status=503, reason="breaker-open",
                                 retry_after=self._breaker_retry_after())
        decision = self.admission.admit(tenant, slots=len(points))
        if not decision.admitted:
            self._count("shed_queue_full"
                        if decision.reason == "queue-full"
                        else "shed_tenant_quota")
            return SubmitOutcome(status=429, reason=decision.reason,
                                 retry_after=decision.retry_after)
        sweep_id = self.jobs.new_id("sweep")
        budget = self._tenant_budget(tenant)
        children: dict[int, str] = {}
        for point in points:
            job = Job(self.jobs.new_id("run"), tenant,
                      point.spec.to_json(), point.spec.fingerprint(),
                      point.spec.name, submitted_at=self.clock.now,
                      sweep_id=sweep_id)
            self.jobs.add(job)
            children[point.index] = job.job_id
            budget.record_attempt()
            cached = self.cache.get(job.fingerprint)
            if cached is not None:
                self._count("cache_hits")
                self._finish_ok(job, cached, cached_hit=True)
            else:
                self._queue.append(job.job_id)
        self._queue_gauge()
        self._count("admitted")
        self._sweeps[sweep_id] = _SweepRecord(sweep_id, tenant, spec,
                                              points, children)
        self.events.emit("sweep-admitted", self.clock.now, tenant=tenant,
                         sweep_id=sweep_id,
                         fingerprint=spec.fingerprint(),
                         points=len(points))
        return SubmitOutcome(status=202, sweep_id=sweep_id,
                             fingerprint=spec.fingerprint(),
                             extra={"points": len(points)})

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """One quantum of service time; telemetry and SLOs keep pace."""
        self.pipeline.advance(self.clock.advance(self.config.clock_step))

    def _finish_ok(self, job: Job, result_json: str,
                   cached_hit: bool = False) -> None:
        """Terminal bookkeeping for a completed (or cache-served) job."""
        job.result_json = result_json
        job.result_digest = _digest(result_json)
        job.cached = cached_hit
        job.transition(JobState.DONE, self.clock.now)
        self._count("requests_ok")
        self.metrics.histogram("service.attempts").observe(
            max(job.attempts, 1))
        self.cache.put(job.fingerprint, result_json, job.result_digest)
        self.admission.release(job.tenant)
        self.events.emit("job-done", self.clock.now, tenant=job.tenant,
                         job_id=job.job_id, sweep_id=job.sweep_id,
                         fingerprint=job.fingerprint,
                         digest=job.result_digest,
                         cached=cached_hit or None)

    def _finish_failed(self, job: Job, state: JobState,
                       error: str) -> None:
        """Terminal bookkeeping for a failed or expired job."""
        job.error = error
        job.transition(state, self.clock.now)
        self._count("expired" if state is JobState.EXPIRED
                    else "requests_failed")
        if state is JobState.EXPIRED:
            # An admitted job the service dropped is an availability
            # failure too — expiry is graceful for the *queue*, not
            # for the caller.
            self._count("requests_failed")
        self.admission.release(job.tenant)
        self.events.emit("job-expired" if state is JobState.EXPIRED
                         else "job-failed", self.clock.now,
                         tenant=job.tenant, job_id=job.job_id,
                         sweep_id=job.sweep_id,
                         fingerprint=job.fingerprint, error=error)

    def pump_once(self) -> bool:
        """Process one queued job attempt; returns whether work remains.

        One call = one unit of service work = one ``clock_step``: a
        deadline check, a breaker gate, then a single execution
        attempt whose outcome feeds the breaker, the tenant's retry
        budget, the cache, and the metrics that the SLO engine grades
        at each telemetry tick.
        """
        if not self._queue:
            return False
        job = self.jobs.get(self._queue.popleft())
        assert job is not None  # queue only ever holds registered ids
        now = self.clock.now
        if now - job.submitted_at > self.config.queue_deadline:
            self._finish_failed(job, JobState.EXPIRED,
                                "queue-deadline-exceeded")
            self._queue_gauge()
            self._advance()
            return bool(self._queue)
        if not self.breaker.allow():
            # Breaker open: the job stays queued while service time
            # advances toward the half-open probe window.
            self._queue.appendleft(job.job_id)
            self._advance()
            return True
        if job.started_at is None:
            self.metrics.histogram("service.queue_wait").observe(
                now - job.submitted_at)
        job.transition(JobState.RUNNING, now)
        attempt = job.attempts
        job.attempts += 1
        run_id = (f"{job.tenant}/{job.job_id}" if self.config.observe
                  else None)
        try:
            if run_id is not None:
                result_json, telemetry_json = self.executor.run(
                    job.fingerprint, job.spec_json, attempt,
                    observe_run_id=run_id)
            else:
                result_json = self.executor.run(job.fingerprint,
                                                job.spec_json, attempt)
        except ExecutionFailure as exc:
            self._count("worker_failures")
            self.breaker.record_failure()
            self._handle_attempt_failure(job, exc)
        else:
            self.breaker.record_success()
            if run_id is not None:
                digest = self.telemetry.put(job.job_id, telemetry_json)
                self._count("telemetry_captured")
                self.events.emit("run-observed", self.clock.now,
                                 tenant=job.tenant, job_id=job.job_id,
                                 sweep_id=job.sweep_id, run_id=run_id,
                                 telemetry_digest=digest)
            self._finish_ok(job, result_json)
        self._queue_gauge()
        self._advance()
        return bool(self._queue)

    def _handle_attempt_failure(self, job: Job,
                                exc: ExecutionFailure) -> None:
        """Retry a failed attempt if budget and attempt cap allow."""
        error = f"{exc.kind}: {exc}"
        if job.attempts >= self.config.max_attempts:
            self._finish_failed(job, JobState.FAILED,
                                f"{error} (attempts exhausted)")
            return
        if not self._tenant_budget(job.tenant).try_spend():
            self._count("retries_denied")
            self._finish_failed(job, JobState.FAILED,
                                f"{error} (retry budget exhausted)")
            return
        self._count("retries")
        job.error = error
        job.transition(JobState.QUEUED, self.clock.now)
        self._queue.append(job.job_id)

    def pump(self, max_steps: int | None = None) -> int:
        """Drain the queue; returns the number of steps executed.

        Termination is guaranteed: every queued job either completes,
        exhausts its attempts/budget, or expires at its deadline —
        the breaker can stall progress only for ``breaker_recovery``
        service-seconds at a time.  ``max_steps`` is a safety valve
        for drivers that want to interleave.
        """
        steps = 0
        while self._queue:
            if max_steps is not None and steps >= max_steps:
                break
            self.pump_once()
            steps += 1
        return steps

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting for a worker."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def job_status(self, job_id: str) -> dict[str, Any] | None:
        """The status document for ``job_id``, or ``None``."""
        job = self.jobs.get(job_id)
        return None if job is None else job.status()

    def job_result(self, job_id: str) -> SubmitOutcome:
        """The result of ``job_id``: 200 + JSON, 409 pending, 404/410."""
        job = self.jobs.get(job_id)
        if job is None:
            return SubmitOutcome(status=404, error=f"no job {job_id!r}")
        if job.state is JobState.DONE:
            return SubmitOutcome(status=200, job_id=job_id,
                                 fingerprint=job.fingerprint,
                                 cached=job.cached,
                                 result_json=job.result_json,
                                 result_digest=job.result_digest)
        if job.state.terminal:
            return SubmitOutcome(status=410, job_id=job_id,
                                 reason=job.state.value, error=job.error)
        return SubmitOutcome(status=409, job_id=job_id,
                             reason=job.state.value,
                             retry_after=self.config.retry_after)

    def result_by_digest(self, digest: str) -> SubmitOutcome:
        """Fetch a cached result by its result digest (200/404)."""
        result_json = self.cache.by_digest(digest)
        if result_json is None:
            return SubmitOutcome(status=404,
                                 error=f"no cached result {digest!r}")
        return SubmitOutcome(status=200, result_json=result_json,
                             result_digest=digest, cached=True)

    def sweep_status(self, sweep_id: str) -> dict[str, Any] | None:
        """Aggregate child-state counts for one sweep, or ``None``."""
        record = self._sweeps.get(sweep_id)
        if record is None:
            return None
        tally = {state.value: 0 for state in JobState}
        for job_id in record.children.values():
            job = self.jobs.get(job_id)
            assert job is not None
            tally[job.state.value] += 1
        done = all(tally[state.value] == 0
                   for state in JobState if not state.terminal)
        return {"sweep_id": sweep_id, "tenant": record.tenant,
                "points": len(record.points), "states": tally,
                "done": done,
                "children": dict(sorted(record.children.items()))}

    def sweep_result(self, sweep_id: str) -> SubmitOutcome:
        """Assemble the sweep's deterministic report once all points end.

        Completed points enter ``runs``; points that failed after
        retry (or expired) enter
        :attr:`~repro.scenario.sweep.SweepReport.failed` — the same
        gap-accounting contract the offline
        :class:`~repro.scenario.sweep.SweepRunner` honors, so a
        partial sweep is a readable report, never a stack trace.
        """
        record = self._sweeps.get(sweep_id)
        if record is None:
            return SubmitOutcome(status=404,
                                 error=f"no sweep {sweep_id!r}")
        status = self.sweep_status(sweep_id)
        assert status is not None
        if not status["done"]:
            return SubmitOutcome(status=409, sweep_id=sweep_id,
                                 reason="running",
                                 retry_after=self.config.retry_after)
        outcomes = []
        failures = []
        for point in record.points:
            job = self.jobs.get(record.children[point.index])
            assert job is not None
            if job.state is JobState.DONE:
                outcomes.append((point.index, job.result_json))
            else:
                failures.append({"index": point.index,
                                 "label": point.label(),
                                 "fingerprint": job.fingerprint,
                                 "error": job.error or job.state.value,
                                 "attempts": job.attempts})
        report = SweepReport.assemble(record.base, record.points,
                                      outcomes, workers=1,
                                      failures=failures)
        return SubmitOutcome(status=200, sweep_id=sweep_id,
                             result_json=report.to_json(),
                             result_digest=report.digest(),
                             extra={"complete": report.complete,
                                    "failed_points": len(report.failed)})

    def tenant_stats(self, tenant: str) -> dict[str, Any]:
        """One tenant's quota occupancy and retry-budget state."""
        budget = self.budgets.get(tenant)
        return {
            "tenant": tenant,
            "occupancy": self.admission.tenant_occupancy(tenant),
            "quota": self.admission.tenant_quota,
            "retry_budget": None if budget is None else {
                "tokens": budget.tokens,
                "deposits": budget.deposits,
                "granted": budget.granted,
                "denied": budget.denied,
            },
        }

    def run_telemetry(self, job_id: str) -> SubmitOutcome:
        """One observed run's telemetry snapshot: 200 + JSON, 404/409.

        404 for unknown jobs and for finished jobs with no retained
        snapshot (service not observing, snapshot evicted, or the job
        was served from cache and never executed); 409 while the job
        has not run yet.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return SubmitOutcome(status=404, error=f"no job {job_id!r}")
        entry = self.telemetry.get(job_id)
        if entry is not None:
            telemetry_json, digest = entry
            return SubmitOutcome(status=200, job_id=job_id,
                                 result_json=telemetry_json,
                                 result_digest=digest)
        if not job.state.terminal:
            return SubmitOutcome(status=409, job_id=job_id,
                                 reason=job.state.value,
                                 retry_after=self.config.retry_after)
        return SubmitOutcome(status=404, job_id=job_id,
                             error=f"no telemetry for job {job_id!r} "
                                   f"(unobserved, cached, or evicted)")

    def telemetry_by_digest(self, digest: str) -> SubmitOutcome:
        """Fetch a retained telemetry snapshot by its digest (200/404)."""
        telemetry_json = self.telemetry.by_digest(digest)
        if telemetry_json is None:
            return SubmitOutcome(status=404,
                                 error=f"no telemetry {digest!r}")
        return SubmitOutcome(status=200, result_json=telemetry_json,
                             result_digest=digest)

    def metrics_openmetrics(self) -> str:
        """Both metric planes as one OpenMetrics text exposition.

        The service's own registry exposes under ``plane="service"``;
        when federated observation has captured runs, their merged
        fleet metrics join under ``plane="fleet"``.
        """
        planes = [({"plane": "service"}, self.metrics.snapshot())]
        fleet = self.telemetry.fleet()
        if fleet is not None:
            planes.append(({"plane": "fleet"}, fleet["metrics"]))
        return render_openmetrics(planes)

    def fleet_telemetry(self) -> dict[str, Any] | None:
        """The merged fleet view over retained run snapshots, or None."""
        return self.telemetry.fleet()

    def events_jsonl(self) -> str:
        """The structured event log as JSON Lines."""
        return self.events.to_jsonl()

    def health(self) -> dict[str, Any]:
        """Liveness document: clock, breaker, queue, and job tallies."""
        return {
            "status": ("degraded"
                       if self.breaker.state is not BreakerState.CLOSED
                       else "ok"),
            "time": self.clock.now,
            "breaker": self.breaker.state.value,
            "queue_depth": len(self._queue),
            "jobs": self.jobs.counts(),
            "admission": self.admission.statistics(),
            "cache": self.cache.statistics(),
            "telemetry": self.telemetry.statistics(),
        }

    def slo_report(self) -> dict[str, Any]:
        """The SLO engine's verdicts plus the full alert log."""
        return {"slo": self.engine.report(),
                "alerts": self.engine.alerts.to_json()}

    def metrics_snapshot(self) -> dict[str, Any]:
        """The service metrics registry's deterministic snapshot."""
        return self.metrics.snapshot()

    def close(self) -> None:
        """Release the execution tier (idempotent)."""
        self.executor.close()


def _digest(result_json: str) -> str:
    """SHA-256 of canonical result JSON (= ``ScenarioResult.digest``)."""
    return hashlib.sha256(result_json.encode("utf-8")).hexdigest()
