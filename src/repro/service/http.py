"""The stdlib HTTP transport for :class:`ScenarioService`.

``python -m repro serve`` binds this server.  It is deliberately
boring: a ``ThreadingHTTPServer`` accepts requests, every call into
the service core is serialized under one lock (the core is
single-threaded by contract), and a dispatcher thread pumps queued
jobs in the background so submissions return 202 immediately.  All
resilience behavior — shedding, quotas, breakers, retries, deadlines,
the cache — lives in the core and is therefore identical under the
deterministic drill and under real HTTP traffic.

Endpoints (all JSON; full semantics in ``docs/SERVICE.md``):

- ``POST /v1/runs`` — submit a spec (body = spec JSON); 202/200/400/429/503
- ``POST /v1/sweeps`` — submit ``{"spec": {...}, "axes": {...}}``
- ``GET /v1/runs/<id>`` — job status document
- ``GET /v1/runs/<id>/events`` — state-transition history (progress)
- ``GET /v1/runs/<id>/result`` — raw result JSON (+ ``X-Result-Digest``)
- ``GET /v1/runs/<id>/telemetry`` — the run's federated telemetry
  snapshot (+ ``X-Telemetry-Digest``)
- ``GET /v1/sweeps/<id>`` / ``GET /v1/sweeps/<id>/result``
- ``GET /v1/results/<digest>`` — cached result by digest
- ``GET /v1/telemetry/<digest>`` — telemetry snapshot by digest
- ``GET /v1/tenants/<tenant>`` — quota occupancy + retry budget
- ``GET /v1/health`` / ``GET /v1/metrics`` / ``GET /v1/slo``
- ``GET /v1/metrics?format=openmetrics`` — Prometheus text exposition
  (service + federated fleet planes); unknown formats get 406
- ``GET /v1/events`` — the structured service event log as JSON Lines

Shed and rejected responses carry a ``Retry-After`` header mirroring
the body's ``retry_after`` hint.
"""

from __future__ import annotations

import json
import math
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .core import ScenarioService, SubmitOutcome

__all__ = ["ServiceHTTPServer"]

#: Media type of the OpenMetrics text exposition.
OPENMETRICS_TYPE = ("application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8")

#: Cap one request body at 8 MiB — a spec is kilobytes; anything
#: larger is a client bug or abuse, and bounding it keeps one request
#: from exhausting server memory.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning :class:`ServiceHTTPServer`."""

    protocol_version = "HTTP/1.1"
    server: "_InnerServer"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (metrics cover it)."""

    def _tenant(self) -> str | None:
        return self.headers.get("X-Tenant") or None

    def _read_body(self) -> str | None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            return None
        return self.rfile.read(length).decode("utf-8", errors="replace")

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json",
              retry_after: float = 0.0,
              digest: str | None = None,
              digest_header: str = "X-Result-Digest") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after > 0:
            self.send_header("Retry-After",
                             str(int(math.ceil(retry_after))))
        if digest is not None:
            self.send_header(digest_header, digest)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict[str, Any],
                   retry_after: float = 0.0) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, retry_after=retry_after)

    def _send_outcome(self, outcome: SubmitOutcome,
                      raw_result: bool = False,
                      digest_header: str = "X-Result-Digest") -> None:
        """Render a core outcome; optionally as the raw result bytes.

        ``raw_result`` responses return the stored result JSON
        verbatim (so its bytes hash to the digest header); everything
        else gets the outcome's JSON envelope.
        """
        if raw_result and outcome.status == 200 and outcome.result_json:
            self._send(200, outcome.result_json.encode("utf-8"),
                       digest=outcome.result_digest,
                       digest_header=digest_header)
            return
        self._send_json(outcome.status, outcome.to_dict(),
                        retry_after=outcome.retry_after)

    def _not_found(self, what: str) -> None:
        self._send_json(404, {"status": 404, "error": f"no route {what}"})

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        """Handle submissions: ``/v1/runs`` and ``/v1/sweeps``."""
        body = self._read_body()
        if body is None:
            self._send_json(400, {"status": 400,
                                  "error": "missing or oversized body"})
            return
        bridge = self.server.bridge
        if self.path == "/v1/runs":
            self._send_outcome(bridge.submit(body, self._tenant()))
        elif self.path == "/v1/sweeps":
            try:
                request = json.loads(body)
                spec_json = json.dumps(request["spec"], sort_keys=True)
                axes = request.get("axes") or {}
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                self._send_json(400, {
                    "status": 400,
                    "error": f"sweep body must be "
                             f'{{"spec": ..., "axes": ...}}: {exc}'})
                return
            self._send_outcome(
                bridge.submit_sweep(spec_json, axes, self._tenant()))
        else:
            self._not_found(self.path)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        """Handle every read endpoint (status, results, introspection)."""
        bridge = self.server.bridge
        split = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(split.query)
        parts = [part for part in split.path.split("/") if part]
        if parts == ["v1", "health"]:
            self._send_json(200, bridge.health())
        elif parts == ["v1", "metrics"]:
            self._route_metrics(bridge, query)
        elif parts == ["v1", "slo"]:
            self._send_json(200, bridge.slo_report())
        elif parts == ["v1", "events"]:
            self._send(200, bridge.events_jsonl().encode("utf-8"),
                       content_type="application/x-ndjson")
        elif len(parts) == 3 and parts[:2] == ["v1", "results"]:
            self._send_outcome(bridge.result_by_digest(parts[2]),
                               raw_result=True)
        elif len(parts) == 3 and parts[:2] == ["v1", "telemetry"]:
            self._send_outcome(bridge.telemetry_by_digest(parts[2]),
                               raw_result=True,
                               digest_header="X-Telemetry-Digest")
        elif len(parts) == 3 and parts[:2] == ["v1", "tenants"]:
            self._send_json(200, bridge.tenant_stats(parts[2]))
        elif len(parts) >= 3 and parts[:2] == ["v1", "runs"]:
            self._route_run(bridge, parts[2], parts[3:])
        elif len(parts) >= 3 and parts[:2] == ["v1", "sweeps"]:
            self._route_sweep(bridge, parts[2], parts[3:])
        else:
            self._not_found(self.path)

    def _route_metrics(self, bridge: "_Bridge",
                       query: dict[str, list[str]]) -> None:
        """``/v1/metrics`` content negotiation via ``format=``.

        ``json`` (the default) serves the registry snapshot;
        ``openmetrics`` serves the Prometheus text exposition of both
        planes; anything else is 406 with a JSON error body naming the
        supported formats — never a silent fallback.
        """
        requested = query.get("format", ["json"])[-1]
        if requested == "json":
            self._send_json(200, bridge.metrics_snapshot())
        elif requested == "openmetrics":
            self._send(200,
                       bridge.metrics_openmetrics().encode("utf-8"),
                       content_type=OPENMETRICS_TYPE)
        else:
            self._send_json(406, {
                "status": 406,
                "error": f"unknown metrics format {requested!r}",
                "supported": ["json", "openmetrics"]})

    def _route_run(self, bridge: "_Bridge", job_id: str,
                   rest: list[str]) -> None:
        if not rest:
            status = bridge.job_status(job_id)
            if status is None:
                self._send_json(404, {"status": 404,
                                      "error": f"no job {job_id!r}"})
            else:
                self._send_json(200, status)
        elif rest == ["result"]:
            self._send_outcome(bridge.job_result(job_id), raw_result=True)
        elif rest == ["telemetry"]:
            self._send_outcome(bridge.run_telemetry(job_id),
                               raw_result=True,
                               digest_header="X-Telemetry-Digest")
        elif rest == ["events"]:
            status = bridge.job_status(job_id)
            if status is None:
                self._send_json(404, {"status": 404,
                                      "error": f"no job {job_id!r}"})
            else:
                self._send_json(200, {
                    "job_id": job_id, "state": status["state"],
                    "transitions": status["transitions"]})
        else:
            self._not_found(self.path)

    def _route_sweep(self, bridge: "_Bridge", sweep_id: str,
                     rest: list[str]) -> None:
        if not rest:
            status = bridge.sweep_status(sweep_id)
            if status is None:
                self._send_json(404, {"status": 404,
                                      "error": f"no sweep {sweep_id!r}"})
            else:
                self._send_json(200, status)
        elif rest == ["result"]:
            self._send_outcome(bridge.sweep_result(sweep_id),
                               raw_result=True)
        else:
            self._not_found(self.path)


class _Bridge:
    """Serializes every core call under one lock.

    The core is single-threaded by contract; handler threads and the
    dispatcher all go through this bridge, so "one lock around the
    core" is the entire concurrency story of the transport.
    """

    def __init__(self, service: ScenarioService,
                 lock: threading.Lock,
                 wake: threading.Event) -> None:
        self._service = service
        self._lock = lock
        self._wake = wake

    def __getattr__(self, name: str) -> Any:
        method = getattr(self._service, name)

        def call(*args: Any, **kwargs: Any) -> Any:
            with self._lock:
                result = method(*args, **kwargs)
            if name in ("submit", "submit_sweep"):
                self._wake.set()
            return result

        return call


class _InnerServer(ThreadingHTTPServer):
    """The socket server, carrying the bridge for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 bridge: _Bridge) -> None:
        super().__init__(address, _Handler)
        self.bridge = bridge


class ServiceHTTPServer:
    """A running scenario service behind stdlib HTTP.

    Args:
        service: The core to serve (owns executor, cache, metrics).
        host: Bind address (default loopback).
        port: Bind port; 0 picks a free one (see :attr:`port`).

    Lifecycle: :meth:`start` spins up the accept loop and the
    dispatcher thread that pumps queued jobs; :meth:`stop` shuts both
    down and closes the core.  Usable as a context manager.
    """

    def __init__(self, service: ScenarioService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._bridge = _Bridge(service, self._lock, self._wake)
        self._httpd = _InnerServer((host, port), self._bridge)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        """``http://host:port`` for clients."""
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _dispatch_loop(self) -> None:
        """Pump queued jobs until stopped; idle-waits on the wake event."""
        while not self._stop.is_set():
            with self._lock:
                worked = self.service.pump_once()
            if not worked:
                self._wake.wait(timeout=0.05)
                self._wake.clear()

    def start(self, dispatch: bool = True) -> "ServiceHTTPServer":
        """Start the accept loop (and dispatcher); returns ``self``.

        ``dispatch=False`` starts only the accept loop, leaving
        admitted jobs queued — deterministic-admission tests use it to
        observe 429s without racing the worker.
        """
        if self._threads:
            raise RuntimeError("server already started")
        self._threads = [
            threading.Thread(target=self._httpd.serve_forever,
                             name="repro-serve-accept", daemon=True)]
        if dispatch:
            self._threads.append(
                threading.Thread(target=self._dispatch_loop,
                                 name="repro-serve-dispatch",
                                 daemon=True))
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drain the dispatcher, close the core."""
        self._stop.set()
        self._wake.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        with self._lock:
            self.service.close()

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
