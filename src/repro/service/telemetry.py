"""The service's telemetry store: per-run snapshots plus the fleet view.

The federation seam (:mod:`repro.observability.federation`) gives every
observed run a deterministic :class:`TelemetrySnapshot`; this store is
where the service keeps them.  It mirrors the
:class:`~repro.service.cache.ResultCache` shape — an LRU keyed by job
id, indexed by snapshot digest — and adds the operator's view on top:
:meth:`fleet` folds every *retained* snapshot into one merged fleet
dict (the same bytes :func:`~repro.observability.federation.merge_snapshots`
would produce offline), which is what
``GET /v1/metrics?format=openmetrics`` exposes under the
``plane="fleet"`` label.

Retention is the only approximation: beyond ``capacity`` the least
recently fetched snapshot is evicted and leaves the fleet view.  The
merge itself stays exact and order-independent over whatever is
retained.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any

from ..observability.federation import merge_snapshots

__all__ = ["TelemetryStore"]


class TelemetryStore:
    """LRU store of telemetry-snapshot JSON keyed by job id.

    Args:
        capacity: Maximum retained snapshots; the least recently used
            entry is evicted beyond it (and leaves the fleet view).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, tuple[str, str]] = OrderedDict()
        self._by_digest: dict[str, str] = {}
        self.evictions = 0

    def put(self, job_id: str, telemetry_json: str) -> str:
        """Store one run's snapshot JSON; returns its SHA-256 digest."""
        digest = hashlib.sha256(
            telemetry_json.encode("utf-8")).hexdigest()
        if job_id in self._entries:
            self._entries.move_to_end(job_id)
            return digest
        self._entries[job_id] = (telemetry_json, digest)
        self._by_digest[digest] = job_id
        if len(self._entries) > self.capacity:
            _, (_, old_digest) = self._entries.popitem(last=False)
            self._by_digest.pop(old_digest, None)
            self.evictions += 1
        return digest

    def get(self, job_id: str) -> tuple[str, str] | None:
        """``(telemetry_json, digest)`` for ``job_id``, or ``None``."""
        entry = self._entries.get(job_id)
        if entry is None:
            return None
        self._entries.move_to_end(job_id)
        return entry

    def by_digest(self, digest: str) -> str | None:
        """The stored snapshot JSON whose digest is ``digest``, or None."""
        job_id = self._by_digest.get(digest)
        if job_id is None:
            return None
        entry = self.get(job_id)
        return None if entry is None else entry[0]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._entries

    def fleet(self) -> dict[str, Any] | None:
        """The merged fleet view over every retained snapshot.

        ``None`` when nothing has been captured yet (an empty merge is
        an error by contract, not an empty document).
        """
        if not self._entries:
            return None
        return merge_snapshots(
            json.loads(text) for text, _ in self._entries.values())

    def statistics(self) -> dict[str, float]:
        """Retention counters for the health document."""
        return {
            "size": float(len(self._entries)),
            "capacity": float(self.capacity),
            "evictions": float(self.evictions),
        }
