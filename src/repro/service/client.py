"""A minimal polling client for the scenario service HTTP API.

Used by the CI smoke test and ``examples/scenario_service.py``; a
deliberate thin wrapper over :mod:`urllib.request` so it needs
nothing the standard library does not ship.  The client understands
the service's degradation vocabulary: 429/503 responses raise
:class:`ServiceError` carrying the parsed ``Retry-After`` hint, so a
polite caller can honor the back-off the server asked for.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """A non-success response from the service.

    Attributes:
        status: The HTTP status code.
        reason: The service's machine-readable reason (may be empty).
        retry_after: Parsed ``Retry-After`` hint in seconds (0 when
            the server sent none — i.e. retrying will not help).
        body: The parsed JSON error body (may be empty).
    """

    def __init__(self, status: int, reason: str, retry_after: float,
                 body: dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {reason or 'error'}")
        self.status = status
        self.reason = reason
        self.retry_after = retry_after
        self.body = body


class ServiceClient:
    """Talks to one :class:`~repro.service.http.ServiceHTTPServer`.

    Args:
        base_url: ``http://host:port`` of a running service.
        tenant: Tenant name attached to every request (``X-Tenant``).
        timeout: Socket timeout per request, wall-clock seconds.
    """

    def __init__(self, base_url: str, tenant: str = "public",
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: str | None = None) -> tuple[int, dict[str, str],
                                                   str]:
        request = urllib.request.Request(
            self.base_url + path,
            data=body.encode("utf-8") if body is not None else None,
            method=method,
            headers={"X-Tenant": self.tenant,
                     "Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return (response.status, dict(response.headers),
                        response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read().decode("utf-8")

    def _call(self, method: str, path: str,
              body: str | None = None) -> tuple[dict[str, str], str]:
        """One request; raises :class:`ServiceError` beyond 2xx."""
        status, headers, text = self._request(method, path, body)
        if 200 <= status < 300:
            return headers, text
        try:
            parsed = json.loads(text) if text else {}
        except json.JSONDecodeError:
            parsed = {"raw": text}
        raise ServiceError(status, str(parsed.get("reason", "")),
                           float(headers.get("Retry-After", 0) or 0),
                           parsed)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def submit(self, spec_json: str) -> dict[str, Any]:
        """Submit a spec; returns the admission body (202 or cached 200).

        Raises :class:`ServiceError` on 400/429/503 — inspect
        ``retry_after`` to honor the server's back-off hint.
        """
        _, text = self._call("POST", "/v1/runs", spec_json)
        return json.loads(text)

    def submit_sweep(self, spec_json: str,
                     axes: dict[str, Any]) -> dict[str, Any]:
        """Submit a sweep (spec + grid axes, admitted atomically)."""
        body = json.dumps({"spec": json.loads(spec_json), "axes": axes})
        _, text = self._call("POST", "/v1/sweeps", body)
        return json.loads(text)

    def status(self, job_id: str) -> dict[str, Any]:
        """The job's status document."""
        _, text = self._call("GET", f"/v1/runs/{job_id}")
        return json.loads(text)

    def events(self, job_id: str) -> dict[str, Any]:
        """The job's state-transition history (progress stream)."""
        _, text = self._call("GET", f"/v1/runs/{job_id}/events")
        return json.loads(text)

    def result(self, job_id: str) -> tuple[str, str]:
        """``(digest, result_json)`` for a finished job.

        Raises :class:`ServiceError` with status 409 while the job is
        still queued or running (``retry_after`` carries the poll
        hint), 410 if it failed or expired.
        """
        headers, text = self._call("GET", f"/v1/runs/{job_id}/result")
        return headers.get("X-Result-Digest", ""), text

    def result_by_digest(self, digest: str) -> str:
        """The cached result JSON whose digest is ``digest``."""
        _, text = self._call("GET", f"/v1/results/{digest}")
        return text

    def sweep_status(self, sweep_id: str) -> dict[str, Any]:
        """Child-state tallies for one sweep."""
        _, text = self._call("GET", f"/v1/sweeps/{sweep_id}")
        return json.loads(text)

    def sweep_result(self, sweep_id: str) -> tuple[str, str]:
        """``(digest, report_json)`` for a finished sweep."""
        headers, text = self._call("GET", f"/v1/sweeps/{sweep_id}/result")
        return headers.get("X-Result-Digest", ""), text

    def tenant_stats(self, tenant: str | None = None) -> dict[str, Any]:
        """Quota occupancy and retry-budget state for a tenant."""
        _, text = self._call("GET",
                             f"/v1/tenants/{tenant or self.tenant}")
        return json.loads(text)

    def health(self) -> dict[str, Any]:
        """The service health document."""
        _, text = self._call("GET", "/v1/health")
        return json.loads(text)

    def metrics(self) -> dict[str, Any]:
        """The service metrics snapshot."""
        _, text = self._call("GET", "/v1/metrics")
        return json.loads(text)

    def metrics_openmetrics(self) -> str:
        """The OpenMetrics text exposition (service + fleet planes)."""
        _, text = self._call("GET", "/v1/metrics?format=openmetrics")
        return text

    def run_telemetry(self, job_id: str) -> tuple[str, str]:
        """``(digest, telemetry_json)`` for one observed run.

        Raises :class:`ServiceError` 404 when the service is not
        observing (or the snapshot was evicted / served from cache),
        409 while the job has not executed yet.
        """
        headers, text = self._call("GET",
                                   f"/v1/runs/{job_id}/telemetry")
        return headers.get("X-Telemetry-Digest", ""), text

    def telemetry_by_digest(self, digest: str) -> str:
        """The retained telemetry snapshot whose digest is ``digest``."""
        _, text = self._call("GET", f"/v1/telemetry/{digest}")
        return text

    def service_events(self) -> list[dict[str, Any]]:
        """The structured service event log, parsed from JSON Lines."""
        _, text = self._call("GET", "/v1/events")
        return [json.loads(line) for line in text.splitlines() if line]

    def slo(self) -> dict[str, Any]:
        """The service's SLO report and alert log."""
        _, text = self._call("GET", "/v1/slo")
        return json.loads(text)

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> tuple[str, str]:
        """Poll until the job finishes; returns ``(digest, result_json)``.

        Wall-clock polling belongs in clients, never in the service's
        deterministic artifacts.  Raises :class:`ServiceError` (410)
        if the job failed, or :class:`TimeoutError` past ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.result(job_id)
            except ServiceError as exc:
                if exc.status != 409:
                    raise
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still running after {timeout}s")
            time.sleep(poll)
