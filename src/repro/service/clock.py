"""The service's logical clock: deterministic time for a live server.

Every resilience and observability component in this repository reads
time from an object with a ``now`` attribute — usually a
:class:`~repro.sim.engine.Simulator`.  The service is not a simulation,
but its dependability machinery (circuit-breaker recovery timeouts,
SLO burn-rate windows, queue deadlines) still needs a clock, and a
*wall* clock would make every drill and test nondeterministic.

:class:`ServiceClock` is the answer: a monotonic logical clock the
service advances by a fixed quantum per unit of work processed.  Under
the deterministic drill the sequence of advances is a pure function of
the request sequence, so breaker transitions and the alert log are
byte-reproducible; under the HTTP transport the quantum still advances
per pump step, keeping the same machinery live without threading
wall-clock noise into any digestable artifact.
"""

from __future__ import annotations

__all__ = ["ServiceClock"]


class ServiceClock:
    """A monotonic logical clock with the ``sim``-compatible ``now``.

    Duck-type compatible with the ``sim`` argument of
    :class:`~repro.resilience.breakers.CircuitBreaker` and
    :class:`~repro.observability.streaming.StreamingPipeline` (both
    only read ``.now``; the service drives telemetry ticks externally
    via :meth:`~repro.observability.streaming.StreamingPipeline.advance`).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock must start at >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current logical time in service-seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` (>= 0); returns the new now."""
        if delta < 0:
            raise ValueError(f"clock cannot move backwards ({delta})")
        self._now += delta
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServiceClock now={self._now}>"
