"""Multi-tenant admission control for the scenario service (C17).

The service-tier sibling of
:class:`~repro.resilience.shedding.LoadSheddingAdmission`: where that
controller sheds *tasks* when datacenter utilization crosses a
threshold, this one sheds *requests* when the service's own capacity
signals — a bounded submission queue and per-tenant quotas — say that
admitting more work would only grow latency for everyone.  Rejection
is graceful degradation, not failure: every shed decision carries a
``retry_after`` hint the transport turns into a 429/503 +
``Retry-After`` response, and shed requests are accounted separately
from availability failures (turning work away politely is the
*success* mode of an overloaded dependable service).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionDecision", "ServiceAdmission"]


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check.

    Attributes:
        admitted: Whether the request may enter the queue.
        reason: ``"ok"``, ``"queue-full"``, or ``"tenant-quota"``.
        retry_after: Suggested client back-off in service-seconds
            (0.0 when admitted).
    """

    admitted: bool
    reason: str = "ok"
    retry_after: float = 0.0


class ServiceAdmission:
    """Bounded-queue, per-tenant-quota admission control.

    Args:
        max_queue: Jobs that may be queued or running at once across
            all tenants (the global bounded queue).
        tenant_quota: Jobs one tenant may have queued or running at
            once; the isolation that stops one noisy tenant from
            starving the rest.
        retry_after: Back-off hint attached to shed decisions.

    The controller tracks occupancy itself: :meth:`admit` reserves a
    slot, :meth:`release` returns it when the job reaches a terminal
    state.  :meth:`statistics` mirrors
    :meth:`~repro.resilience.shedding.LoadSheddingAdmission.statistics`
    so operators read one vocabulary across both tiers.
    """

    def __init__(self, max_queue: int = 64, tenant_quota: int = 16,
                 retry_after: float = 5.0) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        self.max_queue = max_queue
        self.tenant_quota = tenant_quota
        self.retry_after = retry_after
        self.occupancy = 0
        self.per_tenant: dict[str, int] = {}
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_tenant_quota = 0

    def admit(self, tenant: str, slots: int = 1) -> AdmissionDecision:
        """Try to reserve ``slots`` queue slots for ``tenant``.

        Multi-slot admission is all-or-nothing (a sweep admits every
        grid point or none), so a half-admitted sweep can never wedge
        the queue.
        """
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if self.occupancy + slots > self.max_queue:
            self.shed_queue_full += 1
            return AdmissionDecision(False, "queue-full", self.retry_after)
        held = self.per_tenant.get(tenant, 0)
        if held + slots > self.tenant_quota:
            self.shed_tenant_quota += 1
            return AdmissionDecision(False, "tenant-quota",
                                     self.retry_after)
        self.occupancy += slots
        self.per_tenant[tenant] = held + slots
        self.admitted += 1
        return AdmissionDecision(True)

    def release(self, tenant: str, slots: int = 1) -> None:
        """Return ``slots`` slots when jobs reach a terminal state."""
        if slots < 1:
            raise ValueError("slots must be >= 1")
        held = self.per_tenant.get(tenant, 0)
        if slots > held or slots > self.occupancy:
            raise ValueError(
                f"release({tenant!r}, {slots}) exceeds held slots "
                f"({held} tenant / {self.occupancy} total)")
        self.occupancy -= slots
        remaining = held - slots
        if remaining:
            self.per_tenant[tenant] = remaining
        else:
            del self.per_tenant[tenant]

    def tenant_occupancy(self, tenant: str) -> int:
        """Slots ``tenant`` currently holds (queued + running)."""
        return self.per_tenant.get(tenant, 0)

    def statistics(self) -> dict[str, float]:
        """Counts of offered, admitted, and shed requests.

        Same shape as the task-tier controller's statistics —
        ``offered`` / ``admitted`` / ``shed`` / ``shed_fraction`` —
        plus the per-cause split and current occupancy.
        """
        shed = self.shed_queue_full + self.shed_tenant_quota
        offered = self.admitted + shed
        return {
            "offered": float(offered),
            "admitted": float(self.admitted),
            "shed": float(shed),
            "shed_queue_full": float(self.shed_queue_full),
            "shed_tenant_quota": float(self.shed_tenant_quota),
            "shed_fraction": shed / offered if offered else 0.0,
            "occupancy": float(self.occupancy),
        }
