"""Execution tiers for the service: inline (deterministic) and pooled.

The service core never talks to ``multiprocessing`` directly; it calls
an *executor* with ``run(fingerprint, spec_json, attempt)`` and
receives result JSON or an :class:`ExecutionFailure` describing how
the attempt died.  Two implementations:

- :class:`InlineExecutor` runs specs in-process.  It is deterministic
  and accepts a *crash plan* (fingerprint → number of attempts to
  fail), which is how the chaos drill injects worker crashes without
  any real process churn — the retried attempt then produces the
  byte-identical result a clean run would, because spec runs are pure
  functions of their JSON.
- :class:`PoolExecutor` keeps a **resident warm process pool** (the
  same economics the sweep benchmarks measured: ~10x over cold
  processes) and converts the three ways a worker can die — raising,
  crashing, hanging — into typed :class:`ExecutionFailure`\\ s,
  rebuilding the pool when an incident poisons it.
"""

from __future__ import annotations

from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import (
    BrokenProcessPool,
    ProcessPoolExecutor,
)
from typing import Any, Mapping

__all__ = ["ExecutionFailure", "InlineExecutor", "PoolExecutor"]


class ExecutionFailure(RuntimeError):
    """One failed execution attempt, typed by how it failed.

    Attributes:
        kind: ``"crash"`` (worker process died), ``"timeout"`` (worker
            hung past the deadline), or ``"error"`` (the run raised).
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


def _pool_worker_run(spec_json: str) -> str:
    """Worker-process entry point: spec JSON in, result JSON out.

    Module-level so it pickles under every multiprocessing start
    method; rehydrating from JSON keeps the parallel path on the same
    serialization contract the round-trip tests pin.
    """
    from ..scenario.spec import ScenarioSpec
    return ScenarioSpec.from_json(spec_json).run().to_json()


def _pool_worker_run_observed(spec_json: str,
                              run_id: str) -> tuple[str, str]:
    """Observed worker entry point: ships telemetry beside the result.

    The federated-capture seam: the worker arms an Observer around the
    run and returns ``(result JSON, telemetry JSON)``.  Result bytes
    stay identical to the unobserved path (see
    :func:`~repro.scenario.sweep.run_spec_observed`).
    """
    from ..scenario.sweep import run_spec_observed
    return run_spec_observed(spec_json, run_id)


class InlineExecutor:
    """In-process, deterministic executor with fault injection.

    Args:
        crash_plan: Optional ``{fingerprint: n}`` map — the first
            ``n`` attempts for that spec raise
            ``ExecutionFailure("crash")``, emulating a worker that
            died mid-run.  Attempt numbering starts at 0, so a plan of
            ``{fp: 1}`` fails once and succeeds on the retry.
    """

    def __init__(self,
                 crash_plan: Mapping[str, int] | None = None) -> None:
        self.crash_plan = dict(crash_plan) if crash_plan else {}
        self.runs = 0
        self.injected_crashes = 0

    def run(self, fingerprint: str, spec_json: str, attempt: int,
            observe_run_id: str | None = None) -> Any:
        """Execute one attempt; returns result JSON or raises.

        With ``observe_run_id`` set, the run is federated-observed and
        returns ``(result JSON, telemetry JSON)`` instead.
        """
        if attempt < self.crash_plan.get(fingerprint, 0):
            self.injected_crashes += 1
            raise ExecutionFailure(
                "crash", f"injected worker crash (fingerprint "
                         f"{fingerprint}, attempt {attempt})")
        self.runs += 1
        try:
            if observe_run_id is not None:
                return _pool_worker_run_observed(spec_json, observe_run_id)
            return _pool_worker_run(spec_json)
        except ExecutionFailure:
            raise
        except Exception as exc:  # noqa: BLE001 - typed for the caller
            raise ExecutionFailure(
                "error", f"{type(exc).__name__}: {exc}") from exc

    def close(self) -> None:
        """Nothing to release for the inline tier."""


class PoolExecutor:
    """A resident warm worker pool with crash/hang detection.

    Args:
        workers: Process count kept warm across requests.
        timeout: Wall-clock seconds one attempt may take before the
            worker is declared hung; a hung pool is torn down and
            rebuilt so one poisoned spec cannot wedge the service.
            ``None`` waits forever (not recommended for serving).
    """

    def __init__(self, workers: int = 2,
                 timeout: float | None = 300.0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive when given")
        self.workers = workers
        self.timeout = timeout
        self.rebuilds = 0
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _rebuild(self) -> None:
        """Tear down a poisoned pool; the next run starts a fresh one."""
        pool, self._pool = self._pool, None
        self.rebuilds += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def run(self, fingerprint: str, spec_json: str, attempt: int,
            observe_run_id: str | None = None) -> Any:
        """Execute one attempt on the warm pool; returns result JSON.

        Raises :class:`ExecutionFailure` kind ``"crash"`` when the
        worker process died (broken pool — rebuilt), ``"timeout"``
        when the attempt exceeded the deadline (pool rebuilt so the
        hung worker cannot absorb further work), or ``"error"`` when
        the run itself raised (pool stays warm).  With
        ``observe_run_id`` set, the worker runs federated-observed and
        the return value is ``(result JSON, telemetry JSON)``.
        """
        pool = self._ensure_pool()
        try:
            if observe_run_id is not None:
                future = pool.submit(_pool_worker_run_observed,
                                     spec_json, observe_run_id)
            else:
                future = pool.submit(_pool_worker_run, spec_json)
        except BrokenProcessPool as exc:
            self._rebuild()
            raise ExecutionFailure(
                "crash", f"worker pool broken at submit: {exc}") from exc
        try:
            return future.result(timeout=self.timeout)
        except BrokenProcessPool as exc:
            self._rebuild()
            raise ExecutionFailure(
                "crash", f"worker process died mid-run: {exc}") from exc
        except FutureTimeout as exc:
            self._rebuild()
            raise ExecutionFailure(
                "timeout", f"worker hung past {self.timeout}s on "
                           f"fingerprint {fingerprint}") from exc
        except Exception as exc:  # noqa: BLE001 - typed for the caller
            raise ExecutionFailure(
                "error", f"{type(exc).__name__}: {exc}") from exc

    def close(self) -> None:
        """Shut the resident pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
