"""Job records: the service's unit of admitted work.

One :class:`Job` tracks a single admitted scenario run from submission
to a terminal state, including its full state-transition history on
the service clock — the raw material for progress streaming
(``GET /v1/runs/<id>/events``) and for the drill's determinism checks.
All timestamps are logical :class:`~repro.service.clock.ServiceClock`
seconds; no wall-clock value ever enters a job record, so a drill's
job table is byte-reproducible.
"""

from __future__ import annotations

import enum
from typing import Any

__all__ = ["JobState", "Job", "JobTable"]


class JobState(enum.Enum):
    """Lifecycle of one admitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    EXPIRED = "expired"

    @property
    def terminal(self) -> bool:
        """Whether the state ends the job's lifecycle."""
        return self in (JobState.DONE, JobState.FAILED, JobState.EXPIRED)


class Job:
    """One admitted scenario run and its full lifecycle record.

    Attributes:
        job_id: Service-assigned identifier (``run-000001``).
        tenant: The submitting tenant.
        spec_json: The spec exactly as admitted (canonical JSON).
        fingerprint: ``spec.fingerprint()`` — the cache key.
        name: The scenario's declared name (for listings).
        state: Current :class:`JobState`.
        attempts: Execution attempts consumed so far.
        submitted_at / started_at / finished_at: Service-clock stamps.
        error: Last failure description (``None`` while healthy).
        result_json / result_digest: Set when the job completes.
        cached: Whether the result came from the cache without a run.
        sweep_id: Owning sweep, when the job is one grid point.
        transitions: ``(time, state)`` history, oldest first.
    """

    __slots__ = ("job_id", "tenant", "spec_json", "fingerprint", "name",
                 "state", "attempts", "submitted_at", "started_at",
                 "finished_at", "error", "result_json", "result_digest",
                 "cached", "sweep_id", "transitions")

    def __init__(self, job_id: str, tenant: str, spec_json: str,
                 fingerprint: str, name: str, submitted_at: float,
                 sweep_id: str | None = None) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.spec_json = spec_json
        self.fingerprint = fingerprint
        self.name = name
        self.state = JobState.QUEUED
        self.attempts = 0
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error: str | None = None
        self.result_json: str | None = None
        self.result_digest: str | None = None
        self.cached = False
        self.sweep_id = sweep_id
        self.transitions: list[tuple[float, str]] = [
            (submitted_at, JobState.QUEUED.value)]

    def transition(self, state: JobState, now: float) -> None:
        """Move to ``state`` at service time ``now`` (history recorded)."""
        if self.state.terminal:
            raise RuntimeError(
                f"job {self.job_id} is already terminal ({self.state.value})")
        self.state = state
        self.transitions.append((now, state.value))
        if state is JobState.RUNNING and self.started_at is None:
            self.started_at = now
        if state.terminal:
            self.finished_at = now

    def status(self) -> dict[str, Any]:
        """The job as a JSON-ready status document."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "state": self.state.value,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result_digest": self.result_digest,
            "cached": self.cached,
            "sweep_id": self.sweep_id,
            "transitions": [[time, state]
                            for time, state in self.transitions],
        }


class JobTable:
    """All jobs the service has accepted, by id and submission order."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._counter = 0

    def new_id(self, prefix: str = "run") -> str:
        """The next job identifier (``run-000001``, ``sweep-000002``...)."""
        self._counter += 1
        return f"{prefix}-{self._counter:06d}"

    def add(self, job: Job) -> Job:
        """Register a job (ids are unique by construction)."""
        if job.job_id in self._jobs:
            raise ValueError(f"duplicate job id {job.job_id}")
        self._jobs[job.job_id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        """The job called ``job_id``, or ``None``."""
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Job tally per state value (states with zero jobs included)."""
        tally = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            tally[job.state.value] += 1
        return tally
