"""Prometheus/OpenMetrics text exposition of metrics snapshots.

The operator surface speaks the lingua franca: a
:meth:`~repro.observability.metrics.MetricsRegistry.snapshot` (or a
federated fleet view's ``metrics`` section) renders to the OpenMetrics
text format, so ``GET /v1/metrics?format=openmetrics`` scrapes
directly into Prometheus and friends.

Name mapping (documented in docs/OBSERVABILITY.md): the repository's
``subsystem.noun_unit`` instrument names become
``repro_<subsystem>_<noun_unit>`` — dots to underscores under a fixed
``repro_`` prefix — with the OpenMetrics ``_total`` suffix appended to
counter samples.  Histograms expose the usual cumulative
``_bucket{le="..."}`` series (upper-bound inclusive, matching the
registry's Prometheus-style bucket semantics) plus ``_sum`` and
``_count``.  Every exposition ends with ``# EOF``.

Multiple planes (the service's own registry, the federated fleet
merge) render into one exposition with a distinguishing label;
samples group under a single ``# TYPE`` declaration per metric name,
and one name claiming two different instrument kinds across planes is
an error rather than an invalid document.
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Sequence

__all__ = ["openmetrics_name", "render_openmetrics"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed prefix namespacing every exposed series.
PREFIX = "repro_"


def openmetrics_name(name: str) -> str:
    """Map an instrument name to its exposed OpenMetrics name.

    ``scheduler.wait_time`` → ``repro_scheduler_wait_time``.  Raises
    ``ValueError`` for names that would not survive the exposition
    grammar even after the dot mapping.
    """
    exposed = PREFIX + name.replace(".", "_").replace("-", "_")
    if not _NAME_OK.match(exposed):
        raise ValueError(f"metric name {name!r} cannot be exposed as "
                         f"OpenMetrics ({exposed!r} is not a valid name)")
    return exposed


def _format_value(value: float) -> str:
    """Deterministic sample-value formatting (integers stay integral)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labelset(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    for key in labels:
        if not _LABEL_OK.match(key):
            raise ValueError(f"invalid label name {key!r}")
    body = ",".join(
        f'{key}="{_escape(labels[key])}"' for key in sorted(labels))
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _merge_label(labels: Mapping[str, str], extra: Mapping[str, str],
                 ) -> dict[str, str]:
    merged = dict(labels)
    merged.update(extra)
    return merged


def render_openmetrics(planes: Sequence[tuple[Mapping[str, str],
                                              Mapping[str, Any]]]) -> str:
    """Render metrics snapshots as one OpenMetrics text exposition.

    Args:
        planes: ``(labels, snapshot)`` pairs; ``snapshot`` is a
            registry-snapshot dict (``counters`` / ``gauges`` /
            ``histograms`` sections) and ``labels`` distinguish the
            plane every one of its samples belongs to (e.g.
            ``{"plane": "service"}`` vs ``{"plane": "fleet"}``).

    Output is deterministic: metric families sort by exposed name,
    and within a family the planes appear in their argument order.
    Raises ``ValueError`` when one exposed name claims two different
    instrument kinds across planes.
    """
    families: dict[str, dict[str, Any]] = {}
    for labels, snapshot in planes:
        sections = (("counter", snapshot.get("counters", {})),
                    ("gauge", snapshot.get("gauges", {})),
                    ("histogram", snapshot.get("histograms", {})))
        for kind, entries in sections:
            for name, payload in entries.items():
                exposed = openmetrics_name(name)
                family = families.setdefault(
                    exposed, {"kind": kind, "source": name, "samples": []})
                if family["kind"] != kind:
                    raise ValueError(
                        f"metric {exposed!r} is a {family['kind']} in one "
                        f"plane and a {kind} in another; rename one "
                        f"instrument")
                family["samples"].append((dict(labels), payload))
    lines: list[str] = []
    for exposed in sorted(families):
        family = families[exposed]
        kind = family["kind"]
        lines.append(f"# HELP {exposed} repro instrument "
                     f"{family['source']}")
        lines.append(f"# TYPE {exposed} {kind}")
        for labels, payload in family["samples"]:
            if kind == "counter":
                lines.append(f"{exposed}_total{_labelset(labels)} "
                             f"{_format_value(payload)}")
            elif kind == "gauge":
                lines.append(f"{exposed}{_labelset(labels)} "
                             f"{_format_value(payload)}")
            else:
                lines.extend(_histogram_lines(exposed, labels, payload))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _histogram_lines(exposed: str, labels: Mapping[str, str],
                     entry: Mapping[str, Any]) -> list[str]:
    """The cumulative bucket / sum / count series of one histogram."""
    lines: list[str] = []
    cumulative = 0
    for boundary, count in zip(entry["boundaries"], entry["counts"]):
        cumulative += count
        bucket_labels = _merge_label(labels, {"le": _format_value(boundary)})
        lines.append(f"{exposed}_bucket{_labelset(bucket_labels)} "
                     f"{cumulative}")
    overflow_labels = _merge_label(labels, {"le": "+Inf"})
    lines.append(f"{exposed}_bucket{_labelset(overflow_labels)} "
                 f"{entry['count']}")
    lines.append(f"{exposed}_sum{_labelset(labels)} "
                 f"{_format_value(entry['sum'])}")
    lines.append(f"{exposed}_count{_labelset(labels)} {entry['count']}")
    return lines
