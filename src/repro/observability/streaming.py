"""Streaming telemetry: windowed aggregation evaluated *during* the run.

PR 3's :class:`~repro.observability.metrics.MetricsRegistry` is
pull-based: instruments accumulate and somebody snapshots them at the
end.  The paper's self-awareness principle (P4, C2) asks for more —
ecosystems that judge their own behaviour *while running*.  This
module adds that judging substrate: a :class:`StreamingPipeline`
samples registry instruments at sim-time-scheduled evaluation ticks
and reduces them over **tumbling or sliding windows** into per-window
aggregates (deltas and rates for counters, distribution summaries for
gauges, count/sum/p50/p95/p99 for histograms).

Determinism contract (same as the rest of the observability layer):

- Ticks happen at exact multiples of the pipeline interval on the
  *simulated* clock, either as real simulator events
  (:meth:`StreamingPipeline.attach`, built on
  :meth:`~repro.sim.engine.Simulator.every`) or driven externally
  between events (:meth:`StreamingPipeline.advance`, used by the chaos
  harness so telemetry never keeps an otherwise-drained simulation
  alive).
- A tick at time ``T`` observes the registry state left by all events
  processed strictly before ``T`` was reached; window aggregates are
  pure functions of those samples.  Fixed seed in, byte-identical
  :meth:`StreamingPipeline.series_json` out.
- Gauge windows are summarized through the same
  :func:`repro.sim.monitor.summarize` statistics (backed by a
  :class:`repro.sim.monitor.Monitor` sample store) that the rest of
  the repository uses, so there is exactly one sampling/summary path.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..sim.monitor import Monitor
from .export import dumps_deterministic
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, \
    quantile_from_counts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Process, Simulator

__all__ = ["Window", "StreamSeries", "StreamingPipeline", "watch_all"]

#: Tolerance for "is this tick time due yet" comparisons; purely guards
#: against float noise in ``k * interval`` accumulation.
_TIME_EPS = 1e-9


class Window:
    """A window specification: ``width`` seconds, emitted every ``stride``.

    ``stride=None`` (the default) makes the window **tumbling**: it
    emits one aggregate per ``width``, over disjoint spans.  A
    ``stride`` smaller than ``width`` makes it **sliding**: every
    ``stride`` seconds it emits an aggregate over the trailing
    ``width`` seconds.  Both must be positive multiples of the
    pipeline's tick interval.
    """

    __slots__ = ("width", "stride")

    def __init__(self, width: float, stride: float | None = None) -> None:
        width = float(width)
        stride = width if stride is None else float(stride)
        if width <= 0 or stride <= 0:
            raise ValueError(f"window width/stride must be positive, got "
                             f"width={width} stride={stride}")
        if stride > width:
            raise ValueError(f"stride {stride} exceeds width {width}; "
                             "that would drop observations between windows")
        self.width = width
        self.stride = stride

    @property
    def tumbling(self) -> bool:
        """Whether the window emits disjoint (non-overlapping) spans."""
        return self.stride == self.width

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "tumbling" if self.tumbling else "sliding"
        return f"<Window {kind} width={self.width} stride={self.stride}>"


class StreamSeries:
    """The time-ordered window aggregates emitted for one instrument."""

    __slots__ = ("name", "points")

    def __init__(self, name: str) -> None:
        self.name = name
        #: ``(window_end_time, aggregates)`` pairs in emission order.
        self.points: list[tuple[float, dict[str, float]]] = []

    def latest(self) -> dict[str, float] | None:
        """The most recent window's aggregates, if any were emitted."""
        return self.points[-1][1] if self.points else None

    def values(self, key: str) -> list[float]:
        """One aggregate column over time (points lacking it are skipped)."""
        return [aggs[key] for _, aggs in self.points if key in aggs]

    def __len__(self) -> int:
        return len(self.points)


class _Watch:
    """Per-instrument pipeline state: window spec and sample ring."""

    __slots__ = ("window", "width_ticks", "stride_ticks", "samples",
                 "monitor", "ticks")

    def __init__(self, window: Window, width_ticks: int, stride_ticks: int,
                 baseline: tuple[float, Any]) -> None:
        self.window = window
        self.width_ticks = width_ticks
        self.stride_ticks = stride_ticks
        #: ``(time, state)`` ring: the window-start sample sits
        #: ``width_ticks`` entries behind the newest one.
        self.samples: deque[tuple[float, Any]] = deque(
            [baseline], maxlen=width_ticks + 1)
        #: Gauge sample store — the repository's one sampling path.
        self.monitor = Monitor()
        self.ticks = 0


class StreamingPipeline:
    """Windowed aggregation of registry instruments at evaluation ticks.

    Args:
        sim: The simulator whose virtual clock times the ticks.
        metrics: The registry to sample (usually ``observer.metrics``).
        interval: Tick period in simulated seconds; all window widths
            and strides must be positive multiples of it.

    Two ways to drive the ticks:

    - :meth:`attach` schedules a real tick process on the simulator
      (via :meth:`~repro.sim.engine.Simulator.every`) — natural for
      scenarios that run to a horizon.
    - :meth:`advance` evaluates all due ticks up to a given time
      without enqueuing any simulator event — used by harnesses that
      drain the event queue and must not let telemetry keep the run
      alive (:meth:`repro.resilience.chaos.ChaosExperiment.run`).

    Use one or the other for a given run, not both.
    """

    def __init__(self, sim: "Simulator", metrics: MetricsRegistry,
                 interval: float = 5.0) -> None:
        if interval <= 0:
            raise ValueError(f"tick interval must be positive, got {interval}")
        self.sim = sim
        self.metrics = metrics
        self.interval = float(interval)
        self._watches: dict[str, _Watch] = {}
        self.series: dict[str, StreamSeries] = {}
        #: Subscribers called after every tick as ``cb(time, emitted)``
        #: where ``emitted`` maps instrument name to the aggregates the
        #: tick produced (empty when no window ended at this tick).
        self.on_tick: list[Callable[[float, dict[str, dict[str, float]]],
                                    None]] = []
        self.ticks = 0
        self.last_tick: float | None = None
        self._next_tick = sim.now + self.interval
        self._process: "Process | None" = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def watch(self, name: str, window: Window | None = None) -> StreamSeries:
        """Aggregate instrument ``name`` over ``window`` at every stride.

        The instrument need not exist yet; ticks before it appears
        sample an implicit zero state.  The default window is one
        tumbling tick interval.  Returns the (initially empty)
        :class:`StreamSeries` the aggregates will land in.
        """
        if name in self._watches:
            raise ValueError(f"instrument {name!r} is already watched")
        window = window or Window(self.interval)
        width_ticks = self._as_ticks(window.width, "width")
        stride_ticks = self._as_ticks(window.stride, "stride")
        baseline = (self.sim.now, self._sample(name))
        self._watches[name] = _Watch(window, width_ticks, stride_ticks,
                                     baseline)
        series = StreamSeries(name)
        self.series[name] = series
        return series

    def _as_ticks(self, seconds: float, what: str) -> int:
        ticks = round(seconds / self.interval)
        if ticks < 1 or abs(ticks * self.interval - seconds) > _TIME_EPS:
            raise ValueError(
                f"window {what} {seconds} is not a positive multiple of the "
                f"{self.interval}s tick interval")
        return ticks

    # ------------------------------------------------------------------
    # Tick drivers
    # ------------------------------------------------------------------
    def attach(self, until: float | None = None) -> "Process":
        """Schedule evaluation ticks as real simulator events.

        ``until`` bounds the tick process (ticks stop once the next one
        would land past it) so the pipeline cannot keep an otherwise
        finished simulation running forever.
        """
        if self._process is not None:
            raise RuntimeError("pipeline ticks are already scheduled")
        self._process = self.sim.every(self.interval, self._scheduled_tick,
                                       until=until, name="telemetry-tick")
        return self._process

    def _scheduled_tick(self, now: float) -> None:
        self._next_tick = now + self.interval
        self._tick(now)

    def advance(self, now: float) -> int:
        """Evaluate every tick due at or before ``now``; returns how many.

        Call between simulator events (with ``now = sim.peek()`` before
        each ``step()``, and ``now = sim.now`` once drained): each due
        tick then observes exactly the registry state left by events
        processed before its timestamp, matching what a scheduled tick
        event would have seen.
        """
        fired = 0
        while self._next_tick <= now + _TIME_EPS:
            tick_time = self._next_tick
            self._next_tick = tick_time + self.interval
            self._tick(tick_time)
            fired += 1
        return fired

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _sample(self, name: str) -> Any:
        instrument = self.metrics.get(name)
        if instrument is None:
            return None
        if isinstance(instrument, Counter):
            return instrument.value
        if isinstance(instrument, Gauge):
            return instrument.value
        if isinstance(instrument, Histogram):
            return (instrument.count, instrument.sum,
                    tuple(instrument.counts), instrument.boundaries,
                    instrument._max)
        return None

    def _tick(self, now: float) -> None:
        emitted: dict[str, dict[str, float]] = {}
        for name, watch in self._watches.items():
            state = self._sample(name)
            watch.samples.append((now, state))
            if isinstance(state, float):
                instrument = self.metrics.get(name)
                if isinstance(instrument, Gauge):
                    watch.monitor.record(now, state)
            watch.ticks += 1
            if watch.ticks % watch.stride_ticks == 0:
                aggregates = self._aggregate(name, watch, now)
                if aggregates is not None:
                    self.series[name].points.append((now, aggregates))
                    emitted[name] = aggregates
        self.ticks += 1
        self.last_tick = now
        for callback in tuple(self.on_tick):
            callback(now, emitted)

    def _aggregate(self, name: str, watch: _Watch,
                   now: float) -> dict[str, float] | None:
        instrument = self.metrics.get(name)
        then_time, then_state = watch.samples[0]
        elapsed = now - then_time
        if isinstance(instrument, Counter):
            old = then_state if isinstance(then_state, float) else 0.0
            delta = instrument.value - old
            return {"total": instrument.value, "delta": delta,
                    "rate": delta / elapsed if elapsed > 0 else 0.0}
        if isinstance(instrument, Gauge):
            start = now - watch.window.width
            summary = watch.monitor.window_summary(start, now)
            if not summary["count"]:
                return None
            summary["last"] = instrument.value
            return summary
        if isinstance(instrument, Histogram):
            count, total, counts, boundaries, max_seen = (
                instrument.count, instrument.sum, instrument.counts,
                instrument.boundaries, instrument._max)
            if isinstance(then_state, tuple):
                old_count, old_sum, old_counts = then_state[:3]
            else:
                old_count, old_sum, old_counts = 0, 0.0, (0,) * len(counts)
            delta_count = count - old_count
            delta_counts = [a - b for a, b in zip(counts, old_counts)]
            aggregates = {"count": float(delta_count),
                          "sum": total - old_sum}
            if delta_count:
                aggregates["mean"] = aggregates["sum"] / delta_count
                for label, q in (("p50", 0.50), ("p95", 0.95),
                                 ("p99", 0.99)):
                    aggregates[label] = quantile_from_counts(
                        boundaries, delta_counts, delta_count, q, max_seen)
            else:
                aggregates["mean"] = 0.0
            return aggregates
        return None  # instrument missing (or unknown kind): emit nothing

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic JSON-able view of every emitted series."""
        return {
            "interval": self.interval,
            "ticks": self.ticks,
            "series": {
                name: [[time, aggs] for time, aggs in series.points]
                for name, series in sorted(self.series.items())
            },
        }

    def series_json(self) -> str:
        """The snapshot as a deterministic JSON string (golden-diffable)."""
        return dumps_deterministic(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StreamingPipeline interval={self.interval} "
                f"watches={len(self._watches)} ticks={self.ticks}>")


def watch_all(pipeline: StreamingPipeline, names: Iterable[str],
              window: Window | None = None) -> dict[str, StreamSeries]:
    """Watch several instruments with one shared window spec."""
    return {name: pipeline.watch(name, window) for name in names}
