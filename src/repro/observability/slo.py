"""Declarative SLOs, error budgets, and multi-window burn-rate alerts.

The AtLarge vision (and the paper's sound-operation thread, §3.2/C4)
makes service-level objectives a first-class design input rather than
an after-the-fact report.  This module lets a scenario *declare* its
objectives — availability, latency, goodput, queue wait — and have a
:class:`SLOEngine` judge the running simulation against them at every
telemetry tick:

- each objective defines cumulative **good/bad event totals** read
  from the metrics registry;
- the remaining tolerance is an **error budget** (``1 - target``);
- alerting follows the SRE multi-window **burn-rate** recipe: a rule
  fires when the budget burns faster than ``threshold``× over *both*
  its long and short windows (the long window gives significance, the
  short one makes the alert resolve quickly once the burn stops);
- every fire/resolve transition lands in a deterministic
  :class:`AlertLog` stamped with simulated time.

Determinism: the engine is driven by
:class:`~repro.observability.streaming.StreamingPipeline` ticks, reads
only registry state and the virtual clock, and keeps bounded sample
rings — a fixed-seed run yields a byte-identical
:meth:`AlertLog.json` and :meth:`SLOEngine.report_json` every time.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .export import dumps_deterministic
from .metrics import Histogram, MetricsRegistry
from .streaming import StreamingPipeline

__all__ = [
    "ServiceObjective",
    "AvailabilityObjective",
    "LatencyObjective",
    "QueueWaitObjective",
    "GoodputObjective",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "AlertEvent",
    "AlertLog",
    "SLOEngine",
]


class ServiceObjective:
    """Base class: one declared objective with a compliance target.

    Subclasses define :meth:`good_bad`, the cumulative ``(good, bad)``
    event totals as of ``now``.  Compliance is ``good / (good + bad)``
    and must stay at or above ``target``; the error budget is
    ``1 - target``.

    Args:
        name: Unique objective name (keys reports and alerts).
        target: Required compliance fraction, strictly inside (0, 1) —
            a target of exactly 1 leaves a zero budget for which burn
            rates are undefined.
        description: Optional human-readable intent.
    """

    def __init__(self, name: str, target: float,
                 description: str = "") -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(
                f"SLO {name!r}: target must be strictly inside (0, 1), "
                f"got {target}")
        self.name = name
        self.target = float(target)
        self.description = description

    @property
    def error_budget(self) -> float:
        """Tolerated bad-event fraction: ``1 - target``."""
        return 1.0 - self.target

    def good_bad(self, metrics: MetricsRegistry,
                 now: float) -> tuple[float, float]:
        """Cumulative (good, bad) event totals as of ``now``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"target={self.target}>")


class AvailabilityObjective(ServiceObjective):
    """Success-ratio objective over a good/bad counter pair.

    Example: ``AvailabilityObjective("exec-success",
    good="datacenter.executions_finished",
    bad="datacenter.executions_interrupted", target=0.95)``.
    """

    def __init__(self, name: str, good: str, bad: str,
                 target: float = 0.99, description: str = "") -> None:
        super().__init__(name, target, description)
        self.good_counter = good
        self.bad_counter = bad

    def good_bad(self, metrics: MetricsRegistry,
                 now: float) -> tuple[float, float]:
        """Read the two counters (missing instruments count as zero)."""
        good = metrics.get(self.good_counter)
        bad = metrics.get(self.bad_counter)
        return (good.value if good is not None else 0.0,
                bad.value if bad is not None else 0.0)


class LatencyObjective(ServiceObjective):
    """Fraction of observations at or below a latency threshold.

    Reads a registry histogram; an observation is *good* when it landed
    in a bucket whose upper bound is ``<= threshold``.  For an exact
    split, make ``threshold`` one of the histogram's bucket boundaries
    (otherwise the check is conservative at bucket resolution).
    """

    def __init__(self, name: str, histogram: str, threshold: float,
                 target: float = 0.95, description: str = "") -> None:
        super().__init__(name, target, description)
        if threshold <= 0:
            raise ValueError(f"SLO {name!r}: threshold must be positive")
        self.histogram = histogram
        self.threshold = float(threshold)

    def good_bad(self, metrics: MetricsRegistry,
                 now: float) -> tuple[float, float]:
        """Split the histogram's count at the threshold bucket."""
        instrument = metrics.get(self.histogram)
        if not isinstance(instrument, Histogram):
            return 0.0, 0.0
        cut = bisect_right(instrument.boundaries, self.threshold)
        good = float(sum(instrument.counts[:cut]))
        return good, float(instrument.count) - good


class QueueWaitObjective(LatencyObjective):
    """Latency objective specialized to the scheduler's queue-wait times.

    Declares "``target`` of tasks start within ``threshold`` simulated
    seconds of submission" over ``scheduler.wait_time``.
    """

    def __init__(self, name: str, threshold: float, target: float = 0.95,
                 description: str = "") -> None:
        super().__init__(name, histogram="scheduler.wait_time",
                         threshold=threshold, target=target,
                         description=description)


class GoodputObjective(ServiceObjective):
    """Delivered-work objective against a demanded rate.

    Treats ``target_rate * now`` units of cumulative work (for example
    core-seconds on ``chaos`` counters, completions on
    ``scheduler.tasks_completed``) as demand; the shortfall is the bad
    total, capped delivery the good one.  The burn-rate machinery then
    works unchanged: sustained under-delivery burns the budget.
    """

    def __init__(self, name: str, counter: str, target_rate: float,
                 target: float = 0.9, description: str = "") -> None:
        super().__init__(name, target, description)
        if target_rate <= 0:
            raise ValueError(f"SLO {name!r}: target_rate must be positive")
        self.counter = counter
        self.target_rate = float(target_rate)

    def good_bad(self, metrics: MetricsRegistry,
                 now: float) -> tuple[float, float]:
        """Delivered-vs-demanded work totals as of ``now``."""
        instrument = metrics.get(self.counter)
        achieved = instrument.value if instrument is not None else 0.0
        expected = self.target_rate * now
        return min(achieved, expected), max(0.0, expected - achieved)


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alerting rule.

    Fires when the error budget burns at ``threshold``× the sustainable
    rate over both ``long_window`` and ``short_window`` (sim-seconds);
    resolves once the short-window burn drops back below the threshold.
    """

    name: str
    long_window: float
    short_window: float
    threshold: float

    def __post_init__(self) -> None:
        if self.long_window <= 0 or self.short_window <= 0:
            raise ValueError(f"rule {self.name!r}: windows must be positive")
        if self.short_window > self.long_window:
            raise ValueError(
                f"rule {self.name!r}: short window {self.short_window} "
                f"exceeds long window {self.long_window}")
        if self.threshold <= 0:
            raise ValueError(f"rule {self.name!r}: threshold must be positive")


#: The classic fast-page / slow-burn pair, in simulated seconds.
#: Scenario time scales vary wildly, so treat these as a template and
#: declare windows that match your run's horizon.
DEFAULT_BURN_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule("fast", long_window=300.0, short_window=30.0,
                 threshold=14.4),
    BurnRateRule("slow", long_window=1800.0, short_window=300.0,
                 threshold=6.0),
)


@dataclass(frozen=True)
class AlertEvent:
    """One fire or resolve transition of an (objective, rule) pair."""

    time: float
    slo: str
    rule: str
    kind: str  # "fire" | "resolve"
    burn_short: float
    burn_long: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view (keys sorted downstream for stable bytes)."""
        return {"time": self.time, "slo": self.slo, "rule": self.rule,
                "kind": self.kind, "burn_short": self.burn_short,
                "burn_long": self.burn_long}


class AlertLog:
    """The deterministic, sim-timestamped record of alert transitions."""

    def __init__(self) -> None:
        self.events: list[AlertEvent] = []

    def append(self, event: AlertEvent) -> None:
        """Record one transition (engine-internal)."""
        self.events.append(event)

    def fires(self) -> list[AlertEvent]:
        """All fire transitions, in time order."""
        return [e for e in self.events if e.kind == "fire"]

    def resolves(self) -> list[AlertEvent]:
        """All resolve transitions, in time order."""
        return [e for e in self.events if e.kind == "resolve"]

    def active(self) -> set[tuple[str, str]]:
        """(slo, rule) pairs fired but not yet resolved."""
        live: set[tuple[str, str]] = set()
        for event in self.events:
            key = (event.slo, event.rule)
            if event.kind == "fire":
                live.add(key)
            else:
                live.discard(key)
        return live

    def to_json(self) -> list[dict[str, Any]]:
        """All events as dicts, in emission (= time) order."""
        return [event.to_dict() for event in self.events]

    def json(self) -> str:
        """The log as a deterministic JSON string (golden-diffable)."""
        return dumps_deterministic(self.to_json())

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class _ObjectiveState:
    """Per-objective engine state: bounded (time, good, bad) ring."""

    __slots__ = ("objective", "samples")

    def __init__(self, objective: ServiceObjective, max_samples: int,
                 baseline: tuple[float, float, float]) -> None:
        self.objective = objective
        self.samples = deque([baseline], maxlen=max_samples)


class SLOEngine:
    """Evaluates declared objectives at every streaming-telemetry tick.

    Args:
        pipeline: The tick source; the engine subscribes to
            ``pipeline.on_tick`` and needs no windows of its own.
        objectives: The declared :class:`ServiceObjective` set; names
            must be unique.
        rules: Burn-rate rules applied to every objective (default
            :data:`DEFAULT_BURN_RULES`).

    Subscribe adaptation logic via :attr:`on_alert` — e.g.
    :meth:`repro.autoscaling.controller.AutoscalingController.respond_to_alerts`
    or :class:`repro.selfaware.feedback.AlertDrivenAdaptation` — to
    close the paper's monitoring → analysis → action loop.
    """

    def __init__(self, pipeline: StreamingPipeline,
                 objectives: Iterable[ServiceObjective],
                 rules: Sequence[BurnRateRule] = DEFAULT_BURN_RULES) -> None:
        self.pipeline = pipeline
        self.metrics = pipeline.metrics
        self.objectives = list(objectives)
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        if not self.objectives:
            raise ValueError("an SLOEngine needs at least one objective")
        self.rules = tuple(rules)
        if not self.rules:
            raise ValueError("an SLOEngine needs at least one rule")
        max_window = max(rule.long_window for rule in self.rules)
        ring = int(max_window / pipeline.interval + 0.5) + 2
        now = pipeline.sim.now
        self._states = [
            _ObjectiveState(objective, ring,
                            (now, *objective.good_bad(self.metrics, now)))
            for objective in self.objectives
        ]
        self.alerts = AlertLog()
        #: Subscribers called with each :class:`AlertEvent` as it lands.
        self.on_alert: list[Callable[[AlertEvent], None]] = []
        self._active: dict[tuple[str, str], bool] = {}
        pipeline.on_tick.append(self._evaluate)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, now: float, _emitted: dict) -> None:
        for state in self._states:
            objective = state.objective
            good, bad = objective.good_bad(self.metrics, now)
            state.samples.append((now, good, bad))
            budget = objective.error_budget
            for rule in self.rules:
                burn_long = self._burn(state, now, rule.long_window, budget)
                burn_short = self._burn(state, now, rule.short_window, budget)
                key = (objective.name, rule.name)
                active = self._active.get(key, False)
                if (not active and burn_long >= rule.threshold
                        and burn_short >= rule.threshold):
                    self._transition(key, now, "fire", burn_short, burn_long)
                elif active and burn_short < rule.threshold:
                    self._transition(key, now, "resolve", burn_short,
                                     burn_long)

    def _transition(self, key: tuple[str, str], now: float, kind: str,
                    burn_short: float, burn_long: float) -> None:
        self._active[key] = kind == "fire"
        event = AlertEvent(time=now, slo=key[0], rule=key[1], kind=kind,
                           burn_short=burn_short, burn_long=burn_long)
        self.alerts.append(event)
        for callback in tuple(self.on_alert):
            callback(event)

    @staticmethod
    def _burn(state: _ObjectiveState, now: float, window: float,
              budget: float) -> float:
        """Error fraction over the trailing window, as a budget multiple."""
        cutoff = now - window
        then = state.samples[0]
        for sample in reversed(state.samples):
            if sample[0] <= cutoff + 1e-9:
                then = sample
                break
        _, good_then, bad_then = then
        _, good_now, bad_now = state.samples[-1]
        delta_bad = bad_now - bad_then
        delta_total = (good_now - good_then) + delta_bad
        if delta_total <= 0:
            return 0.0
        return (delta_bad / delta_total) / budget

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, dict[str, float]]:
        """Deterministic per-objective verdicts, keyed by objective name.

        Each entry carries the target, cumulative good/bad totals,
        achieved compliance, the consumed error-budget fraction
        (``> 1`` means blown), alert counts, and an ``ok`` flag
        (budget intact *and* nothing still firing).
        """
        active = self.alerts.active()
        report: dict[str, dict[str, float]] = {}
        for state in self._states:
            objective = state.objective
            _, good, bad = state.samples[-1]
            total = good + bad
            compliance = good / total if total > 0 else 1.0
            consumed = ((bad / total) / objective.error_budget
                        if total > 0 else 0.0)
            firing = sum(1 for slo, _ in active if slo == objective.name)
            fired = sum(1 for e in self.alerts.fires()
                        if e.slo == objective.name)
            report[objective.name] = {
                "target": objective.target,
                "good": good,
                "bad": bad,
                "compliance": compliance,
                "budget_consumed": consumed,
                "alerts_fired": float(fired),
                "alerts_active": float(firing),
                "ok": float(consumed <= 1.0 and firing == 0),
            }
        return report

    def report_json(self) -> str:
        """The report as a deterministic JSON string (golden-diffable)."""
        return dumps_deterministic(self.report())

    def violations(self) -> list[str]:
        """Human-readable lines for every objective whose verdict failed."""
        lines = []
        for name, entry in self.report().items():
            if not entry["ok"]:
                lines.append(
                    f"SLO {name!r} violated: compliance "
                    f"{entry['compliance']:.4f} vs target "
                    f"{entry['target']:.4f} "
                    f"(error budget {entry['budget_consumed']:.2f}x "
                    f"consumed, {int(entry['alerts_active'])} alerts "
                    f"still firing)")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SLOEngine objectives={len(self.objectives)} "
                f"rules={len(self.rules)} alerts={len(self.alerts)}>")
