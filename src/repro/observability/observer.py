"""The Observer: one switch that turns the ecosystem's senses on.

Observability in this repository is **disabled by default and free
when disabled**: instrumented code paths (scheduler, datacenter,
failure injector, FaaS platform, autoscaler, chaos harness) read
``sim.observer`` and do nothing when it is ``None`` — a single
attribute load and identity check, and the simulator's hot event loop
does not even pay that (it dispatches once per ``run()`` call, not per
event).  Attaching an :class:`Observer` flips every instrumented site
on at once:

- ``observer.tracer`` collects causal :class:`~repro.observability.tracing.Span`
  trees over simulated time;
- ``observer.metrics`` is the shared
  :class:`~repro.observability.metrics.MetricsRegistry`;
- ``observer.profiler`` (optional) makes ``Simulator.run``/``step``
  attribute per-subsystem cost.

Determinism: with a fixed seed, traces and metrics snapshots are
byte-identical across runs; the profiler's wall-clock figures are the
one deliberate exception and are quarantined in
:meth:`~repro.observability.profiling.SubsystemProfiler.wall_report`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .export import chrome_trace, dumps_deterministic
from .metrics import MetricsRegistry
from .profiling import SubsystemProfiler
from .tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Simulator

__all__ = ["Observer"]


class Observer:
    """Bundles tracer, metrics registry, and profiler for one simulation.

    Args:
        profiling: Collect per-subsystem cost attribution.  This is the
            only part of observability with per-event overhead, so it
            can be turned off while keeping traces and metrics.

    Usage::

        sim = Simulator()
        obs = Observer()
        obs.attach(sim)
        ... build and run the scenario ...
        print(obs.metrics.snapshot())
        obs.trace_chrome_json()   # feed to chrome://tracing
    """

    def __init__(self, profiling: bool = True) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.profiler: SubsystemProfiler | None = (
            SubsystemProfiler() if profiling else None)
        self.sim: Simulator | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> "Observer":
        """Bind this observer to ``sim``; instrumentation lights up.

        A simulator holds at most one observer and an observer watches
        at most one simulator — fan-in/fan-out would break the
        deterministic span ordering.
        """
        if sim.observer is not None:
            raise RuntimeError(f"simulator already has observer "
                               f"{sim.observer!r}")
        if self.sim is not None:
            raise RuntimeError("observer is already attached; detach first")
        sim.observer = self
        self.sim = sim
        self.tracer.bind_clock(lambda: sim.now)
        return self

    def detach(self) -> None:
        """Unbind from the simulator; collected data stays readable."""
        if self.sim is not None:
            self.sim.observer = None
            self.sim = None

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def trace_chrome_json(self) -> str:
        """The collected spans as a Chrome/Perfetto trace JSON string."""
        return dumps_deterministic(chrome_trace(self.tracer))

    def metrics_json(self) -> str:
        """The metrics snapshot as a deterministic JSON string."""
        return dumps_deterministic(self.metrics.snapshot())

    def snapshot(self) -> dict:
        """Deterministic combined view: metrics plus the profile.

        Only the profiler's deterministic columns are included; wall
        times must be fetched explicitly via
        ``observer.profiler.wall_report()`` so they cannot leak into
        golden comparisons by accident.
        """
        combined = {"metrics": self.metrics.snapshot()}
        if self.profiler is not None:
            combined["profile"] = self.profiler.report()
        return combined

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "attached" if self.sim is not None else "detached"
        return (f"<Observer {state}: {len(self.tracer)} spans, "
                f"{len(self.metrics)} metrics>")
