"""Deterministic serialization of traces, metrics, and profiles.

Everything here is built for byte-identical output under fixed seeds
(the repository's determinism contract, see docs/PERFORMANCE.md):
:func:`dumps_deterministic` sorts keys and pins separators, and the
Chrome-trace conversion derives thread ids from sorted category names
rather than arrival order.  The resulting ``.json`` files load
directly into ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from typing import Any

from .tracing import Tracer

__all__ = [
    "dumps_deterministic",
    "chrome_trace",
    "write_chrome_trace",
    "write_trace_json",
]


def dumps_deterministic(obj: Any) -> str:
    """JSON-encode ``obj`` with stable key order and separators.

    Two structurally equal inputs always produce the same bytes, which
    is what the golden tests diff.  Non-finite floats are rejected —
    they have no portable JSON spelling.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def chrome_trace(tracer: Tracer, time_scale: float = 1e6) -> dict:
    """Convert a tracer's spans to the Chrome Trace Event format.

    Spans become complete (``"ph": "X"``) events, zero-duration spans
    become instant (``"ph": "i"``) events, and each span category is
    rendered as its own named thread row.  ``time_scale`` converts
    sim-seconds to trace microseconds; with the default, one simulated
    second reads as one millisecond-scale unit in the viewer's
    ``ms`` display.

    Open spans are exported with zero duration and an
    ``incomplete: true`` arg; call :meth:`Tracer.close_all` first if
    you prefer them stretched to the end of the run.
    """
    categories = sorted({span.category or "span" for span in tracer.spans})
    tids = {category: index + 1 for index, category in enumerate(categories)}
    events: list[dict] = [
        {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
         "args": {"name": category}}
        for category, tid in sorted(tids.items())
    ]
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        category = span.category or "span"
        args = {key: span.attrs[key] for key in sorted(span.attrs)}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        end = span.end
        if end is None:
            args["incomplete"] = True
            end = span.start
        record = {
            "name": span.name,
            "cat": category,
            "pid": 1,
            "tid": tids[category],
            "ts": span.start * time_scale,
            "args": args,
        }
        if end > span.start:
            record["ph"] = "X"
            record["dur"] = (end - span.start) * time_scale
        else:
            record["ph"] = "i"
            record["s"] = "t"
        events.append(record)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str,
                       time_scale: float = 1e6) -> None:
    """Write the Chrome trace of ``tracer`` to ``path`` (deterministic)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_deterministic(chrome_trace(tracer, time_scale)))


def write_trace_json(tracer: Tracer, path: str) -> None:
    """Write the raw span list of ``tracer`` to ``path`` (deterministic)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_deterministic(tracer.to_json()))
