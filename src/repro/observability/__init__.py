"""Observability substrate (S18): tracing, metrics, profiling (C2, C15).

The paper's self-awareness challenge (C2) and its call for responsible,
transparent operation (C15, and the AtLarge design vision) require
ecosystems that can *observe themselves*.  This package is that sense
organ for every simulation in :mod:`repro`:

- :mod:`~repro.observability.tracing` — causal spans over simulated
  time (event → task → machine chains), exportable to Chrome traces;
- :mod:`~repro.observability.metrics` — a pull-based registry of
  counters, gauges, and fixed-bucket histograms;
- :mod:`~repro.observability.profiling` — per-subsystem attribution of
  simulated-time and wall-time cost inside ``Simulator.run``;
- :mod:`~repro.observability.observer` — the single
  :class:`Observer` switch that arms all of it; disabled by default
  and zero-overhead when disabled;
- :mod:`~repro.observability.export` — deterministic JSON / Chrome
  trace serialization;
- :mod:`~repro.observability.streaming` — windowed telemetry
  aggregation evaluated at sim-time ticks *during* the run;
- :mod:`~repro.observability.slo` — declarative service objectives,
  error budgets, multi-window burn-rate alerting, deterministic
  :class:`AlertLog`;
- :mod:`~repro.observability.traceanalysis` — critical-path
  extraction, per-subsystem latency breakdowns, span-census diffs.

See docs/OBSERVABILITY.md for the operator's handbook.
"""

from .export import (
    chrome_trace,
    dumps_deterministic,
    write_chrome_trace,
    write_trace_json,
)
from .federation import (
    TelemetryMerge,
    TelemetryMergeError,
    TelemetrySnapshot,
    fleet_digest,
    merge_histogram_entries,
    merge_snapshots,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_counts,
)
from .observer import Observer
from .openmetrics import openmetrics_name, render_openmetrics
from .profiling import DEFAULT_RULES, SubsystemProfiler
from .slo import (
    DEFAULT_BURN_RULES,
    AlertEvent,
    AlertLog,
    AvailabilityObjective,
    BurnRateRule,
    GoodputObjective,
    LatencyObjective,
    QueueWaitObjective,
    ServiceObjective,
    SLOEngine,
)
from .streaming import StreamingPipeline, StreamSeries, Window, watch_all
from .traceanalysis import (
    PathSegment,
    census_diff,
    critical_path,
    span_census,
    subsystem_breakdown,
)
from .tracing import Span, Tracer

__all__ = [
    "Observer",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "quantile_from_counts",
    "SubsystemProfiler",
    "DEFAULT_RULES",
    "chrome_trace",
    "dumps_deterministic",
    "write_chrome_trace",
    "write_trace_json",
    "StreamingPipeline",
    "StreamSeries",
    "Window",
    "watch_all",
    "ServiceObjective",
    "AvailabilityObjective",
    "LatencyObjective",
    "QueueWaitObjective",
    "GoodputObjective",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "AlertEvent",
    "AlertLog",
    "SLOEngine",
    "PathSegment",
    "critical_path",
    "subsystem_breakdown",
    "span_census",
    "census_diff",
    "TelemetrySnapshot",
    "TelemetryMerge",
    "TelemetryMergeError",
    "merge_snapshots",
    "merge_histogram_entries",
    "fleet_digest",
    "openmetrics_name",
    "render_openmetrics",
]
