"""Trace analytics: critical paths, latency breakdowns, census diffs.

PR 3's tracer records *what happened*; this module answers the
operator questions the paper's self-awareness challenge (C2) and its
performance-analysis thread (C7, C14) actually pose:

- **Where did the time go?**  :func:`critical_path` walks a span tree
  backwards from its last-finishing child and returns the chain of
  spans (and the waits between them) that determined the root's
  duration — the classic trace-based critical path of workflow
  analysis.  Shortening any span *off* this path cannot shorten the
  workflow.
- **Which subsystem holds the latency?**  :func:`subsystem_breakdown`
  aggregates closed spans per category (scheduling, datacenter, faas,
  resilience, ...) into count / total / mean / share columns.
- **What changed between two runs?**  :func:`span_census` counts spans
  by kind and :func:`census_diff` diffs two censuses, which turns a
  pair of traces into a one-table regression summary (more retries?
  fewer hedges? new failure bursts?).

Everything here is a pure post-processing function over
:class:`~repro.observability.tracing.Span` lists: deterministic input
(the tracer's contract) in, deterministic tables out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .tracing import Span, Tracer

__all__ = [
    "PathSegment",
    "critical_path",
    "subsystem_breakdown",
    "span_census",
    "census_diff",
]

#: Span-time comparisons tolerate only float noise; simulated
#: timestamps are exact otherwise.
_EPS = 1e-9


@dataclass(frozen=True)
class PathSegment:
    """One hop of a critical path: a span, or the wait before one."""

    name: str
    category: str
    start: float
    end: float
    kind: str  # "span" | "wait"

    @property
    def duration(self) -> float:
        """Simulated-time length of the segment."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-able view of the segment."""
        return {"name": self.name, "category": self.category,
                "start": self.start, "end": self.end, "kind": self.kind}


def _spans_of(trace: "Tracer | Iterable[Span]") -> list[Span]:
    spans = trace.spans if isinstance(trace, Tracer) else list(trace)
    return [s for s in spans if s.end is not None]


def _resolve_root(spans: list[Span], root: "Span | str") -> Span:
    if isinstance(root, Span):
        if root.end is None:
            raise ValueError(f"root span {root.name!r} is still open; "
                             "close it (tracer.close_all()) before analysis")
        return root
    matches = [s for s in spans if s.name == root]
    if not matches:
        raise ValueError(f"no closed span named {root!r} in the trace")
    if len(matches) > 1:
        raise ValueError(f"{len(matches)} spans named {root!r}; pass the "
                         "Span object to disambiguate")
    return matches[0]


def critical_path(trace: "Tracer | Iterable[Span]", root: "Span | str",
                  expand: bool = True) -> list[PathSegment]:
    """The chain of child spans that determined ``root``'s duration.

    Walks backwards from the root's end: the child span finishing last
    is on the path; before its start, the child finishing last before
    that is; and so on.  Gaps where no child was running become
    ``wait`` segments — for a workflow root these are scheduler-queue
    or dependency stalls; shrinking them needs capacity, not faster
    tasks.

    Args:
        trace: A tracer or span iterable (open spans are ignored).
        root: The root span, or the unique name of one (e.g.
            ``"workflow montage"``).
        expand: Recursively replace path spans that have children of
            their own with *their* critical path (a task span expands
            into its exec attempts plus queue wait).

    Returns:
        Segments in chronological order, covering exactly
        ``[root.start, root.end]``.  A childless root yields its own
        single segment.
    """
    spans = _spans_of(trace)
    root_span = _resolve_root(spans, root)
    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return _walk(root_span, children, expand)


def _walk(root: Span, children: dict[int, list[Span]],
          expand: bool) -> list[PathSegment]:
    own = children.get(root.span_id, [])
    if not own:
        return [PathSegment(root.name, root.category, root.start, root.end,
                            "span")]
    segments: list[PathSegment] = []
    cursor = root.end
    while cursor > root.start + _EPS:
        # The latest-finishing child that ended by the cursor; ties
        # prefer the longer span, then the earlier (smaller) span id —
        # all deterministic under the tracer's ordering contract.
        best: Span | None = None
        for child in own:
            if child.end > cursor + _EPS or child.end <= root.start + _EPS:
                continue
            if child.duration <= _EPS:
                continue  # instant markers cannot explain elapsed time

            if best is None or (child.end, child.duration, -child.span_id) \
                    > (best.end, best.duration, -best.span_id):
                best = child
        if best is None:
            segments.append(PathSegment("(wait)", root.category, root.start,
                                        cursor, "wait"))
            break
        if best.end < cursor - _EPS:
            segments.append(PathSegment("(wait)", root.category, best.end,
                                        cursor, "wait"))
        start = max(best.start, root.start)
        if expand and children.get(best.span_id):
            inner = _walk(best, children, expand)
            segments.extend(reversed(inner))
        else:
            segments.append(PathSegment(best.name, best.category, start,
                                        best.end, "span"))
        cursor = start
    segments.reverse()
    return segments


def subsystem_breakdown(trace: "Tracer | Iterable[Span]") -> dict[str, dict]:
    """Closed-span latency totals per category (subsystem).

    Returns ``{category: {"spans", "total_time", "mean_time",
    "share"}}`` where ``share`` is the category's fraction of all
    closed-span time (instant markers contribute to counts but not to
    time).  Keys are sorted for deterministic iteration.
    """
    totals: dict[str, list[float]] = {}
    for span in _spans_of(trace):
        category = span.category or "span"
        entry = totals.setdefault(category, [0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration
    grand_total = sum(entry[1] for entry in totals.values()) or 1.0
    return {
        category: {
            "spans": entry[0],
            "total_time": entry[1],
            "mean_time": entry[1] / entry[0] if entry[0] else 0.0,
            "share": entry[1] / grand_total,
        }
        for category, entry in sorted(totals.items())
    }


def span_census(trace: "Tracer | Iterable[Span]") -> dict[str, int]:
    """Span counts by kind — the first word of the span name.

    ``task t17`` and ``task t3`` both count as ``task``; instant
    markers like ``failure-burst`` count under their full name.  The
    census is the trace's table of contents and the unit
    :func:`census_diff` compares across runs.
    """
    spans = trace.spans if isinstance(trace, Tracer) else list(trace)
    census: dict[str, int] = {}
    for span in spans:
        kind = span.name.split(" ", 1)[0]
        census[kind] = census.get(kind, 0) + 1
    return dict(sorted(census.items()))


def census_diff(before: dict[str, int],
                after: dict[str, int]) -> dict[str, tuple[int, int, int]]:
    """Compare two span censuses: ``{kind: (before, after, delta)}``.

    Kinds present in either census appear (missing side counts 0);
    keys are sorted.  A chaos run that suddenly shows ``delta > 0`` on
    ``exec`` with flat ``task`` counts, for example, means more retry
    attempts per task — a resilience regression visible without
    reading a single raw span.
    """
    keys = sorted(set(before) | set(after))
    return {key: (before.get(key, 0), after.get(key, 0),
                  after.get(key, 0) - before.get(key, 0))
            for key in keys}
