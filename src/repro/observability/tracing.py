"""Span-based causal tracing of event → task → machine chains.

A :class:`Span` is a named interval of *simulated* time with an
optional parent, forming the causal trees the paper's self-awareness
challenge (C2) asks operators to see: a task span opened at submission
parents the execution attempt spans the datacenter opens per placement,
which in turn sit next to the failure-burst and autoscaling instants
emitted around them.

Determinism contract: span ids come from a per-tracer monotonic
counter and every timestamp is read from the simulator's virtual
clock, so a fixed-seed simulation produces the identical span list —
ids, ordering, times, attributes — on every run.  Wall-clock time
never enters a span; that is the profiler's job
(:mod:`repro.observability.profiling`), kept separate precisely
because it cannot be deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

__all__ = ["Span", "Tracer"]


class Span:
    """One named interval of simulated time, with causal parentage."""

    __slots__ = ("span_id", "parent_id", "name", "category", "start",
                 "end", "attrs")

    def __init__(self, span_id: int, name: str, start: float,
                 category: str = "", parent_id: int | None = None,
                 attrs: dict[str, Any] | None = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, Any] = attrs or {}

    @property
    def is_open(self) -> bool:
        """Whether the span has not been ended yet."""
        return self.end is None

    @property
    def duration(self) -> float:
        """Simulated-time length of the span (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the span (attrs key-sorted for stable bytes)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.is_open else f"end={self.end}"
        return f"<Span #{self.span_id} {self.name!r} start={self.start} {state}>"


class Tracer:
    """Creates, tracks, and exports spans against a virtual clock.

    The tracer is clock-agnostic until :meth:`bind_clock` is called
    (the :class:`~repro.observability.observer.Observer` does this on
    attach, binding the simulator's ``now``).  Spans may be addressed
    by an opaque ``key`` so that one subsystem can open a span and
    another can find or close it without sharing object references —
    the scheduler opens ``("task", id)`` and the datacenter parents its
    execution spans under whatever that key currently names.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock
        self._next_id = 1
        #: All spans ever begun, in begin order (deterministic).
        self.spans: list[Span] = []
        self._by_key: dict[Hashable, Span] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Set the time source used for span begin/end stamps."""
        self._clock = clock

    def _now(self) -> float:
        if self._clock is None:
            raise RuntimeError(
                "tracer has no clock; attach the Observer to a Simulator "
                "(or call bind_clock) before tracing")
        return self._clock()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def begin(self, name: str, category: str = "",
              parent: Span | None = None, key: Hashable = None,
              attrs: dict[str, Any] | None = None) -> Span:
        """Open a span now; optionally register it under ``key``.

        Re-using a live key replaces the registration (the old span
        stays in the trace, merely unaddressed) — this is what makes
        retried tasks trace naturally as one span per attempt cycle.
        """
        span = Span(self._next_id, name, self._now(), category=category,
                    parent_id=None if parent is None else parent.span_id,
                    attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        if key is not None:
            self._by_key[key] = span
        return span

    def end(self, span: Span, attrs: dict[str, Any] | None = None) -> Span:
        """Close ``span`` now, optionally merging final attributes."""
        if span.end is not None:
            raise RuntimeError(f"span #{span.span_id} {span.name!r} "
                               "already ended")
        span.end = self._now()
        if attrs:
            span.attrs.update(attrs)
        return span

    def active(self, key: Hashable) -> Span | None:
        """The live span registered under ``key``, if any."""
        return self._by_key.get(key)

    def end_key(self, key: Hashable,
                attrs: dict[str, Any] | None = None) -> Span | None:
        """Close and deregister the span under ``key`` (no-op if absent)."""
        span = self._by_key.pop(key, None)
        if span is not None and span.end is None:
            self.end(span, attrs)
        return span

    def instant(self, name: str, category: str = "",
                parent: Span | None = None,
                attrs: dict[str, Any] | None = None) -> Span:
        """Record a zero-duration marker (failure burst, scale decision)."""
        span = self.begin(name, category=category, parent=parent, attrs=attrs)
        span.end = span.start
        return span

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended, in begin order."""
        return [s for s in self.spans if s.end is None]

    def close_all(self) -> int:
        """End every open span at the current time; returns how many.

        Useful right before export when a simulation was stopped at a
        horizon with work still in flight.
        """
        pending = self.open_spans()
        for span in pending:
            self.end(span, attrs={"incomplete": True})
        self._by_key.clear()
        return len(pending)

    def to_json(self) -> list[dict[str, Any]]:
        """All spans as dicts, ordered by (start time, span id).

        Open spans are exported with ``end: null``; combined with
        :func:`repro.observability.export.dumps_deterministic` this
        yields byte-identical output for fixed-seed runs.
        """
        ordered = sorted(self.spans, key=lambda s: (s.start, s.span_id))
        return [span.to_dict() for span in ordered]

    def __len__(self) -> int:
        return len(self.spans)
