"""Per-subsystem cost attribution for simulation runs.

The question an operator asks after a slow run is "*where* did the
time go?" — and in a discrete-event simulation that question has two
distinct answers:

- **simulated time**: which subsystem's events moved the virtual clock
  (a property of the modelled scenario, fully deterministic);
- **wall time**: which subsystem's callbacks cost real CPU when the
  kernel delivered its events (a property of the implementation,
  inherently non-deterministic).

The :class:`SubsystemProfiler` collects both, attributed per event by
classifying the owning process name against prefix rules ("exec-" is
the datacenter, "faas-" the serverless platform, ...).  The simulator
only pays for any of this while an
:class:`~repro.observability.observer.Observer` with profiling enabled
is attached: :meth:`repro.sim.Simulator.run` dispatches to a separate
instrumented loop, so the disabled-by-default hot path is untouched.

:meth:`SubsystemProfiler.report` deliberately returns only the
deterministic columns (event counts and simulated time) so it can sit
inside byte-identical golden files; wall-clock readings live behind
the separate :meth:`SubsystemProfiler.wall_report`.
"""

from __future__ import annotations

__all__ = ["SubsystemProfiler", "DEFAULT_RULES"]

#: Prefix → subsystem classification of process names, checked in
#: order.  Unmatched non-empty names fall into ``"other"``; events with
#: no owning process are the kernel's own.
DEFAULT_RULES: tuple[tuple[str, str], ...] = (
    ("exec-", "datacenter"),
    ("scheduler", "scheduling"),
    ("hedge-watch", "scheduling"),
    ("workflow", "scheduling"),
    ("provisioner", "scheduling"),
    ("faas-", "faas"),
    ("guarded-", "faas"),
    ("autoscaler", "autoscaling"),
    ("failure-injector", "resilience"),
    ("repair@", "resilience"),
    ("arrivals", "workload"),
    ("feeder", "workload"),
)


class _Bucket:
    """Accumulated cost of one subsystem."""

    __slots__ = ("events", "sim_time", "wall_time")

    def __init__(self) -> None:
        self.events = 0
        self.sim_time = 0.0
        self.wall_time = 0.0


class SubsystemProfiler:
    """Attributes event counts, simulated time, and wall time.

    Args:
        rules: ``(prefix, subsystem)`` pairs tried in order against
            process names; extend or replace to teach the profiler
            about custom process naming schemes.
    """

    def __init__(self, rules: tuple[tuple[str, str], ...] = DEFAULT_RULES
                 ) -> None:
        self.rules = tuple(rules)
        self._buckets: dict[str, _Bucket] = {}
        #: Total wall-clock seconds spent inside instrumented
        #: ``Simulator.run`` calls (includes kernel overhead the
        #: per-callback timers cannot see).
        self.run_wall_time = 0.0
        self._cache: dict[str, str] = {}

    def classify(self, name: str) -> str:
        """Map a process name to its subsystem label."""
        if not name:
            return "kernel"
        label = self._cache.get(name)
        if label is None:
            label = "other"
            for prefix, subsystem in self.rules:
                if name.startswith(prefix):
                    label = subsystem
                    break
            self._cache[name] = label
        return label

    def record(self, subsystem: str, sim_dt: float = 0.0,
               wall_dt: float = 0.0, events: int = 0) -> None:
        """Add one attribution sample to ``subsystem``'s bucket."""
        bucket = self._buckets.get(subsystem)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[subsystem] = bucket
        bucket.events += events
        bucket.sim_time += sim_dt
        bucket.wall_time += wall_dt

    def record_run_wall(self, seconds: float) -> None:
        """Account one instrumented ``run()`` call's total wall time."""
        self.run_wall_time += seconds

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def subsystems(self) -> list[str]:
        """All subsystem labels seen so far, sorted."""
        return sorted(self._buckets)

    def report(self) -> dict[str, dict[str, float]]:
        """Deterministic profile: per-subsystem event count and sim time.

        Safe to embed in golden files — two fixed-seed runs yield the
        identical report.  ``sim_time`` is the virtual time the clock
        advanced *onto* that subsystem's events, so the values sum to
        the run's end time.
        """
        return {
            name: {"events": float(bucket.events),
                   "sim_time": bucket.sim_time}
            for name, bucket in sorted(self._buckets.items())
        }

    def wall_report(self) -> dict[str, float]:
        """Non-deterministic profile: per-subsystem callback wall seconds.

        Never include this in determinism goldens; it varies run to
        run with machine load.
        """
        return {name: bucket.wall_time
                for name, bucket in sorted(self._buckets.items())}
