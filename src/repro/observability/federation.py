"""Federated telemetry: per-run snapshots and the deterministic fleet merge.

The AtLarge reference architecture puts a monitoring component beside
every stage, and the paper's understanding-before-engineering thread
(C2, P6) demands that the view *scale with the system*: once scenarios
fan out across worker processes, in-process observability stops at the
process boundary.  This module is the seam that carries it across:

- a :class:`TelemetrySnapshot` is everything one observed run saw —
  the metrics registry snapshot, the per-subsystem profile, and the
  span census — stamped with a **causal run id** and fully
  JSON-round-trippable, so a worker can ship it back beside the
  :class:`~repro.scenario.result.ScenarioResult`;
- :func:`merge_snapshots` (and the incremental :class:`TelemetryMerge`)
  folds any number of per-run snapshots into one fleet view under
  documented, deterministic rules (below);
- the merged view is **byte-identical regardless of worker count or
  completion order**: snapshots are sorted by run id before folding,
  so the fleet view is a pure function of the *set* of runs.

Merge rules (also documented in docs/OBSERVABILITY.md):

========== ==========================================================
Instrument Rule
========== ==========================================================
counter    values sum across runs
gauge      last-writer-wins **in run-id order** (the lexicographically
           greatest run id that reports the gauge); a gauge is a
           level, not a flow, so summing would be a lie
histogram  bucket-wise sum over *identical* bucket boundaries;
           mismatched edges are a hard :class:`TelemetryMergeError`,
           never a silent re-bucketing; count/sum add, min/max
           combine, and p50/p95/p99 are recomputed from the merged
           buckets — exactly what a single histogram fed the
           concatenated observations would report
profile    per-subsystem event counts and simulated time sum
spans      censuses concatenate under their causal run ids (and an
           overall census sums per span kind)
========== ==========================================================

Run ids are chosen by the capturing layer so that lexicographic order
is causal order: the sweep runner uses ``point-<index 5 digits>``, the
service uses ``<tenant>/<job id>`` (job ids carry a zero-padded
sequence number).  Two snapshots in one merge must not share a run id.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from .export import dumps_deterministic
from .metrics import quantile_from_counts
from .traceanalysis import span_census

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .observer import Observer

__all__ = [
    "TelemetryMergeError",
    "TelemetrySnapshot",
    "TelemetryMerge",
    "merge_snapshots",
    "merge_histogram_entries",
    "fleet_digest",
]

SNAPSHOT_SCHEMA = "telemetry-snapshot/v1"
FLEET_SCHEMA = "telemetry-fleet/v1"


class TelemetryMergeError(ValueError):
    """Two snapshots cannot be merged (mismatched edges, duplicate ids)."""


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One observed run's deterministic telemetry, as plain data.

    Attributes:
        run_id: Causal identifier of the run inside its fleet (see the
            module docstring for the id schemes the built-in layers
            use).  Lexicographic order over run ids is the merge's
            run order.
        fingerprint: The originating spec's fingerprint (empty when
            the run was composed without a spec).
        seed: The run's root seed.
        metrics: The
            :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`
            dict (counters / gauges / histograms sections).
        profile: The
            :meth:`~repro.observability.profiling.SubsystemProfiler.report`
            dict, or ``None`` when profiling was off.
        spans: ``{"total": n, "census": {kind: count}}`` from the
            tracer — the trace's table of contents, cheap enough to
            ship across the pool seam (raw spans stay in-process).
    """

    run_id: str
    fingerprint: str
    seed: int
    metrics: dict[str, Any]
    profile: dict[str, Any] | None
    spans: dict[str, Any]

    @classmethod
    def capture(cls, observer: "Observer", run_id: str,
                fingerprint: str = "", seed: int = 0) -> "TelemetrySnapshot":
        """Freeze ``observer``'s deterministic state under ``run_id``.

        Only deterministic columns are captured: the profiler's wall
        times are deliberately left behind (they would break the
        byte-identity contract), exactly as
        :meth:`~repro.observability.observer.Observer.snapshot` does.
        """
        return cls(
            run_id=run_id,
            fingerprint=fingerprint,
            seed=seed,
            metrics=observer.metrics.snapshot(),
            profile=(observer.profiler.report()
                     if observer.profiler is not None else None),
            spans={"total": len(observer.tracer),
                   "census": span_census(observer.tracer)},
        )

    def to_dict(self) -> dict[str, Any]:
        """The snapshot as JSON-ready plain data."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "metrics": self.metrics,
            "profile": self.profile,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySnapshot":
        """Rehydrate a snapshot from :meth:`to_dict` output."""
        schema = data.get("schema", SNAPSHOT_SCHEMA)
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(f"unsupported telemetry schema {schema!r}")
        return cls(run_id=data["run_id"],
                   fingerprint=data.get("fingerprint", ""),
                   seed=data.get("seed", 0),
                   metrics=dict(data["metrics"]),
                   profile=data.get("profile"),
                   spans=dict(data.get("spans", {"total": 0, "census": {}})))

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace)."""
        return dumps_deterministic(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "TelemetrySnapshot":
        """Rehydrate a snapshot from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def merge_histogram_entries(name: str,
                            entries: Sequence[Mapping[str, Any]]) -> dict:
    """Fold histogram snapshot entries bucket-wise; hard-error on edges.

    Every entry must carry the *identical* ``boundaries`` tuple —
    fixed-bucket histograms are the whole reason merging is exact, and
    silently re-bucketing mismatched edges would fabricate data.  The
    merged entry's p50/p95/p99 come from
    :func:`~repro.observability.metrics.quantile_from_counts` over the
    summed buckets, which is precisely what one histogram fed the
    concatenation of every run's observations would report.
    """
    if not entries:
        raise TelemetryMergeError(f"histogram {name!r}: nothing to merge")
    boundaries = list(entries[0]["boundaries"])
    counts = [0] * (len(boundaries) + 1)
    total = 0
    value_sum = 0.0
    minimum = float("inf")
    maximum = float("-inf")
    for entry in entries:
        if list(entry["boundaries"]) != boundaries:
            raise TelemetryMergeError(
                f"histogram {name!r}: mismatched bucket boundaries "
                f"{list(entry['boundaries'])} vs {boundaries}; refusing "
                f"to re-bucket")
        if len(entry["counts"]) != len(counts):
            raise TelemetryMergeError(
                f"histogram {name!r}: bucket count mismatch "
                f"({len(entry['counts'])} vs {len(counts)})")
        for index, bucket in enumerate(entry["counts"]):
            counts[index] += bucket
        total += entry["count"]
        value_sum += entry["sum"]
        if entry["count"]:
            minimum = min(minimum, entry["min"])
            maximum = max(maximum, entry["max"])
    merged: dict[str, Any] = {
        "boundaries": boundaries,
        "counts": counts,
        "count": total,
        "sum": value_sum,
    }
    if total:
        merged["min"] = minimum
        merged["max"] = maximum
        for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            merged[key] = quantile_from_counts(boundaries, counts, total,
                                               q, maximum)
    return merged


def _as_dict(snapshot: "TelemetrySnapshot | Mapping[str, Any]") -> dict:
    if isinstance(snapshot, TelemetrySnapshot):
        return snapshot.to_dict()
    return dict(snapshot)


def merge_snapshots(snapshots: Iterable["TelemetrySnapshot | Mapping"],
                    ) -> dict[str, Any]:
    """Fold per-run snapshots into the deterministic fleet view.

    Accepts :class:`TelemetrySnapshot` objects or their dict forms, in
    *any* order — they are sorted by run id before folding, which is
    what makes the merged bytes independent of worker count and
    completion order.  Duplicate run ids are an error: the same run
    merged twice would double-count every counter.

    Returns the ``telemetry-fleet/v1`` dict: sorted ``runs``, merged
    ``metrics`` (per the module-docstring rules), the summed
    ``profile``, and ``spans`` with both the overall census and the
    per-run censuses concatenated under their causal run ids.
    """
    ordered = sorted((_as_dict(snapshot) for snapshot in snapshots),
                     key=lambda data: data["run_id"])
    if not ordered:
        raise TelemetryMergeError("no snapshots to merge")
    run_ids = [data["run_id"] for data in ordered]
    if len(set(run_ids)) != len(run_ids):
        duplicates = sorted({rid for rid in run_ids
                             if run_ids.count(rid) > 1})
        raise TelemetryMergeError(
            f"duplicate run ids {duplicates}; each run merges once")
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histogram_parts: dict[str, list[Mapping[str, Any]]] = {}
    profile: dict[str, dict[str, float]] = {}
    census_total: dict[str, int] = {}
    census_by_run: dict[str, dict[str, int]] = {}
    span_total = 0
    for data in ordered:
        metrics = data.get("metrics", {})
        for name, value in metrics.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in metrics.get("gauges", {}).items():
            # Run-order last-writer-wins: `ordered` is sorted by run
            # id, so the final assignment is the greatest run id.
            gauges[name] = value
        for name, entry in metrics.get("histograms", {}).items():
            histogram_parts.setdefault(name, []).append(entry)
        for subsystem, bucket in (data.get("profile") or {}).items():
            merged = profile.setdefault(subsystem,
                                        {"events": 0.0, "sim_time": 0.0})
            merged["events"] += bucket["events"]
            merged["sim_time"] += bucket["sim_time"]
        spans = data.get("spans") or {}
        span_total += spans.get("total", 0)
        census = dict(spans.get("census", {}))
        census_by_run[data["run_id"]] = census
        for kind, count in census.items():
            census_total[kind] = census_total.get(kind, 0) + count
    histograms = {name: merge_histogram_entries(name, parts)
                  for name, parts in histogram_parts.items()}
    return {
        "schema": FLEET_SCHEMA,
        "runs": run_ids,
        "metrics": {
            "counters": {name: counters[name] for name in sorted(counters)},
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {name: histograms[name]
                           for name in sorted(histograms)},
        },
        "profile": {name: profile[name] for name in sorted(profile)},
        "spans": {
            "total": span_total,
            "census": {kind: census_total[kind]
                       for kind in sorted(census_total)},
            "by_run": {run_id: census_by_run[run_id]
                       for run_id in run_ids},
        },
    }


def fleet_digest(fleet: Mapping[str, Any]) -> str:
    """SHA-256 over a fleet view's canonical JSON bytes."""
    return hashlib.sha256(
        dumps_deterministic(fleet).encode("utf-8")).hexdigest()


class TelemetryMerge:
    """Incremental fleet merge: add snapshots in any order, read once.

    The accumulator form of :func:`merge_snapshots` for long-lived
    consumers (the service keeps one per scrape window): snapshots
    arrive as workers finish, :meth:`fleet` folds whatever has been
    added so far.  Determinism is inherited — :meth:`fleet` sorts by
    run id before folding, so two merges over the same set of runs are
    byte-identical no matter the arrival order.
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, dict[str, Any]] = {}

    def add(self, snapshot: "TelemetrySnapshot | Mapping[str, Any]",
            ) -> None:
        """Register one run's snapshot (duplicate run ids rejected)."""
        data = _as_dict(snapshot)
        run_id = data["run_id"]
        if run_id in self._snapshots:
            raise TelemetryMergeError(
                f"run id {run_id!r} already merged; each run merges once")
        self._snapshots[run_id] = data

    def add_json(self, text: str) -> None:
        """Register a snapshot from its canonical JSON form.

        The pool-seam convenience: workers ship telemetry as JSON
        strings, and the merge ingests them without the caller
        round-tripping through :class:`TelemetrySnapshot`.
        """
        self.add(TelemetrySnapshot.from_json(text))

    def __len__(self) -> int:
        return len(self._snapshots)

    def run_ids(self) -> list[str]:
        """Run ids added so far, in run (sorted) order."""
        return sorted(self._snapshots)

    def fleet(self) -> dict[str, Any]:
        """The merged fleet view over every snapshot added so far."""
        return merge_snapshots(self._snapshots.values())
