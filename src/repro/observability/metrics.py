"""Pull-based metrics: counters, gauges, and fixed-bucket histograms.

The paper's self-awareness challenge (C2) needs ecosystems that can
quantify their own behaviour; its methodology thread (P6) needs those
numbers to be *reproducible*.  Both shape this module:

- Instruments are **pull-based**: code updates them in place, and a
  consumer asks the :class:`MetricsRegistry` for a
  :meth:`~MetricsRegistry.snapshot` when it wants the current state —
  there is no background flushing that could perturb event order.
- Histograms use **fixed bucket boundaries** chosen at creation time,
  so the exported snapshot of a fixed-seed simulation is bit-identical
  across runs.  Adaptive bucketing would make output depend on
  observation order in ways that are hostile to regression testing.

Instruments are named hierarchically (``"scheduler.wait_time"``); the
snapshot sorts by name, so serializing it with
:func:`repro.observability.export.dumps_deterministic` yields stable
bytes.
"""

from __future__ import annotations

from bisect import bisect_left
from math import isnan
from typing import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "quantile_from_counts",
]


def quantile_from_counts(boundaries: Sequence[float], counts: Sequence[int],
                         total: int, q: float, overflow: float) -> float:
    """Quantile upper bound from fixed-bucket counts.

    The shared estimator behind :meth:`Histogram.quantile` and the
    streaming pipeline's window aggregates: find the first bucket whose
    cumulative count reaches ``q * total`` and return its upper
    boundary (``overflow`` — typically the max observation seen — for
    the implicit last bucket).  Deterministic and monotone in ``q``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if total <= 0:
        return float("nan")
    target = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= target and bucket_count:
            if index < len(boundaries):
                return boundaries[index]
            return overflow
    return overflow

#: Default histogram bucket upper bounds (in whatever unit the metric
#: uses, typically sim-seconds).  Roughly logarithmic, wide enough for
#: both sub-second FaaS latencies and multi-hour batch waits; the
#: overflow bucket is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing total (events, core-seconds, dollars)."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current accumulated total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self._value += amount


class Gauge:
    """A value that can move both ways (queue length, leased machines)."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value of the gauge."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (may be negative)."""
        self._value += delta


class Histogram:
    """A distribution with *fixed* bucket boundaries.

    Buckets are upper-bound inclusive: an observation ``v`` lands in the
    first bucket whose boundary satisfies ``v <= boundary``; values
    beyond the last boundary land in the implicit overflow bucket, so
    ``len(counts) == len(boundaries) + 1``.  Because the boundaries
    never adapt to the data, the snapshot of a deterministic simulation
    is itself deterministic.
    """

    __slots__ = ("name", "description", "boundaries", "counts",
                 "_sum", "_count", "_min", "_max")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS,
                 description: str = "") -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly increasing: "
                f"{bounds}")
        self.name = name
        self.description = description
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if isnan(value):
            raise ValueError(f"histogram {self.name}: cannot observe NaN")
        # bisect_left keeps exact boundary hits in the bucket they bound
        # (upper-inclusive, Prometheus-style ``le`` semantics).
        self.counts[bisect_left(self.boundaries, value)] += 1
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        This is the usual fixed-bucket estimate: precise to bucket
        resolution, deterministic, and monotone in ``q``.  The overflow
        bucket reports the largest observation seen.
        """
        return quantile_from_counts(self.boundaries, self.counts,
                                    self._count, q, self._max)

    @property
    def p50(self) -> float:
        """Median estimate: the 0.50-quantile bucket upper bound."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """Tail estimate: the 0.95-quantile bucket upper bound."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """Far-tail estimate: the 0.99-quantile bucket upper bound."""
        return self.quantile(0.99)


class MetricsRegistry:
    """Names a coherent family of instruments and snapshots them.

    Instruments are created on first use (``registry.counter("x")``)
    and shared on every later lookup; asking for an existing name with
    a different instrument kind is an error, which catches accidental
    name collisions between subsystems early.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter, lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge, lambda: Gauge(name, description))

    def histogram(self, name: str,
                  boundaries: Sequence[float] = DEFAULT_BUCKETS,
                  description: str = "") -> Histogram:
        """Get or create the histogram called ``name``.

        The ``boundaries`` argument only applies on first creation;
        later lookups return the existing instrument unchanged.
        """
        return self._get(name, Histogram,
                         lambda: Histogram(name, boundaries, description))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or ``None``.

        Read-only lookup for consumers (the streaming pipeline, SLO
        objectives) that must never create instruments as a side
        effect of observing them.
        """
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """A JSON-able, deterministically ordered view of every instrument.

        Returns a dict with ``counters`` / ``gauges`` / ``histograms``
        sections, each keyed by sorted instrument name.  Histogram
        entries carry boundaries, per-bucket counts, sum, count, and —
        once non-empty — min/max and the p50/p95/p99 bucket estimates
        (omitted while empty so no non-finite values leak into JSON).
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                entry = {
                    "boundaries": list(instrument.boundaries),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.sum,
                }
                if instrument.count:
                    entry["min"] = instrument._min
                    entry["max"] = instrument._max
                    entry["p50"] = instrument.p50
                    entry["p95"] = instrument.p95
                    entry["p99"] = instrument.p99
                histograms[name] = entry
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
