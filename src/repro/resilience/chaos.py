"""Chaos experiments: measured resilience under injected failures (C17).

The paper's C17 calls for "systems that tolerate, predict, and even
steer failures"; its methodological thread (P6) demands that such
claims be *measured*, not asserted.  A :class:`ChaosExperiment`
composes the correlated failure models of :mod:`repro.failures.models`
with an arbitrary workload scenario and the resilience mechanisms of
this package — retry policies, checkpointing, hedging, load shedding —
then reports the metrics that matter for an availability story:

- **goodput**: core-seconds of work that finished and was useful;
- **wasted work**: core-seconds destroyed by interrupted executions
  (work since the victim's last checkpoint, plus losing hedge copies);
- **recovery time**: per failure burst, how long until every task it
  killed had finished after all;
- **availability**: machine-uptime fraction, checked against an SLO.

Experiments are bit-reproducible: all randomness — workload sampling,
failure generation, retry jitter, injection jitter — is drawn from
named :class:`~repro.sim.RandomStreams` substreams of one root seed,
so the same seed always yields the identical :class:`ChaosReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..datacenter.cluster import Cluster
from ..datacenter.datacenter import Datacenter
from ..failures.injection import FailureInjector
from ..failures.models import FailureEvent
from ..observability.slo import AlertLog, BurnRateRule, ServiceObjective
from ..scheduling.scheduler import ClusterScheduler
from ..selfaware.anomaly import RecoveryPlanner
from ..sim import RandomStreams, Simulator
from ..workload.task import Task, TaskState
from .checkpoint import CheckpointPolicy
from .policies import ExponentialBackoff, RetryPolicy

__all__ = ["ChaosExperiment", "ChaosReport", "compile_report"]

#: Builds the workload for one run: ``(streams) -> tasks``.
WorkloadFn = Callable[[RandomStreams], Sequence[Task]]
#: Builds the failure schedule: ``(streams, racks, horizon) -> events``,
#: where ``racks`` is a list of racks, each a list of machine names.
FailureFn = Callable[[RandomStreams, list, float], Sequence[FailureEvent]]


@dataclass
class ChaosReport:
    """Outcome of one chaos experiment."""

    seed: int
    makespan: float
    #: Task census.
    tasks_total: int = 0
    tasks_finished: int = 0
    tasks_shed: int = 0
    tasks_abandoned: int = 0
    #: Useful work delivered, in core-seconds of task runtime.
    goodput_core_seconds: float = 0.0
    #: Work destroyed by interruptions (beyond the last checkpoint).
    wasted_core_seconds: float = 0.0
    #: Work saved by checkpoints across interruptions.
    preserved_core_seconds: float = 0.0
    #: Throughput of useful work: goodput / makespan.
    goodput_rate: float = 0.0
    #: Fraction of attempted work that was wasted.
    wasted_fraction: float = 0.0
    #: Failure bursts injected / tasks they killed.
    failure_events: int = 0
    victim_tasks: int = 0
    #: Victims that never reached FINISHED by the end of the run.
    unrecovered_victims: int = 0
    #: Mean / max time from a burst to the last of its victims finishing.
    mean_recovery_time: float = 0.0
    max_recovery_time: float = 0.0
    #: Machine-uptime fraction over the run, and the SLO verdict.
    availability: float = 1.0
    availability_slo: float = 0.0
    slo_met: bool = True
    #: Retry and hedging activity.
    total_retries: int = 0
    max_attempts_observed: int = 0
    hedges_launched: int = 0
    hedge_wins: int = 0
    hedge_rescues: int = 0
    #: Resilience-invariant violations; empty means the run was clean.
    violations: list[str] = field(default_factory=list)
    #: SLO grading — populated only when the experiment declares
    #: ``slos`` and runs with an observer.  Kept out of
    #: :meth:`summary` so existing benchmark records stay comparable.
    slo_report: dict[str, dict[str, float]] | None = None
    alert_log: AlertLog | None = None

    @property
    def ok(self) -> bool:
        """True when no resilience invariant was violated."""
        return not self.violations

    def summary(self) -> dict[str, float]:
        """Flat numeric view for tabulation and benchmark records."""
        return {
            "seed": float(self.seed),
            "makespan": self.makespan,
            "tasks_total": float(self.tasks_total),
            "tasks_finished": float(self.tasks_finished),
            "tasks_shed": float(self.tasks_shed),
            "tasks_abandoned": float(self.tasks_abandoned),
            "goodput_core_seconds": self.goodput_core_seconds,
            "wasted_core_seconds": self.wasted_core_seconds,
            "preserved_core_seconds": self.preserved_core_seconds,
            "goodput_rate": self.goodput_rate,
            "wasted_fraction": self.wasted_fraction,
            "failure_events": float(self.failure_events),
            "victim_tasks": float(self.victim_tasks),
            "mean_recovery_time": self.mean_recovery_time,
            "max_recovery_time": self.max_recovery_time,
            "availability": self.availability,
            "slo_met": float(self.slo_met),
            "total_retries": float(self.total_retries),
            "hedges_launched": float(self.hedges_launched),
            "violations": float(len(self.violations)),
        }


class ChaosExperiment:
    """One reproducible resilience experiment over a cluster.

    Args:
        cluster: Factory for the physical topology, ``() -> Cluster``
            (a fresh cluster per run keeps runs independent).
        workload: ``(streams) -> tasks``; tasks are submitted at their
            ``submit_time`` through the scheduler.
        failures: ``(streams, racks, horizon) -> FailureEvent list``;
            ``racks`` is the cluster's rack layout as machine names —
            ready to feed a
            :class:`~repro.failures.models.SpaceCorrelatedModel`.
        seed: Root seed; every random choice in the run derives from it.
        horizon: Failure-generation horizon in sim-seconds.
        retry_policy: Policy for resubmitting failed tasks (default:
            exponential backoff, 6 attempts, decorrelated jitter).
        checkpoint_policy: Optional
            :class:`~repro.resilience.checkpoint.CheckpointPolicy`
            stamped onto the workload before submission.
        hedge_policy: Optional straggler-hedging policy for the
            scheduler.
        admission: Optional factory ``(datacenter) -> admission
            controller`` (e.g. wrapping
            :class:`~repro.resilience.shedding.LoadSheddingAdmission`).
        availability_slo: Machine-availability target in [0, 1] the
            report is checked against.
        injection_jitter: Perturbation bound on failure times, drawn
            from the ``"failure-injection"`` substream.
        max_time: Safety cap on simulated time.
        slos: Optional declared
            :class:`~repro.observability.slo.ServiceObjective` set the
            run is graded against at every telemetry tick.  Requires
            passing an observer to :meth:`run`; violations land in the
            report's ``violations`` and the full verdicts in
            ``slo_report`` / ``alert_log``.
        slo_rules: Burn-rate rules for the SLO engine (default: the
            SRE fast/slow pair,
            :data:`~repro.observability.slo.DEFAULT_BURN_RULES`).
        telemetry_interval: Sim-seconds between telemetry ticks when
            ``slos`` are declared.
    """

    def __init__(self, cluster: Callable[[], Cluster],
                 workload: WorkloadFn, failures: FailureFn,
                 seed: int = 0, horizon: float = 1000.0,
                 retry_policy: RetryPolicy | None = None,
                 checkpoint_policy: CheckpointPolicy | None = None,
                 hedge_policy: Any = None,
                 admission: Callable[[Datacenter], Any] | None = None,
                 availability_slo: float = 0.0,
                 injection_jitter: float = 0.0,
                 max_time: float = 10_000_000.0,
                 slos: Sequence[ServiceObjective] | None = None,
                 slo_rules: Sequence[BurnRateRule] | None = None,
                 telemetry_interval: float = 5.0) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= availability_slo <= 1.0:
            raise ValueError("availability_slo must be in [0, 1]")
        if injection_jitter < 0:
            raise ValueError("injection_jitter must be non-negative")
        if telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        self.cluster = cluster
        self.workload = workload
        self.failures = failures
        self.seed = seed
        self.horizon = horizon
        self.retry_policy = retry_policy or ExponentialBackoff(
            max_attempts=6, base=1.0, cap=60.0, jitter="decorrelated")
        self.checkpoint_policy = checkpoint_policy
        self.hedge_policy = hedge_policy
        self.admission = admission
        self.availability_slo = availability_slo
        self.injection_jitter = injection_jitter
        self.max_time = max_time
        self.slos = tuple(slos) if slos else ()
        self.slo_rules = tuple(slo_rules) if slo_rules else None
        self.telemetry_interval = telemetry_interval
        #: When True, ``workload`` takes ``(streams, datacenter)`` —
        #: the spec-builder signature — instead of ``(streams)``.
        self.workload_takes_datacenter = False

    # ------------------------------------------------------------------
    # Construction from a declarative spec
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Any) -> "ChaosExperiment":
        """A chaos experiment resolved from a declarative scenario spec.

        ``spec`` is a :class:`~repro.scenario.spec.ScenarioSpec` with a
        single-cluster topology; its workload/failure kinds, resilience
        sections, and SLO declarations map onto the experiment's
        constructor arguments.  The returned experiment runs through
        the same composition root as ``spec.run()``, so both paths
        yield identical reports for the same spec.
        """
        if len(spec.topology.clusters) != 1:
            raise ValueError("ChaosExperiment runs a single cluster; "
                             f"the spec declares "
                             f"{len(spec.topology.clusters)}")

        def cluster() -> Cluster:
            return spec.topology.clusters[0].build()

        experiment = cls(
            cluster=cluster,
            workload=spec.workload.build,
            failures=(spec.failures.build if spec.failures is not None
                      else lambda streams, racks, horizon: []),
            seed=spec.seed,
            horizon=spec.horizon,
            retry_policy=(spec.retries.build() if spec.retries is not None
                          else None),
            checkpoint_policy=(spec.checkpoints.build()
                               if spec.checkpoints is not None else None),
            hedge_policy=(spec.hedging.build()
                          if spec.hedging is not None else None),
            admission=(spec.shedding.build()
                       if spec.shedding is not None else None),
            availability_slo=spec.availability_slo,
            injection_jitter=spec.injection_jitter,
            max_time=spec.max_time,
            slos=(spec.slos.build_objectives()
                  if spec.slos is not None else None),
            slo_rules=(spec.slos.build_rules()
                       if spec.slos is not None else None),
            telemetry_interval=(spec.slos.telemetry_interval
                                if spec.slos is not None else 5.0))
        # Spec workload builders take ``(streams, datacenter)``; the
        # classic callable interface takes ``(streams)`` only.
        experiment.workload_takes_datacenter = True
        return experiment

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, observer: Any = None) -> ChaosReport:
        """Execute the experiment once and report.

        Composition and the drive loop are delegated to the scenario
        kernel (:func:`repro.scenario.runtime.compose`) — the chaos
        harness is a thin resilience-flavored view over the same
        composition root every other entry point uses.

        Args:
            observer: Optional
                :class:`~repro.observability.observer.Observer` to
                attach to the run's private simulator.  When given, the
                run streams spans and ``scheduler.*`` /
                ``datacenter.*`` / ``failures.*`` metrics live, and the
                finished report's fields are published as ``chaos.*``
                gauges — the registry replaces reading counters off the
                report by hand.  Observability never perturbs the run:
                the same seed yields the identical report either way.
        """
        from ..scenario.runtime import compose
        if self.slos and observer is None:
            raise ValueError(
                "SLO grading reads the metrics registry; pass an observer "
                "to run() when the experiment declares slos")
        workload = self.workload
        if getattr(self, "workload_takes_datacenter", False):
            workload2 = workload
        else:
            def workload2(streams: RandomStreams,
                          datacenter: Datacenter) -> Sequence[Task]:
                return workload(streams)
        runtime = compose(
            seed=self.seed,
            clusters=lambda: [self.cluster()],
            workload=workload2,
            failures=self.failures,
            observer=observer,
            slos=self.slos,
            slo_rules=self.slo_rules,
            telemetry_interval=self.telemetry_interval,
            admission=self.admission,
            hedge_policy=self.hedge_policy,
            retry_policy=self.retry_policy,
            checkpoint_policy=self.checkpoint_policy,
            datacenter_name="chaos-dc",
            horizon=self.horizon,
            injection_jitter=self.injection_jitter,
            availability_slo=self.availability_slo,
            max_time=self.max_time)
        runtime.drive()
        runtime.finalize()
        report = runtime.chaos_report()
        if observer is not None:
            for key, value in report.summary().items():
                observer.metrics.gauge(f"chaos.{key}").set(value)
            # The run's simulator is private; release the observer so
            # its collected data can outlive the experiment (and the
            # observer itself could be attached elsewhere).
            observer.detach()
        return report


# ---------------------------------------------------------------------------
# Report compilation (shared with the scenario kernel)
# ---------------------------------------------------------------------------
def compile_report(sim: Simulator, datacenter: Datacenter,
                   scheduler: ClusterScheduler,
                   planner: RecoveryPlanner | None,
                   injector: FailureInjector | None,
                   tasks: Sequence[Task], *, seed: int,
                   availability_slo: float = 0.0,
                   retry_policy: RetryPolicy | None = None) -> ChaosReport:
    """Compile the resilience report for one finished run.

    The single grading path shared by :meth:`ChaosExperiment.run` and
    :meth:`~repro.scenario.runtime.ScenarioRuntime.chaos_report`.
    ``planner`` / ``injector`` / ``retry_policy`` may be ``None`` for
    runs without retries or failure injection; the corresponding
    counters report zero and the attempt-budget invariant is skipped.
    """
    finished = [t for t in tasks if t.state is TaskState.FINISHED]
    shed = [t for t in tasks if t.state is TaskState.SHED]
    makespan = (max(t.finish_time for t in finished) if finished
                else sim.now)
    goodput = sum(t.runtime * t.cores for t in finished)
    wasted = datacenter.wasted_core_seconds
    attempted = goodput + wasted
    recovery = _recovery_times(injector)
    unrecovered = 0 if injector is None else sum(
        1 for _, _, victims in injector.event_log
        for v in victims if v.state is not TaskState.FINISHED
        and not v.speculative)
    availability = _availability(sim, datacenter, injector)
    report = ChaosReport(
        seed=seed,
        makespan=makespan,
        tasks_total=len(tasks),
        tasks_finished=len(finished),
        tasks_shed=len(shed),
        tasks_abandoned=0 if planner is None else len(planner.abandoned),
        goodput_core_seconds=goodput,
        wasted_core_seconds=wasted,
        preserved_core_seconds=datacenter.preserved_core_seconds,
        goodput_rate=goodput / makespan if makespan > 0 else 0.0,
        wasted_fraction=wasted / attempted if attempted > 0 else 0.0,
        failure_events=0 if injector is None else len(injector.event_log),
        victim_tasks=0 if injector is None else injector.victim_tasks,
        unrecovered_victims=unrecovered,
        mean_recovery_time=(sum(recovery) / len(recovery)
                            if recovery else 0.0),
        max_recovery_time=max(recovery, default=0.0),
        availability=availability,
        availability_slo=availability_slo,
        slo_met=availability >= availability_slo,
        total_retries=0 if planner is None else planner.total_retries,
        max_attempts_observed=max(
            (t.attempts for t in tasks if not t.speculative), default=0),
        hedges_launched=scheduler.hedges_launched,
        hedge_wins=scheduler.hedge_wins,
        hedge_rescues=scheduler.hedge_rescues,
    )
    report.violations = _check_invariants(
        datacenter, planner, tasks, report,
        availability_slo=availability_slo, retry_policy=retry_policy)
    return report


def _recovery_times(injector: FailureInjector | None) -> list[float]:
    """Burst time to last-victim-finish, per burst with victims."""
    if injector is None:
        return []
    times = []
    for when, _, victims in injector.event_log:
        finishes = [v.finish_time for v in victims
                    if v.state is TaskState.FINISHED]
        if finishes:
            times.append(max(finishes) - when)
    return times


def _availability(sim: Simulator, datacenter: Datacenter,
                  injector: FailureInjector | None) -> float:
    """Machine-uptime fraction over the run (1.0 with no injector)."""
    if injector is None:
        return 1.0
    elapsed = sim.now
    n_machines = len(datacenter.machines())
    if elapsed <= 0 or n_machines == 0:
        return 1.0
    downtime = sum(end - start
                   for intervals in injector.downtime_intervals().values()
                   for start, end in intervals)
    return 1.0 - downtime / (n_machines * elapsed)


def _check_invariants(datacenter: Datacenter,
                      planner: RecoveryPlanner | None,
                      tasks: Sequence[Task], report: ChaosReport, *,
                      availability_slo: float,
                      retry_policy: RetryPolicy | None) -> list[str]:
    """The resilience invariants; empty when the run was clean."""
    violations = []
    abandoned = () if planner is None else planner.abandoned
    abandoned_ids = {id(t) for t in abandoned}
    stuck = [t for t in tasks
             if t.state not in (TaskState.FINISHED, TaskState.SHED)
             and id(t) not in abandoned_ids]
    if stuck:
        violations.append(
            f"{len(stuck)} non-shed tasks neither finished nor were "
            f"abandoned (first: {stuck[0].name}, {stuck[0].state.value})")
    if retry_policy is not None:
        budget = retry_policy.max_attempts
        over = [t for t in tasks
                if not t.speculative and t.attempts > budget]
        if over:
            violations.append(
                f"{len(over)} tasks exceeded the {budget}-attempt budget "
                f"(worst: {max(t.attempts for t in over)} attempts)")
    for task, lost in datacenter.execution_losses:
        interval = task.checkpoint_interval
        if interval is not None and lost > interval + 1e-6:
            violations.append(
                f"task {task.name} lost {lost:.3f}s of work, more than "
                f"its {interval:.3f}s checkpoint interval")
            break
    if not report.slo_met and availability_slo > 0:
        violations.append(
            f"availability {report.availability:.4f} misses the "
            f"{availability_slo:.4f} SLO")
    return violations
