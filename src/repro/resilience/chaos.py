"""Chaos experiments: measured resilience under injected failures (C17).

The paper's C17 calls for "systems that tolerate, predict, and even
steer failures"; its methodological thread (P6) demands that such
claims be *measured*, not asserted.  A :class:`ChaosExperiment`
composes the correlated failure models of :mod:`repro.failures.models`
with an arbitrary workload scenario and the resilience mechanisms of
this package — retry policies, checkpointing, hedging, load shedding —
then reports the metrics that matter for an availability story:

- **goodput**: core-seconds of work that finished and was useful;
- **wasted work**: core-seconds destroyed by interrupted executions
  (work since the victim's last checkpoint, plus losing hedge copies);
- **recovery time**: per failure burst, how long until every task it
  killed had finished after all;
- **availability**: machine-uptime fraction, checked against an SLO.

Experiments are bit-reproducible: all randomness — workload sampling,
failure generation, retry jitter, injection jitter — is drawn from
named :class:`~repro.sim.RandomStreams` substreams of one root seed,
so the same seed always yields the identical :class:`ChaosReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..datacenter.cluster import Cluster
from ..datacenter.datacenter import Datacenter
from ..failures.injection import FailureInjector
from ..failures.models import FailureEvent
from ..observability.slo import (AlertLog, BurnRateRule, ServiceObjective,
                                 SLOEngine)
from ..observability.streaming import StreamingPipeline
from ..scheduling.scheduler import ClusterScheduler
from ..selfaware.anomaly import RecoveryPlanner
from ..sim import RandomStreams, Simulator
from ..workload.task import Task, TaskState
from .checkpoint import CheckpointPolicy
from .policies import ExponentialBackoff, RetryPolicy

__all__ = ["ChaosExperiment", "ChaosReport"]

#: Builds the workload for one run: ``(streams) -> tasks``.
WorkloadFn = Callable[[RandomStreams], Sequence[Task]]
#: Builds the failure schedule: ``(streams, racks, horizon) -> events``,
#: where ``racks`` is a list of racks, each a list of machine names.
FailureFn = Callable[[RandomStreams, list, float], Sequence[FailureEvent]]


@dataclass
class ChaosReport:
    """Outcome of one chaos experiment."""

    seed: int
    makespan: float
    #: Task census.
    tasks_total: int = 0
    tasks_finished: int = 0
    tasks_shed: int = 0
    tasks_abandoned: int = 0
    #: Useful work delivered, in core-seconds of task runtime.
    goodput_core_seconds: float = 0.0
    #: Work destroyed by interruptions (beyond the last checkpoint).
    wasted_core_seconds: float = 0.0
    #: Work saved by checkpoints across interruptions.
    preserved_core_seconds: float = 0.0
    #: Throughput of useful work: goodput / makespan.
    goodput_rate: float = 0.0
    #: Fraction of attempted work that was wasted.
    wasted_fraction: float = 0.0
    #: Failure bursts injected / tasks they killed.
    failure_events: int = 0
    victim_tasks: int = 0
    #: Victims that never reached FINISHED by the end of the run.
    unrecovered_victims: int = 0
    #: Mean / max time from a burst to the last of its victims finishing.
    mean_recovery_time: float = 0.0
    max_recovery_time: float = 0.0
    #: Machine-uptime fraction over the run, and the SLO verdict.
    availability: float = 1.0
    availability_slo: float = 0.0
    slo_met: bool = True
    #: Retry and hedging activity.
    total_retries: int = 0
    max_attempts_observed: int = 0
    hedges_launched: int = 0
    hedge_wins: int = 0
    hedge_rescues: int = 0
    #: Resilience-invariant violations; empty means the run was clean.
    violations: list[str] = field(default_factory=list)
    #: SLO grading — populated only when the experiment declares
    #: ``slos`` and runs with an observer.  Kept out of
    #: :meth:`summary` so existing benchmark records stay comparable.
    slo_report: dict[str, dict[str, float]] | None = None
    alert_log: AlertLog | None = None

    @property
    def ok(self) -> bool:
        """True when no resilience invariant was violated."""
        return not self.violations

    def summary(self) -> dict[str, float]:
        """Flat numeric view for tabulation and benchmark records."""
        return {
            "seed": float(self.seed),
            "makespan": self.makespan,
            "tasks_total": float(self.tasks_total),
            "tasks_finished": float(self.tasks_finished),
            "tasks_shed": float(self.tasks_shed),
            "tasks_abandoned": float(self.tasks_abandoned),
            "goodput_core_seconds": self.goodput_core_seconds,
            "wasted_core_seconds": self.wasted_core_seconds,
            "preserved_core_seconds": self.preserved_core_seconds,
            "goodput_rate": self.goodput_rate,
            "wasted_fraction": self.wasted_fraction,
            "failure_events": float(self.failure_events),
            "victim_tasks": float(self.victim_tasks),
            "mean_recovery_time": self.mean_recovery_time,
            "max_recovery_time": self.max_recovery_time,
            "availability": self.availability,
            "slo_met": float(self.slo_met),
            "total_retries": float(self.total_retries),
            "hedges_launched": float(self.hedges_launched),
            "violations": float(len(self.violations)),
        }


class ChaosExperiment:
    """One reproducible resilience experiment over a cluster.

    Args:
        cluster: Factory for the physical topology, ``() -> Cluster``
            (a fresh cluster per run keeps runs independent).
        workload: ``(streams) -> tasks``; tasks are submitted at their
            ``submit_time`` through the scheduler.
        failures: ``(streams, racks, horizon) -> FailureEvent list``;
            ``racks`` is the cluster's rack layout as machine names —
            ready to feed a
            :class:`~repro.failures.models.SpaceCorrelatedModel`.
        seed: Root seed; every random choice in the run derives from it.
        horizon: Failure-generation horizon in sim-seconds.
        retry_policy: Policy for resubmitting failed tasks (default:
            exponential backoff, 6 attempts, decorrelated jitter).
        checkpoint_policy: Optional
            :class:`~repro.resilience.checkpoint.CheckpointPolicy`
            stamped onto the workload before submission.
        hedge_policy: Optional straggler-hedging policy for the
            scheduler.
        admission: Optional factory ``(datacenter) -> admission
            controller`` (e.g. wrapping
            :class:`~repro.resilience.shedding.LoadSheddingAdmission`).
        availability_slo: Machine-availability target in [0, 1] the
            report is checked against.
        injection_jitter: Perturbation bound on failure times, drawn
            from the ``"failure-injection"`` substream.
        max_time: Safety cap on simulated time.
        slos: Optional declared
            :class:`~repro.observability.slo.ServiceObjective` set the
            run is graded against at every telemetry tick.  Requires
            passing an observer to :meth:`run`; violations land in the
            report's ``violations`` and the full verdicts in
            ``slo_report`` / ``alert_log``.
        slo_rules: Burn-rate rules for the SLO engine (default: the
            SRE fast/slow pair,
            :data:`~repro.observability.slo.DEFAULT_BURN_RULES`).
        telemetry_interval: Sim-seconds between telemetry ticks when
            ``slos`` are declared.
    """

    def __init__(self, cluster: Callable[[], Cluster],
                 workload: WorkloadFn, failures: FailureFn,
                 seed: int = 0, horizon: float = 1000.0,
                 retry_policy: RetryPolicy | None = None,
                 checkpoint_policy: CheckpointPolicy | None = None,
                 hedge_policy: Any = None,
                 admission: Callable[[Datacenter], Any] | None = None,
                 availability_slo: float = 0.0,
                 injection_jitter: float = 0.0,
                 max_time: float = 10_000_000.0,
                 slos: Sequence[ServiceObjective] | None = None,
                 slo_rules: Sequence[BurnRateRule] | None = None,
                 telemetry_interval: float = 5.0) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= availability_slo <= 1.0:
            raise ValueError("availability_slo must be in [0, 1]")
        if injection_jitter < 0:
            raise ValueError("injection_jitter must be non-negative")
        if telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        self.cluster = cluster
        self.workload = workload
        self.failures = failures
        self.seed = seed
        self.horizon = horizon
        self.retry_policy = retry_policy or ExponentialBackoff(
            max_attempts=6, base=1.0, cap=60.0, jitter="decorrelated")
        self.checkpoint_policy = checkpoint_policy
        self.hedge_policy = hedge_policy
        self.admission = admission
        self.availability_slo = availability_slo
        self.injection_jitter = injection_jitter
        self.max_time = max_time
        self.slos = tuple(slos) if slos else ()
        self.slo_rules = tuple(slo_rules) if slo_rules else None
        self.telemetry_interval = telemetry_interval

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, observer: Any = None) -> ChaosReport:
        """Execute the experiment once and report.

        Args:
            observer: Optional
                :class:`~repro.observability.observer.Observer` to
                attach to the run's private simulator.  When given, the
                run streams spans and ``scheduler.*`` /
                ``datacenter.*`` / ``failures.*`` metrics live, and the
                finished report's fields are published as ``chaos.*``
                gauges — the registry replaces reading counters off the
                report by hand.  Observability never perturbs the run:
                the same seed yields the identical report either way.
        """
        if self.slos and observer is None:
            raise ValueError(
                "SLO grading reads the metrics registry; pass an observer "
                "to run() when the experiment declares slos")
        sim = Simulator()
        if observer is not None:
            observer.attach(sim)
        engine: SLOEngine | None = None
        if self.slos:
            pipeline = StreamingPipeline(sim, observer.metrics,
                                         interval=self.telemetry_interval)
            engine = (SLOEngine(pipeline, self.slos, rules=self.slo_rules)
                      if self.slo_rules is not None
                      else SLOEngine(pipeline, self.slos))
        streams = RandomStreams(self.seed)
        cluster = self.cluster()
        datacenter = Datacenter(sim, [cluster], name="chaos-dc")
        admission = self.admission(datacenter) if self.admission else None
        scheduler = ClusterScheduler(sim, datacenter, admission=admission,
                                     hedge_policy=self.hedge_policy)
        planner = RecoveryPlanner(scheduler, retry_policy=self.retry_policy,
                                  rng=streams.stream("retry-jitter"))
        tasks = list(self.workload(streams))
        if not tasks:
            raise ValueError("the workload produced no tasks")
        if self.checkpoint_policy is not None:
            self.checkpoint_policy.apply(tasks)
        racks = [[m.name for m in rack] for rack in cluster.racks]
        events = list(self.failures(streams, racks, self.horizon))
        injector = FailureInjector(sim, datacenter, events, streams=streams,
                                   jitter=self.injection_jitter)
        sim.process(self._arrivals(sim, scheduler, tasks), name="arrivals")
        # Run to event exhaustion, but without the clock jump to the
        # stop time that run(until=...) performs on an early drain —
        # the availability denominator is the *actual* elapsed time.
        # Telemetry ticks are driven externally (`advance`) rather than
        # as sim events, so observation can never keep a drained
        # simulation alive or perturb its event order.
        if engine is None:
            while sim.peek() <= self.max_time:
                sim.step()
        else:
            pipeline = engine.pipeline
            while (when := sim.peek()) <= self.max_time:
                pipeline.advance(when)
                sim.step()
            pipeline.advance(sim.now)
        scheduler.stop()
        report = self._report(sim, datacenter, scheduler, planner, injector,
                              tasks)
        if engine is not None:
            report.slo_report = engine.report()
            report.alert_log = engine.alerts
            report.violations.extend(engine.violations())
        if observer is not None:
            for key, value in report.summary().items():
                observer.metrics.gauge(f"chaos.{key}").set(value)
            # The run's simulator is private; release the observer so
            # its collected data can outlive the experiment (and the
            # observer itself could be attached elsewhere).
            observer.detach()
        return report

    @staticmethod
    def _arrivals(sim: Simulator, scheduler: ClusterScheduler,
                  tasks: Sequence[Task]):
        for task in sorted(tasks, key=lambda t: (t.submit_time, t.name)):
            delay = task.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit(task)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, sim: Simulator, datacenter: Datacenter,
                scheduler: ClusterScheduler, planner: RecoveryPlanner,
                injector: FailureInjector,
                tasks: Sequence[Task]) -> ChaosReport:
        finished = [t for t in tasks if t.state is TaskState.FINISHED]
        shed = [t for t in tasks if t.state is TaskState.SHED]
        makespan = (max(t.finish_time for t in finished) if finished
                    else sim.now)
        goodput = sum(t.runtime * t.cores for t in finished)
        wasted = datacenter.wasted_core_seconds
        attempted = goodput + wasted
        recovery = self._recovery_times(injector)
        unrecovered = sum(
            1 for _, _, victims in injector.event_log
            for v in victims if v.state is not TaskState.FINISHED
            and not v.speculative)
        availability = self._availability(sim, datacenter, injector)
        report = ChaosReport(
            seed=self.seed,
            makespan=makespan,
            tasks_total=len(tasks),
            tasks_finished=len(finished),
            tasks_shed=len(shed),
            tasks_abandoned=len(planner.abandoned),
            goodput_core_seconds=goodput,
            wasted_core_seconds=wasted,
            preserved_core_seconds=datacenter.preserved_core_seconds,
            goodput_rate=goodput / makespan if makespan > 0 else 0.0,
            wasted_fraction=wasted / attempted if attempted > 0 else 0.0,
            failure_events=len(injector.event_log),
            victim_tasks=injector.victim_tasks,
            unrecovered_victims=unrecovered,
            mean_recovery_time=(sum(recovery) / len(recovery)
                                if recovery else 0.0),
            max_recovery_time=max(recovery, default=0.0),
            availability=availability,
            availability_slo=self.availability_slo,
            slo_met=availability >= self.availability_slo,
            total_retries=planner.total_retries,
            max_attempts_observed=max(
                (t.attempts for t in tasks if not t.speculative), default=0),
            hedges_launched=scheduler.hedges_launched,
            hedge_wins=scheduler.hedge_wins,
            hedge_rescues=scheduler.hedge_rescues,
        )
        report.violations = self._check_invariants(datacenter, planner,
                                                   tasks, report)
        return report

    @staticmethod
    def _recovery_times(injector: FailureInjector) -> list[float]:
        """Burst time to last-victim-finish, per burst with victims."""
        times = []
        for when, _, victims in injector.event_log:
            finishes = [v.finish_time for v in victims
                        if v.state is TaskState.FINISHED]
            if finishes:
                times.append(max(finishes) - when)
        return times

    @staticmethod
    def _availability(sim: Simulator, datacenter: Datacenter,
                      injector: FailureInjector) -> float:
        elapsed = sim.now
        n_machines = len(datacenter.machines())
        if elapsed <= 0 or n_machines == 0:
            return 1.0
        downtime = sum(end - start
                       for intervals in injector.downtime_intervals().values()
                       for start, end in intervals)
        return 1.0 - downtime / (n_machines * elapsed)

    def _check_invariants(self, datacenter: Datacenter,
                          planner: RecoveryPlanner, tasks: Sequence[Task],
                          report: ChaosReport) -> list[str]:
        violations = []
        abandoned_ids = {id(t) for t in planner.abandoned}
        stuck = [t for t in tasks
                 if t.state not in (TaskState.FINISHED, TaskState.SHED)
                 and id(t) not in abandoned_ids]
        if stuck:
            violations.append(
                f"{len(stuck)} non-shed tasks neither finished nor were "
                f"abandoned (first: {stuck[0].name}, {stuck[0].state.value})")
        budget = self.retry_policy.max_attempts
        over = [t for t in tasks
                if not t.speculative and t.attempts > budget]
        if over:
            violations.append(
                f"{len(over)} tasks exceeded the {budget}-attempt budget "
                f"(worst: {max(t.attempts for t in over)} attempts)")
        for task, lost in datacenter.execution_losses:
            interval = task.checkpoint_interval
            if interval is not None and lost > interval + 1e-6:
                violations.append(
                    f"task {task.name} lost {lost:.3f}s of work, more than "
                    f"its {interval:.3f}s checkpoint interval")
                break
        if not report.slo_met and self.availability_slo > 0:
            violations.append(
                f"availability {report.availability:.4f} misses the "
                f"{self.availability_slo:.4f} SLO")
        return violations
