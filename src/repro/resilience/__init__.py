"""Ecosystem-wide resilience mechanisms (C17, §6 techniques).

The paper's challenge C17 asks for ecosystems that "tolerate, predict,
and even steer failures"; this package supplies the composable
mechanisms the rest of the stack wires in:

- :mod:`~repro.resilience.policies` — retry policies (fixed and
  exponential backoff with jitter) and Finagle-style retry budgets;
- :mod:`~repro.resilience.breakers` — circuit breakers and deadlines;
- :mod:`~repro.resilience.checkpoint` — checkpoint/restart arithmetic
  and a policy stamping checkpoint intervals onto long tasks;
- :mod:`~repro.resilience.hedging` — speculative (hedged) execution
  policies against stragglers;
- :mod:`~repro.resilience.shedding` — load-shedding admission control;
- :mod:`~repro.resilience.chaos` — a chaos-experiment harness that
  composes the correlated failure models with any scenario and
  measures goodput, wasted work, recovery time, and availability.
"""

from .breakers import BreakerState, CircuitBreaker, Deadline
from .chaos import ChaosExperiment, ChaosReport
from .checkpoint import (
    CheckpointPolicy,
    checkpoints_remaining,
    preserved_work,
)
from .hedging import HedgePolicy
from .policies import (
    ExponentialBackoff,
    FixedBackoff,
    NoRetry,
    RetryBudget,
    RetryPolicy,
    RetrySession,
)
from .shedding import LoadSheddingAdmission

__all__ = [
    "RetryPolicy",
    "NoRetry",
    "FixedBackoff",
    "ExponentialBackoff",
    "RetrySession",
    "RetryBudget",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "CheckpointPolicy",
    "checkpoints_remaining",
    "preserved_work",
    "HedgePolicy",
    "LoadSheddingAdmission",
    "ChaosExperiment",
    "ChaosReport",
]
