"""Circuit breakers and deadlines for inter-system calls (C17).

When a downstream system (a FaaS platform, a federation peer) starts
failing, continuing to call it both wastes work and delays the caller's
own recovery.  A :class:`CircuitBreaker` tracks consecutive failures on
one dependency and, past a threshold, *opens*: calls are rejected
immediately (the caller falls back to a degraded path) until a
``recovery_timeout`` elapses, after which a limited number of
*half-open* probe calls test whether the dependency healed.

The breaker reads time from the simulator clock, so experiments remain
deterministic.  It is deliberately duck-typed — consumers
(:mod:`repro.faas.platform`, :mod:`repro.datacenter.federation`) accept
any object with ``allow`` / ``record_success`` / ``record_failure``.
"""

from __future__ import annotations

import enum

from ..sim import Simulator

__all__ = ["BreakerState", "CircuitBreaker", "Deadline"]


class BreakerState(enum.Enum):
    """The classic three-state breaker automaton."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker on one named dependency.

    Args:
        sim: Simulator whose clock drives the recovery timeout.
        failure_threshold: Consecutive failures that open the breaker.
        recovery_timeout: Sim-time the breaker stays open before
            allowing half-open probes.
        half_open_max: Probe calls allowed while half-open; one success
            closes the breaker, one failure re-opens it.
    """

    def __init__(self, sim: Simulator, name: str = "breaker",
                 failure_threshold: int = 5,
                 recovery_timeout: float = 30.0,
                 half_open_max: int = 1) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_timeout <= 0:
            raise ValueError("recovery_timeout must be positive")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.sim = sim
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.half_open_max = half_open_max

        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        #: (time, state) transition log for post-hoc analysis.
        self.transitions: list[tuple[float, BreakerState]] = []
        self.calls_allowed = 0
        self.calls_rejected = 0

    @property
    def state(self) -> BreakerState:
        """Current state, accounting for recovery-timeout expiry."""
        if (self._state is BreakerState.OPEN
                and self.sim.now - self._opened_at >= self.recovery_timeout):
            self._transition(BreakerState.HALF_OPEN)
            self._half_open_inflight = 0
        return self._state

    def _transition(self, state: BreakerState) -> None:
        if state is not self._state:
            self._state = state
            self.transitions.append((self.sim.now, state))

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts probe slots)."""
        state = self.state
        if state is BreakerState.CLOSED:
            self.calls_allowed += 1
            return True
        if state is BreakerState.HALF_OPEN:
            if self._half_open_inflight < self.half_open_max:
                self._half_open_inflight += 1
                self.calls_allowed += 1
                return True
        self.calls_rejected += 1
        return False

    def record_success(self) -> None:
        """Report a successful call; closes a half-open breaker."""
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._half_open_inflight = 0
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """Report a failed call; may open the breaker."""
        state = self.state
        if state is BreakerState.HALF_OPEN:
            self._half_open_inflight = 0
            self._open()
            return
        self._consecutive_failures += 1
        if (state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._open()

    def _open(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = self.sim.now
        self._transition(BreakerState.OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CircuitBreaker {self.name} {self.state.value}>"


class Deadline:
    """An absolute or relative time bound on one call.

    A tiny value object so call sites read
    ``Deadline(5.0).expires_at(sim.now)`` instead of bare floats.
    """

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout

    def expires_at(self, now: float) -> float:
        """Absolute sim-time at which a call started ``now`` expires."""
        return now + self.timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline {self.timeout}s>"
