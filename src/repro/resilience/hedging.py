"""Hedged (speculative) execution against stragglers and failures.

"The tail at scale" defense: when a task has run well past its expected
service time — because it landed on a slow machine, or its machine is
about to be lost — launch a backup copy elsewhere and keep whichever
finishes first.  The :class:`~repro.scheduling.scheduler.ClusterScheduler`
implements the mechanics (clone, race, cancel the loser, adopt the
winner's result); this module provides the policy that decides *when*
to hedge.
"""

from __future__ import annotations

__all__ = ["HedgePolicy"]


class HedgePolicy:
    """Decides when a running task deserves a speculative backup.

    Args:
        delay_factor: A backup launches once the task has been running
            ``delay_factor`` times its expected service time on its
            machine.  Values <= 1 hedge immediately; the classic
            straggler setting is 1.5-2.5.
        min_delay: Never hedge before this much sim-time has passed —
            keeps short tasks from being hedged on noise.
        max_hedges: Backups allowed per task (almost always 1).
        min_runtime: Tasks shorter than this are never hedged; a
            backup for a tiny task costs more than the wait.
    """

    def __init__(self, delay_factor: float = 2.0, min_delay: float = 0.0,
                 max_hedges: int = 1, min_runtime: float = 0.0) -> None:
        if delay_factor <= 0:
            raise ValueError(f"delay_factor must be positive, got {delay_factor}")
        if min_delay < 0:
            raise ValueError(f"min_delay must be non-negative, got {min_delay}")
        if max_hedges < 1:
            raise ValueError(f"max_hedges must be >= 1, got {max_hedges}")
        if min_runtime < 0:
            raise ValueError(f"min_runtime must be non-negative, got {min_runtime}")
        self.delay_factor = delay_factor
        self.min_delay = min_delay
        self.max_hedges = max_hedges
        self.min_runtime = min_runtime

    def should_consider(self, runtime: float) -> bool:
        """Whether a task of this runtime is worth watching at all."""
        return runtime >= self.min_runtime

    def hedge_delay(self, expected_service_time: float) -> float:
        """Running time after which a backup copy should launch."""
        return max(self.min_delay, self.delay_factor * expected_service_time)
