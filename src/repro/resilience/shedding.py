"""Load-shedding admission control: graceful degradation (C17).

"Systems should degrade gracefully under vicissitude": when the
datacenter is saturated — typically *because* a correlated failure just
removed a chunk of capacity — admitting every incoming task only grows
the queue and pushes every deadline over.  The
:class:`LoadSheddingAdmission` controller sits in front of a scheduler
and, above a utilization threshold, drops low-priority work outright
and optionally *degrades* mid-priority work (runs a cheaper variant) so
that high-priority tasks keep their service level.
"""

from __future__ import annotations

from ..datacenter.datacenter import Datacenter
from ..workload.task import Task

__all__ = ["LoadSheddingAdmission"]


class LoadSheddingAdmission:
    """Utilization-gated, priority-aware admission controller.

    Args:
        datacenter: Source of the instantaneous utilization signal.
        threshold: Utilization in [0, 1] above which shedding starts.
        shed_below: Tasks with ``priority`` strictly below this are
            dropped while over threshold.
        degrade_below: Tasks with priority in ``[shed_below,
            degrade_below)`` are admitted degraded: their runtime is
            scaled by ``degrade_factor`` (a cheaper, lower-quality
            execution).  Defaults to ``shed_below`` (no degradation).
        degrade_factor: Runtime multiplier for degraded admissions.
    """

    def __init__(self, datacenter: Datacenter, threshold: float = 0.9,
                 shed_below: int = 0, degrade_below: int | None = None,
                 degrade_factor: float = 0.5) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        if degrade_below is None:
            degrade_below = shed_below
        if degrade_below < shed_below:
            raise ValueError("degrade_below must be >= shed_below")
        if not 0.0 < degrade_factor <= 1.0:
            raise ValueError(f"degrade_factor must be in (0, 1], got {degrade_factor}")
        self.datacenter = datacenter
        self.threshold = threshold
        self.shed_below = shed_below
        self.degrade_below = degrade_below
        self.degrade_factor = degrade_factor
        self.admitted = 0
        self.shed: list[Task] = []
        self.degraded: list[Task] = []

    @property
    def overloaded(self) -> bool:
        """Whether the utilization signal is at or above the threshold."""
        return self.datacenter.utilization() >= self.threshold

    def admit(self, task: Task) -> bool:
        """Admission decision for one task; may degrade it in place."""
        if self.overloaded:
            if task.priority < self.shed_below:
                self.shed.append(task)
                return False
            if task.priority < self.degrade_below:
                task.runtime *= self.degrade_factor
                task.degraded = True
                self.degraded.append(task)
        self.admitted += 1
        return True

    def statistics(self) -> dict[str, float]:
        """Counts of admitted, shed, and degraded tasks."""
        total = self.admitted + len(self.shed)
        return {
            "offered": float(total),
            "admitted": float(self.admitted),
            "shed": float(len(self.shed)),
            "degraded": float(len(self.degraded)),
            "shed_fraction": len(self.shed) / total if total else 0.0,
        }
