"""Composable retry policies with bounded budgets (C17, §2.2 problem 2).

Unbounded, immediate retry — what the seed's workflow engine did — is
exactly the retry-storm anti-pattern that amplifies correlated failures
into ecosystem-wide outages.  The policies here bound *how many* times
a unit of work may be retried and space the attempts out in time:

- :class:`NoRetry` / :class:`FixedBackoff`: the baselines.
- :class:`ExponentialBackoff`: exponential delays, optionally with
  *full* or *decorrelated* jitter (the AWS-architecture-blog family),
  so synchronized failures do not resubmit in synchronized waves.
- :class:`RetryBudget`: a global token bucket that caps the *ratio* of
  retries to first attempts across the whole system, so a correlated
  burst cannot multiply load even when per-task budgets allow it.

Policies are stateless and shareable; per-task attempt state lives in
the :class:`RetrySession` a caller obtains from
:meth:`RetryPolicy.session`.  Jitter draws come from an explicitly
provided ``random.Random`` — in simulations, a
:class:`~repro.sim.rng.RandomStreams` substream — never from an
implicit global seed, so chaos experiments stay bit-reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = [
    "RetryPolicy",
    "NoRetry",
    "FixedBackoff",
    "ExponentialBackoff",
    "RetrySession",
    "RetryBudget",
]


class RetryPolicy:
    """Decides whether a failed attempt may retry, and after what delay.

    Args:
        max_attempts: Total execution attempts allowed, including the
            first one (``max_attempts=3`` means up to two retries).
    """

    def __init__(self, max_attempts: int) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts

    @property
    def max_retries(self) -> int:
        """Retries allowed after the first attempt."""
        return self.max_attempts - 1

    def delay(self, retry_number: int, previous_delay: float,
              rng: Optional[random.Random]) -> float:
        """Backoff before retry ``retry_number`` (1-based).  Override."""
        raise NotImplementedError

    def session(self, rng: Optional[random.Random] = None) -> "RetrySession":
        """Per-work-unit attempt tracker bound to this policy."""
        return RetrySession(self, rng)


class NoRetry(RetryPolicy):
    """Fail fast: the first attempt is the only attempt."""

    def __init__(self) -> None:
        super().__init__(max_attempts=1)

    def delay(self, retry_number: int, previous_delay: float,
              rng: Optional[random.Random]) -> float:  # pragma: no cover
        """Never called — the one-attempt budget is spent up front."""
        raise RuntimeError("NoRetry never grants a retry")


class FixedBackoff(RetryPolicy):
    """A constant delay between attempts."""

    def __init__(self, max_attempts: int = 3, delay: float = 0.0) -> None:
        super().__init__(max_attempts)
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.fixed_delay = delay

    def delay(self, retry_number: int, previous_delay: float,
              rng: Optional[random.Random]) -> float:
        """The configured constant delay, regardless of retry number."""
        return self.fixed_delay


class ExponentialBackoff(RetryPolicy):
    """Exponential backoff with optional (decorrelated) jitter.

    Args:
        max_attempts: Total attempts, including the first.
        base: Delay before the first retry.
        cap: Upper bound on any single delay.
        multiplier: Growth factor between consecutive retries.
        jitter: ``"none"`` for the deterministic schedule
            ``base * multiplier**(n-1)``; ``"full"`` for a uniform draw
            in ``[0, deterministic]``; ``"decorrelated"`` for
            ``uniform(base, 3 * previous_delay)``.  Jittered modes
            require an ``rng`` at delay time.
    """

    JITTER_MODES = ("none", "full", "decorrelated")

    def __init__(self, max_attempts: int = 3, base: float = 1.0,
                 cap: float = 60.0, multiplier: float = 2.0,
                 jitter: str = "none") -> None:
        super().__init__(max_attempts)
        if base < 0:
            raise ValueError(f"base must be non-negative, got {base}")
        if cap < base:
            raise ValueError(f"cap {cap} must be >= base {base}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if jitter not in self.JITTER_MODES:
            raise ValueError(f"jitter must be one of {self.JITTER_MODES}")
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter

    def delay(self, retry_number: int, previous_delay: float,
              rng: Optional[random.Random]) -> float:
        """Capped exponential delay, jittered per the configured mode."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        deterministic = min(self.cap,
                            self.base * self.multiplier ** (retry_number - 1))
        if self.jitter == "none":
            return deterministic
        if rng is None:
            raise ValueError(
                f"jitter={self.jitter!r} needs an rng; pass a "
                "RandomStreams substream for reproducibility")
        if self.jitter == "full":
            return rng.uniform(0.0, deterministic)
        # Decorrelated jitter: spread around the previous delay.
        anchor = previous_delay if previous_delay > 0 else self.base
        return min(self.cap, rng.uniform(self.base, max(self.base,
                                                        3.0 * anchor)))


class RetrySession:
    """Attempt state for one unit of work under a :class:`RetryPolicy`."""

    def __init__(self, policy: RetryPolicy,
                 rng: Optional[random.Random] = None) -> None:
        self.policy = policy
        self.rng = rng
        #: Retries granted so far (the first attempt is not a retry).
        self.retries = 0
        self._previous_delay = 0.0

    @property
    def exhausted(self) -> bool:
        """Whether the policy allows no further retries."""
        return self.retries >= self.policy.max_retries

    def next_delay(self) -> Optional[float]:
        """Grant one retry and return its backoff, or ``None`` if spent."""
        if self.exhausted:
            return None
        self.retries += 1
        delay = self.policy.delay(self.retries, self._previous_delay,
                                  self.rng)
        self._previous_delay = delay
        return delay


class RetryBudget:
    """A system-wide cap on the ratio of retries to first attempts.

    Each first attempt deposits ``ratio`` tokens; each retry withdraws
    one.  When the bucket is empty, retries are denied regardless of
    per-task policy — the standard defense against retry storms under
    correlated failure (Finagle-style retry budgets).
    """

    def __init__(self, ratio: float = 0.2, initial: float = 10.0,
                 max_tokens: float = 100.0) -> None:
        if ratio < 0:
            raise ValueError(f"ratio must be non-negative, got {ratio}")
        if initial < 0 or max_tokens <= 0:
            raise ValueError("need initial >= 0 and max_tokens > 0")
        self.ratio = ratio
        self.max_tokens = max_tokens
        self.tokens = min(initial, max_tokens)
        self.deposits = 0
        self.granted = 0
        self.denied = 0

    def record_attempt(self) -> None:
        """Credit the budget for one first attempt."""
        self.deposits += 1
        self.tokens = min(self.max_tokens, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one retry token; ``False`` when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False
