"""Checkpoint/restart semantics for long-running tasks (C17).

Without checkpointing, a machine failure loses the *entire* progress of
every victim task — under correlated bursts this is the dominant source
of wasted work.  A :class:`CheckpointPolicy` stamps tasks with a
checkpoint interval (and an optional per-checkpoint overhead); the
datacenter's execution engine then preserves progress at interval
boundaries, so an interrupted task restarts from its last checkpoint
instead of from zero — it loses strictly less than one interval of
work.

The mechanics live on :class:`~repro.workload.task.Task`
(``checkpoint_interval``, ``checkpointed_work``,
``record_progress``) and in
:meth:`repro.datacenter.datacenter.Datacenter._execute`; this module
provides the policy object and pure helpers.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..workload.task import Task

__all__ = ["CheckpointPolicy", "checkpoints_remaining", "preserved_work"]


def checkpoints_remaining(remaining_work: float, interval: float) -> int:
    """Checkpoints taken while executing ``remaining_work`` seconds.

    A checkpoint is written at every whole interval boundary; the final
    completion needs none, so e.g. 90s of work at interval 30 writes
    checkpoints at 30 and 60 only.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if remaining_work <= 0:
        return 0
    return max(0, math.ceil(remaining_work / interval) - 1)


def preserved_work(total_progress: float, interval: float,
                   runtime: float) -> float:
    """Work preserved at the last checkpoint before ``total_progress``."""
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    return min(runtime, math.floor(total_progress / interval) * interval)


class CheckpointPolicy:
    """Stamps tasks with checkpoint parameters.

    Args:
        interval: Work (task-runtime seconds) between checkpoints.
        overhead: Extra service time paid per checkpoint written.
        min_runtime: Only tasks at least this long are checkpointed —
            checkpointing a task shorter than its interval is pure
            overhead.
    """

    def __init__(self, interval: float, overhead: float = 0.0,
                 min_runtime: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if overhead < 0:
            raise ValueError(f"overhead must be non-negative, got {overhead}")
        self.interval = interval
        self.overhead = overhead
        self.min_runtime = min_runtime

    def apply(self, tasks: Iterable[Task] | Task) -> int:
        """Stamp ``tasks`` (or one task); returns how many were stamped."""
        if isinstance(tasks, Task):
            tasks = (tasks,)
        stamped = 0
        for task in tasks:
            if task.runtime >= max(self.min_runtime, self.interval):
                task.checkpoint_interval = self.interval
                task.checkpoint_overhead = self.overhead
                stamped += 1
        return stamped
