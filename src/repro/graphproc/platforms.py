"""Platform performance models for graph processing ([45], [46]).

The paper's empirical line of work ("How well do graph-processing
platforms perform?" [45]) found platform performance to be a complex
function of Varbanescu's P-A-D triangle: Platform, Algorithm, Dataset.
This module models the *platform* corner: the same algorithm run (same
:class:`~repro.graphproc.algorithms.OpCount`) costs differently on
different platforms, parameterized by per-edge cost, per-vertex cost,
per-iteration synchronization (barrier) cost, and fixed job overhead.

Three archetypes bracket the published measurements: a disk-based
MapReduce engine (high per-op and barrier costs), an in-memory
dataflow engine, and a native/optimized engine.  Parallel runtime
follows the level-synchronous model: per-iteration work divides over
workers, barriers do not — reproducing the sub-linear strong scaling
every Graphalytics report shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from .algorithms import OpCount

__all__ = ["PlatformModel", "PLATFORMS"]


@dataclass(frozen=True)
class PlatformModel:
    """Cost model of one graph-processing platform.

    Costs are in seconds; modeled runtime for ``ops`` on ``workers``:

    ``overhead + iterations * barrier + (vertex+edge work) / workers``
    """

    name: str
    per_edge: float
    per_vertex: float
    barrier: float
    overhead: float
    max_workers: int = 64

    def __post_init__(self) -> None:
        if min(self.per_edge, self.per_vertex, self.barrier,
               self.overhead) < 0:
            raise ValueError("costs must be non-negative")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")

    def runtime(self, ops: OpCount, workers: int = 1) -> float:
        """Modeled runtime of one algorithm run."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        effective = min(workers, self.max_workers)
        work = (ops.edges_scanned * self.per_edge
                + ops.vertices_touched * self.per_vertex)
        return (self.overhead
                + ops.iterations * self.barrier
                + work / effective)

    def evps(self, ops: OpCount, graph_vertices: int, graph_edges: int,
             workers: int = 1) -> float:
        """Edges+vertices per second — Graphalytics' EVPS metric."""
        runtime = self.runtime(ops, workers)
        if runtime <= 0:
            return float("inf")
        return (graph_vertices + graph_edges) / runtime

    def strong_scaling_speedup(self, ops: OpCount, workers: int) -> float:
        """Speedup of ``workers`` over 1 worker on the same run."""
        return self.runtime(ops, 1) / self.runtime(ops, workers)


#: The three platform archetypes of the cross-platform studies.
PLATFORMS: dict[str, PlatformModel] = {
    # Disk-based MapReduce engine: every superstep pays job+shuffle.
    "mapreduce-engine": PlatformModel(
        name="mapreduce-engine", per_edge=2e-6, per_vertex=4e-6,
        barrier=5.0, overhead=15.0),
    # In-memory dataflow engine: cheap barriers, moderate per-op cost.
    "dataflow-engine": PlatformModel(
        name="dataflow-engine", per_edge=4e-7, per_vertex=8e-7,
        barrier=0.2, overhead=2.0),
    # Native optimized engine: lowest per-op cost, tiny barriers.
    "native-engine": PlatformModel(
        name="native-engine", per_edge=5e-8, per_vertex=1e-7,
        barrier=0.01, overhead=0.1),
}
