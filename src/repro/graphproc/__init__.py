"""Graph-processing substrate (S10): Graphalytics made executable (§6.6).

Graph structures and generators, the six Graphalytics algorithms with
work accounting, platform cost models from the cross-platform studies
([45], [46]), and the benchmark harness with scalability, robustness,
and workload-renewal support ([42]).
"""

from .algorithms import ALGORITHMS, OpCount, bfs, cdlp, lcc, pagerank, sssp, wcc
from .graph import (
    Graph,
    grid_graph,
    preferential_attachment_graph,
    random_graph,
)
from .graphalytics import (
    BenchmarkResult,
    GraphalyticsHarness,
    Workload,
    default_workload,
)
from .calibration import Observation, calibrate_platform, validation_report
from .csr import CSRGraph, bfs_csr, pagerank_csr
from .chokepoints import (
    CompressionReport,
    CostBreakdown,
    choke_point_analysis,
    compress_experiments,
)
from .platforms import PLATFORMS, PlatformModel

__all__ = [
    "Graph",
    "random_graph",
    "preferential_attachment_graph",
    "grid_graph",
    "OpCount",
    "bfs",
    "pagerank",
    "wcc",
    "cdlp",
    "lcc",
    "sssp",
    "ALGORITHMS",
    "PlatformModel",
    "PLATFORMS",
    "BenchmarkResult",
    "Workload",
    "GraphalyticsHarness",
    "default_workload",
    "Observation",
    "calibrate_platform",
    "validation_report",
    "CostBreakdown",
    "choke_point_analysis",
    "CompressionReport",
    "compress_experiments",
    "CSRGraph",
    "bfs_csr",
    "pagerank_csr",
]
