"""A Graphalytics-style benchmark harness (LDBC Graphalytics [42], C16).

Central to Graphalytics is "objective comparison between
graph-processing platforms by controlling the key parameters", with
(i) a comprehensive algorithm/dataset suite, (ii) metrics for
performance, scalability (horizontal/vertical, weak/strong) and
robustness (failures, performance variability), and (iii) a renewal
process to curate the workload over time.  This harness implements all
three over the :mod:`repro.graphproc` algorithm and platform models.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..sim import summarize
from .algorithms import ALGORITHMS, OpCount
from .graph import Graph, preferential_attachment_graph, random_graph
from .platforms import PLATFORMS, PlatformModel

__all__ = ["BenchmarkResult", "Workload", "GraphalyticsHarness",
           "default_workload"]


@dataclass(frozen=True)
class BenchmarkResult:
    """One (platform, algorithm, dataset) measurement row."""

    platform: str
    algorithm: str
    dataset: str
    workers: int
    runtime: float
    evps: float
    ops: OpCount


@dataclass
class Workload:
    """A versioned benchmark workload: datasets + algorithms.

    The *renewal process* of Graphalytics (property (iii)) is modeled
    by :meth:`renew`, which produces the next version of the workload
    with datasets/algorithms added or retired — the benchmark itself
    evolves, like the ecosystems it measures (P9).
    """

    version: int
    datasets: dict[str, Graph]
    algorithms: dict[str, Callable]
    algorithm_params: dict[str, dict] = field(default_factory=dict)

    def renew(self, add_datasets: Mapping[str, Graph] = (),
              retire_datasets: Sequence[str] = (),
              add_algorithms: Mapping[str, Callable] = (),
              retire_algorithms: Sequence[str] = ()) -> "Workload":
        """Produce version+1 of the workload (non-mutating)."""
        datasets = dict(self.datasets)
        algorithms = dict(self.algorithms)
        for name in retire_datasets:
            if name not in datasets:
                raise KeyError(f"cannot retire unknown dataset {name!r}")
            del datasets[name]
        datasets.update(add_datasets)
        for name in retire_algorithms:
            if name not in algorithms:
                raise KeyError(f"cannot retire unknown algorithm {name!r}")
            del algorithms[name]
        algorithms.update(add_algorithms)
        if not datasets or not algorithms:
            raise ValueError("a workload needs datasets and algorithms")
        return Workload(version=self.version + 1, datasets=datasets,
                        algorithms=algorithms,
                        algorithm_params=dict(self.algorithm_params))


def default_workload(scale: int = 200, seed: int = 0) -> Workload:
    """The default suite: all six algorithms on three dataset families."""
    rng = random.Random(seed)
    datasets = {
        "uniform": random_graph(scale, p=min(1.0, 8.0 / scale),
                                rng=random.Random(seed + 1)),
        "scale-free": preferential_attachment_graph(
            scale, m=3, rng=random.Random(seed + 2)),
        "sparse": random_graph(scale, p=min(1.0, 2.0 / scale),
                               rng=random.Random(seed + 3)),
    }
    params = {
        "bfs": {"source": 0},
        "sssp": {"source": 0},
        "pr": {"iterations": 10},
        "cdlp": {"iterations": 5},
    }
    return Workload(version=1, datasets=datasets,
                    algorithms=dict(ALGORITHMS), algorithm_params=params)


class GraphalyticsHarness:
    """Runs the workload across platforms and derives the metric set."""

    def __init__(self, workload: Workload,
                 platforms: Mapping[str, PlatformModel] | None = None) -> None:
        self.workload = workload
        self.platforms = dict(PLATFORMS if platforms is None else platforms)
        if not self.platforms:
            raise ValueError("need at least one platform")

    # ------------------------------------------------------------------
    # Core runs
    # ------------------------------------------------------------------
    def run_one(self, platform_name: str, algorithm_name: str,
                dataset_name: str, workers: int = 1) -> BenchmarkResult:
        """Execute one benchmark cell."""
        platform = self.platforms[platform_name]
        algorithm = self.workload.algorithms[algorithm_name]
        graph = self.workload.datasets[dataset_name]
        params = self.workload.algorithm_params.get(algorithm_name, {})
        _, ops = algorithm(graph, **params)
        runtime = platform.runtime(ops, workers)
        return BenchmarkResult(
            platform=platform_name, algorithm=algorithm_name,
            dataset=dataset_name, workers=workers, runtime=runtime,
            evps=platform.evps(ops, graph.vertex_count, graph.edge_count,
                               workers),
            ops=ops)

    def run_suite(self, workers: int = 1) -> list[BenchmarkResult]:
        """The full platform x algorithm x dataset matrix."""
        return [self.run_one(p, a, d, workers)
                for p in sorted(self.platforms)
                for a in sorted(self.workload.algorithms)
                for d in sorted(self.workload.datasets)]

    # ------------------------------------------------------------------
    # Scalability (Graphalytics property (ii))
    # ------------------------------------------------------------------
    def strong_scaling(self, platform_name: str, algorithm_name: str,
                       dataset_name: str,
                       worker_counts: Sequence[int] = (1, 2, 4, 8, 16),
                       ) -> list[tuple[int, float]]:
        """(workers, speedup-over-1) curve on a fixed dataset."""
        baseline = self.run_one(platform_name, algorithm_name,
                                dataset_name, workers=1).runtime
        return [(w, baseline / self.run_one(
            platform_name, algorithm_name, dataset_name, workers=w).runtime)
            for w in worker_counts]

    def weak_scaling(self, platform_name: str, algorithm_name: str,
                     base_scale: int = 100,
                     worker_counts: Sequence[int] = (1, 2, 4, 8),
                     seed: int = 0) -> list[tuple[int, float]]:
        """(workers, efficiency) with problem size grown ∝ workers.

        Efficiency is baseline-runtime / runtime; a perfectly weakly
        scalable system stays at 1.0.
        """
        platform = self.platforms[platform_name]
        algorithm = self.workload.algorithms[algorithm_name]
        params = self.workload.algorithm_params.get(algorithm_name, {})
        results = []
        baseline: float | None = None
        for w in worker_counts:
            graph = random_graph(base_scale * w,
                                 p=min(1.0, 8.0 / (base_scale * w)),
                                 rng=random.Random(seed + w))
            _, ops = algorithm(graph, **params)
            runtime = platform.runtime(ops, workers=w)
            if baseline is None:
                baseline = runtime
            results.append((w, baseline / runtime))
        return results

    # ------------------------------------------------------------------
    # Robustness (Graphalytics property (ii), variability [145])
    # ------------------------------------------------------------------
    def variability(self, platform_name: str, algorithm_name: str,
                    repetitions: int = 10, scale: int = 150,
                    seed: int = 0) -> dict[str, float]:
        """Runtime variability across re-generated dataset instances.

        Returns the coefficient of variation and the p95/median ratio,
        the variability indicators of [145].
        """
        if repetitions < 2:
            raise ValueError("repetitions must be >= 2")
        platform = self.platforms[platform_name]
        algorithm = self.workload.algorithms[algorithm_name]
        params = self.workload.algorithm_params.get(algorithm_name, {})
        runtimes = []
        for r in range(repetitions):
            graph = random_graph(scale, p=min(1.0, 8.0 / scale),
                                 rng=random.Random(seed + r))
            _, ops = algorithm(graph, **params)
            runtimes.append(platform.runtime(ops))
        stats = summarize(runtimes)
        cv = stats["std"] / stats["mean"] if stats["mean"] else 0.0
        return {"cv": cv, "p95_over_median": stats["p95"] / stats["p50"],
                "mean": stats["mean"]}

    # ------------------------------------------------------------------
    # Rankings
    # ------------------------------------------------------------------
    @staticmethod
    def rank_platforms(results: Sequence[BenchmarkResult],
                       ) -> list[tuple[str, float]]:
        """Platforms by geometric-mean runtime (lower is better)."""
        by_platform: dict[str, list[float]] = {}
        for result in results:
            by_platform.setdefault(result.platform, []).append(result.runtime)
        ranking = [
            (platform,
             math.exp(sum(math.log(max(r, 1e-12)) for r in runtimes)
                      / len(runtimes)))
            for platform, runtimes in by_platform.items()]
        return sorted(ranking, key=lambda pair: pair[1])
