"""Graph data structures and generators (§6.6, [42], [45]).

A compact adjacency-list graph supporting the Graphalytics workloads:
directed or undirected, optional edge weights, degree statistics, and
the synthetic generators used for benchmark datasets — uniform random
(Erdős–Rényi), preferential attachment (scale-free, like social
networks), and 2D grids (like road networks).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

__all__ = ["Graph", "random_graph", "preferential_attachment_graph",
           "grid_graph"]


class Graph:
    """An adjacency-list graph with integer vertices."""

    def __init__(self, directed: bool = False) -> None:
        self.directed = directed
        self._adjacency: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int) -> None:
        """Add an isolated vertex (no-op if present)."""
        self._adjacency.setdefault(vertex, {})

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add an edge (both directions when undirected)."""
        if weight <= 0:
            raise ValueError("edge weight must be positive")
        if u == v:
            raise ValueError("self-loops are not supported")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adjacency[u][v] = weight
        if not self.directed:
            self._adjacency[v][u] = weight

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]],
                   directed: bool = False) -> "Graph":
        """Build an unweighted graph from an edge list."""
        graph = cls(directed=directed)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of edges (undirected edges counted once)."""
        total = sum(len(nbrs) for nbrs in self._adjacency.values())
        return total if self.directed else total // 2

    def vertices(self) -> Iterator[int]:
        """All vertices, in insertion order."""
        return iter(self._adjacency)

    def neighbors(self, vertex: int) -> dict[int, float]:
        """Out-neighbors (with weights) of a vertex."""
        if vertex not in self._adjacency:
            raise KeyError(vertex)
        return self._adjacency[vertex]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge (u, v) exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def degree(self, vertex: int) -> int:
        """Out-degree of a vertex."""
        return len(self.neighbors(vertex))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """All edges as (u, v, weight); undirected edges emitted once."""
        for u, nbrs in self._adjacency.items():
            for v, weight in nbrs.items():
                if self.directed or u < v:
                    yield (u, v, weight)

    def degree_statistics(self) -> dict[str, float]:
        """Mean/max degree and density — dataset characterization."""
        n = self.vertex_count
        if n == 0:
            raise ValueError("empty graph")
        degrees = [self.degree(v) for v in self.vertices()]
        m = self.edge_count
        possible = n * (n - 1) if self.directed else n * (n - 1) / 2
        return {
            "vertices": float(n),
            "edges": float(m),
            "mean_degree": sum(degrees) / n,
            "max_degree": float(max(degrees)),
            "density": (m / possible) if possible else 0.0,
        }


def random_graph(n: int, p: float, directed: bool = False,
                 rng: random.Random | None = None) -> Graph:
    """Erdős–Rényi G(n, p); sparse-friendly (geometric edge skipping)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = rng or random.Random(0)
    graph = Graph(directed=directed)
    for v in range(n):
        graph.add_vertex(v)
    if p < 1e-12:  # including denormals that underflow log1p(-p)
        return graph
    for u in range(n):
        start = 0 if directed else u + 1
        v = start - 1
        while True:
            # Skip ahead geometrically instead of testing every pair.
            gap = 1 if p >= 1.0 else int(
                rng.expovariate(-_log1m(p))) + 1
            v += gap
            if v >= n:
                break
            if v != u:
                graph.add_edge(u, v)
    return graph


def _log1m(p: float) -> float:
    import math
    return math.log(1.0 - p) if p < 1.0 else -math.inf


def preferential_attachment_graph(n: int, m: int = 2,
                                  rng: random.Random | None = None) -> Graph:
    """Barabási–Albert scale-free graph: new vertices attach to hubs."""
    if m < 1:
        raise ValueError("m must be >= 1")
    if n < m + 1:
        raise ValueError("n must exceed m")
    rng = rng or random.Random(0)
    graph = Graph(directed=False)
    targets = list(range(m + 1))
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            graph.add_edge(u, v)
    # Repeated vertices in this list implement preferential attachment.
    attachment_pool: list[int] = []
    for u, v, _ in graph.edges():
        attachment_pool.extend((u, v))
    for new in range(m + 1, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(rng.choice(attachment_pool))
        for target in chosen:
            graph.add_edge(new, target)
            attachment_pool.extend((new, target))
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols 2D lattice (road-network-like)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    graph = Graph(directed=False)
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            graph.add_vertex(vertex)
            if c + 1 < cols:
                graph.add_edge(vertex, vertex + 1)
            if r + 1 < rows:
                graph.add_edge(vertex, vertex + cols)
    return graph
