"""A CSR (compressed sparse row) graph with vectorized kernels.

The platform models of :mod:`repro.graphproc.platforms` capture
*modeled* cost differences; this module provides a *real* one: the same
algorithms on a cache-friendly CSR representation with numpy-vectorized
inner loops.  The ``test_exp_representation`` benchmark measures the
actual wall-clock gap against the dict-adjacency implementations —
the "platform" corner of the P-A-D triangle ([45]) made concrete in
this repository's own code.
"""

from __future__ import annotations

from itertools import chain

import numpy

from .algorithms import OpCount
from .graph import Graph

__all__ = ["CSRGraph", "bfs_csr", "pagerank_csr"]


class CSRGraph:
    """An immutable CSR snapshot of a :class:`~repro.graphproc.graph.Graph`.

    Vertices are re-indexed to dense integers ``0..n-1``;
    ``index_of`` / ``vertex_of`` map between the original ids and CSR
    positions.
    """

    def __init__(self, graph: Graph) -> None:
        vertices = list(graph.vertices())
        if not vertices:
            raise ValueError("empty graph")
        self.vertex_of = vertices
        self._index_of: dict | None = None
        n = len(vertices)
        # graph.vertices() iterates the adjacency dict, so its values
        # are the per-vertex neighbor dicts in exactly index order and
        # insertion order within each — one flattened sweep therefore
        # yields every edge at its final CSR position, with no per-edge
        # cursor arithmetic; the flattening itself runs in C iterators.
        adjacency = graph._adjacency.values()
        self.indptr = numpy.empty(n + 1, dtype=numpy.int64)
        self.indptr[0] = 0
        numpy.cumsum(numpy.fromiter(map(len, adjacency), dtype=numpy.int64,
                                    count=n), out=self.indptr[1:])
        m = int(self.indptr[-1])
        # Fast path: when vertex ids are already the dense indices
        # 0..n-1 (every built-in generator), the id->index map is the
        # identity and the flattened targets fill the array directly,
        # without materializing an intermediate list.
        if vertices == list(range(n)):
            self.indices = numpy.fromiter(chain.from_iterable(adjacency),
                                          dtype=numpy.int64, count=m)
        else:
            index_of = self.index_of
            self.indices = numpy.fromiter(
                (index_of[u] for row in adjacency for u in row),
                dtype=numpy.int64, count=m)
        self.weights = numpy.fromiter(
            chain.from_iterable(map(dict.values, adjacency)),
            dtype=numpy.float64, count=m)

    @property
    def index_of(self) -> dict:
        """Original-id -> CSR-position map (built on first use)."""
        if self._index_of is None:
            self._index_of = {v: i for i, v in enumerate(self.vertex_of)}
        return self._index_of

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self.vertex_of)

    @property
    def directed_edge_count(self) -> int:
        """Stored (directed) adjacency entries."""
        return len(self.indices)

    def neighbors_of(self, index: int) -> numpy.ndarray:
        """CSR neighbor slice of one vertex position."""
        return self.indices[self.indptr[index]:self.indptr[index + 1]]


def bfs_csr(csr: CSRGraph, source: int) -> tuple[dict[int, int], OpCount]:
    """BFS over CSR; result keyed by *original* vertex ids.

    Level-synchronous frontier expansion with numpy set operations —
    the same algorithm as :func:`repro.graphproc.algorithms.bfs`, on a
    flat representation.
    """
    if source not in csr.index_of:
        raise KeyError(source)
    ops = OpCount()
    n = csr.vertex_count
    depth = numpy.full(n, -1, dtype=numpy.int64)
    start = csr.index_of[source]
    depth[start] = 0
    frontier = numpy.array([start], dtype=numpy.int64)
    level = 0
    while frontier.size:
        ops.iterations += 1
        ops.vertices_touched += int(frontier.size)
        # Gather all neighbors of the frontier in one shot.
        starts = csr.indptr[frontier]
        ends = csr.indptr[frontier + 1]
        ops.edges_scanned += int((ends - starts).sum())
        if int((ends - starts).sum()) == 0:
            break
        chunks = [csr.indices[s:e] for s, e in zip(starts, ends)]
        neighbors = numpy.unique(numpy.concatenate(chunks))
        fresh = neighbors[depth[neighbors] == -1]
        level += 1
        depth[fresh] = level
        frontier = fresh
    return ({csr.vertex_of[i]: int(d) for i, d in enumerate(depth)
             if d >= 0}, ops)


def pagerank_csr(csr: CSRGraph, damping: float = 0.85,
                 iterations: int = 20) -> tuple[dict[int, float], OpCount]:
    """PageRank over CSR with fully vectorized iterations.

    Matches :func:`repro.graphproc.algorithms.pagerank` (same damping,
    same dangling-mass redistribution) but runs the per-iteration
    scatter as one ``numpy.add.at`` call.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    ops = OpCount()
    n = csr.vertex_count
    out_degree = numpy.diff(csr.indptr).astype(numpy.float64)
    dangling_mask = out_degree == 0
    # Source vertex of every CSR entry, precomputed once.
    sources = numpy.repeat(numpy.arange(n),
                           numpy.diff(csr.indptr).astype(numpy.int64))
    rank = numpy.full(n, 1.0 / n)
    for _ in range(iterations):
        ops.iterations += 1
        ops.vertices_touched += n
        ops.edges_scanned += csr.directed_edge_count
        dangling = float(rank[dangling_mask].sum())
        shares = numpy.zeros(n)
        safe_degree = numpy.where(dangling_mask, 1.0, out_degree)
        contributions = (rank / safe_degree)[sources]
        numpy.add.at(shares, csr.indices, contributions)
        base = (1.0 - damping) / n + damping * dangling / n
        rank = base + damping * shares
    return ({csr.vertex_of[i]: float(r) for i, r in enumerate(rank)}, ops)
