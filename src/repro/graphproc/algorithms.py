"""The six Graphalytics algorithms (LDBC Graphalytics [42]).

BFS, PageRank, WCC, CDLP, LCC, and SSSP — "a comprehensive suite of
real-world algorithms" — each returning both its result and an
:class:`OpCount` of the work performed (vertices touched, edges
scanned, iterations), which the platform models of
:mod:`repro.graphproc.platforms` convert into modeled runtimes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .graph import Graph

__all__ = ["OpCount", "bfs", "pagerank", "wcc", "cdlp", "lcc", "sssp",
           "ALGORITHMS"]


@dataclass
class OpCount:
    """Work accounting for one algorithm run."""

    vertices_touched: int = 0
    edges_scanned: int = 0
    iterations: int = 0

    @property
    def total_ops(self) -> int:
        """Total primitive operations (vertex + edge work)."""
        return self.vertices_touched + self.edges_scanned


def bfs(graph: Graph, source: int) -> tuple[dict[int, int], OpCount]:
    """Breadth-first search: vertex -> depth from ``source``.

    Unreachable vertices are absent from the result (Graphalytics uses
    a sentinel; absence is equivalent and easier to test).
    """
    if source not in set(graph.vertices()):
        raise KeyError(source)
    ops = OpCount()
    depth = {source: 0}
    frontier = [source]
    while frontier:
        ops.iterations += 1
        next_frontier = []
        for u in frontier:
            ops.vertices_touched += 1
            for v in graph.neighbors(u):
                ops.edges_scanned += 1
                if v not in depth:
                    depth[v] = depth[u] + 1
                    next_frontier.append(v)
        frontier = next_frontier
    return depth, ops


def pagerank(graph: Graph, damping: float = 0.85, iterations: int = 20,
             ) -> tuple[dict[int, float], OpCount]:
    """PageRank with uniform teleport and dangling-mass redistribution."""
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    vertices = list(graph.vertices())
    n = len(vertices)
    if n == 0:
        raise ValueError("empty graph")
    ops = OpCount()
    rank = {v: 1.0 / n for v in vertices}
    for _ in range(iterations):
        ops.iterations += 1
        dangling = sum(rank[v] for v in vertices if graph.degree(v) == 0)
        incoming = {v: 0.0 for v in vertices}
        for u in vertices:
            ops.vertices_touched += 1
            out_degree = graph.degree(u)
            if out_degree == 0:
                continue
            share = rank[u] / out_degree
            for v in graph.neighbors(u):
                ops.edges_scanned += 1
                incoming[v] += share
        base = (1.0 - damping) / n + damping * dangling / n
        rank = {v: base + damping * incoming[v] for v in vertices}
    return rank, ops


def wcc(graph: Graph) -> tuple[dict[int, int], OpCount]:
    """Weakly connected components: vertex -> smallest vertex id in
    its component (edge direction ignored, per Graphalytics)."""
    ops = OpCount()
    undirected: dict[int, set[int]] = {v: set() for v in graph.vertices()}
    for u, v, _ in graph.edges():
        undirected[u].add(v)
        undirected[v].add(u)
    component: dict[int, int] = {}
    for start in sorted(undirected):
        if start in component:
            continue
        ops.iterations += 1
        stack = [start]
        component[start] = start
        while stack:
            u = stack.pop()
            ops.vertices_touched += 1
            for v in undirected[u]:
                ops.edges_scanned += 1
                if v not in component:
                    component[v] = start
                    stack.append(v)
    return component, ops


def cdlp(graph: Graph, iterations: int = 10,
         synchronous: bool = True) -> tuple[dict[int, int], OpCount]:
    """Community detection by label propagation (min-tie-breaking).

    Each vertex adopts the most frequent label among its neighbors,
    breaking ties toward the smallest label.  ``synchronous=True`` is
    the deterministic variant Graphalytics specifies; it can oscillate
    on bipartite-like structures, so applications that need convergence
    (e.g. social-community extraction) use ``synchronous=False``, which
    updates labels in place in vertex order.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    ops = OpCount()
    labels = {v: v for v in graph.vertices()}
    for _ in range(iterations):
        ops.iterations += 1
        new_labels = {} if synchronous else labels
        changed = False
        for u in graph.vertices():
            ops.vertices_touched += 1
            counts: dict[int, int] = {}
            for v in graph.neighbors(u):
                ops.edges_scanned += 1
                counts[labels[v]] = counts.get(labels[v], 0) + 1
            if not counts:
                new_labels[u] = labels[u]
                continue
            best = min(label for label, count in counts.items()
                       if count == max(counts.values()))
            changed = changed or best != labels[u]
            new_labels[u] = best
        labels = new_labels
        if not changed:
            break
    return labels, ops


def lcc(graph: Graph) -> tuple[dict[int, float], OpCount]:
    """Local clustering coefficient of every vertex.

    For vertex v with neighbor set N(v): the fraction of ordered
    neighbor pairs connected by an edge (0 when |N(v)| < 2).
    """
    ops = OpCount()
    result = {}
    for v in graph.vertices():
        ops.vertices_touched += 1
        nbrs = list(graph.neighbors(v))
        k = len(nbrs)
        if k < 2:
            result[v] = 0.0
            continue
        links = 0
        for a in nbrs:
            for b in nbrs:
                if a == b:
                    continue
                ops.edges_scanned += 1
                if graph.has_edge(a, b):
                    links += 1
        result[v] = links / (k * (k - 1))
    return result, ops


def sssp(graph: Graph, source: int) -> tuple[dict[int, float], OpCount]:
    """Single-source shortest paths (Dijkstra over edge weights)."""
    if source not in set(graph.vertices()):
        raise KeyError(source)
    ops = OpCount()
    distance = {source: 0.0}
    heap = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        dist, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        ops.vertices_touched += 1
        ops.iterations += 1
        for v, weight in graph.neighbors(u).items():
            ops.edges_scanned += 1
            candidate = dist + weight
            if candidate < distance.get(v, float("inf")):
                distance[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return distance, ops


#: The Graphalytics algorithm suite, by benchmark abbreviation.
ALGORITHMS = {
    "bfs": bfs,
    "pr": pagerank,
    "wcc": wcc,
    "cdlp": cdlp,
    "lcc": lcc,
    "sssp": sssp,
}
