"""Calibrating platform models from measurements (C15, §3.3).

"Simulation-based *calibrated* approaches ... this approach challenges
scientists to develop reasonably accurate models ... Validating that
this is indeed the case ... is a key scientific challenge."

:func:`calibrate_platform` fits the four-parameter
:class:`~repro.graphproc.platforms.PlatformModel` (per-edge, per-vertex,
barrier, overhead costs) to observed ``(OpCount, workers, runtime)``
measurements by non-negative least squares, and
:func:`validation_report` quantifies how well a model explains held-out
measurements — the validation study P8 says the community must value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy

from .algorithms import OpCount
from .platforms import PlatformModel

__all__ = ["Observation", "calibrate_platform", "validation_report"]


@dataclass(frozen=True)
class Observation:
    """One measured run: the work done, the workers used, the runtime."""

    ops: OpCount
    workers: int
    runtime: float

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.runtime < 0:
            raise ValueError("runtime must be non-negative")


def _design_row(observation: Observation, max_workers: int) -> list[float]:
    effective = min(observation.workers, max_workers)
    return [
        observation.ops.edges_scanned / effective,     # per_edge
        observation.ops.vertices_touched / effective,  # per_vertex
        float(observation.ops.iterations),             # barrier
        1.0,                                           # overhead
    ]


def calibrate_platform(observations: Sequence[Observation],
                       name: str = "calibrated",
                       max_workers: int = 64) -> PlatformModel:
    """Fit a platform cost model to measurements.

    Uses least squares with a non-negativity clamp (costs cannot be
    negative); needs at least four observations with some diversity in
    work/iterations, else the system is under-determined.
    """
    if len(observations) < 4:
        raise ValueError("need at least 4 observations to fit 4 parameters")
    design = numpy.array([_design_row(o, max_workers) for o in observations])
    target = numpy.array([o.runtime for o in observations])
    solution, *_ = numpy.linalg.lstsq(design, target, rcond=None)
    per_edge, per_vertex, barrier, overhead = (
        max(0.0, float(v)) for v in solution)
    return PlatformModel(name=name, per_edge=per_edge,
                         per_vertex=per_vertex, barrier=barrier,
                         overhead=overhead, max_workers=max_workers)


def validation_report(model: PlatformModel,
                      observations: Sequence[Observation],
                      ) -> dict[str, float]:
    """How well ``model`` explains held-out measurements.

    Returns the mean absolute percentage error (MAPE), the maximum
    relative error, and R^2 against the observation mean.
    """
    if not observations:
        raise ValueError("need at least one observation")
    predicted = numpy.array([model.runtime(o.ops, o.workers)
                             for o in observations])
    actual = numpy.array([o.runtime for o in observations])
    nonzero = numpy.maximum(actual, 1e-12)
    relative_errors = numpy.abs(predicted - actual) / nonzero
    residual = float(numpy.sum((predicted - actual) ** 2))
    total = float(numpy.sum((actual - actual.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return {
        "mape": float(relative_errors.mean()),
        "max_relative_error": float(relative_errors.max()),
        "r_squared": r_squared,
    }
