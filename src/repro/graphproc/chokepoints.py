"""Choke-point analysis and experiment compression (C17; [141]).

Two C17 instruments:

- *Choke-point analysis* ([141], the LDBC methodology): "designing
  benchmarks using a choke-point analysis could expose performance and
  functionality issues in key components of a system".
  :func:`choke_point_analysis` decomposes each benchmark cell's modeled
  runtime into its cost components (edge work, vertex work, barriers,
  overhead) and names the dominant one — the choke point a platform
  designer must attack for that (platform, algorithm, dataset) cell.

- *Experiment compression*: "we envision experiment compression (i.e.,
  combining real-world experiments with emulation and simulation) as
  key to achieving sustainable testing, validation, and benchmarking".
  :func:`compress_experiments` runs only a sampled subset of a
  parameter grid "for real", calibrates a cost model on those runs, and
  predicts the rest — reporting the runs saved and the prediction
  error, i.e. the accuracy/time-to-result trade-off C17 names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .algorithms import OpCount
from .calibration import Observation, calibrate_platform, validation_report
from .platforms import PlatformModel

__all__ = ["CostBreakdown", "choke_point_analysis",
           "CompressionReport", "compress_experiments"]


@dataclass(frozen=True)
class CostBreakdown:
    """One cell's runtime decomposed into cost components."""

    edge_work: float
    vertex_work: float
    barriers: float
    overhead: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return (self.edge_work + self.vertex_work + self.barriers
                + self.overhead)

    @property
    def choke_point(self) -> str:
        """The dominant cost component."""
        components = {
            "edge-work": self.edge_work,
            "vertex-work": self.vertex_work,
            "barriers": self.barriers,
            "overhead": self.overhead,
        }
        return max(components, key=lambda k: components[k])

    def fraction(self, component: str) -> float:
        """One component's share of the total (0 when total is 0)."""
        values = {"edge-work": self.edge_work,
                  "vertex-work": self.vertex_work,
                  "barriers": self.barriers,
                  "overhead": self.overhead}
        if component not in values:
            raise KeyError(component)
        if self.total == 0:
            return 0.0
        return values[component] / self.total


def choke_point_analysis(model: PlatformModel, ops: OpCount,
                         workers: int = 1) -> CostBreakdown:
    """Decompose one run's modeled cost into its components."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    effective = min(workers, model.max_workers)
    return CostBreakdown(
        edge_work=ops.edges_scanned * model.per_edge / effective,
        vertex_work=ops.vertices_touched * model.per_vertex / effective,
        barriers=ops.iterations * model.barrier,
        overhead=model.overhead,
    )


@dataclass(frozen=True)
class CompressionReport:
    """Outcome of a compressed experiment campaign."""

    total_points: int
    real_runs: int
    predicted_points: int
    mape: float
    max_relative_error: float

    @property
    def compression_ratio(self) -> float:
        """Fraction of real runs avoided (0 = none, 1 = all)."""
        if self.total_points == 0:
            return 0.0
        return self.predicted_points / self.total_points


def compress_experiments(
        grid: Sequence[tuple[OpCount, int]],
        real_runner: Callable[[OpCount, int], float],
        real_fraction: float = 0.3,
        max_workers: int = 64) -> tuple[CompressionReport, list[float]]:
    """Run part of a grid for real, predict the rest via calibration.

    Args:
        grid: The (ops, workers) points of the full campaign.
        real_runner: The expensive real experiment, returning a runtime.
        real_fraction: Fraction of the grid to actually run (evenly
            strided, so the sample spans the grid).
        max_workers: Worker cap of the fitted model.

    Returns the report plus the full runtime vector (measured where
    real, predicted elsewhere), in grid order.

    Note on methodology: to *assess* the compression error, this
    harness also runs the real experiment on the held-out points and
    compares — a meta-evaluation a production campaign would skip
    (that is where the saving comes from).  The reported ``real_runs``
    counts only the calibration runs a compressed campaign would pay.
    """
    if not grid:
        raise ValueError("empty experiment grid")
    if not 0.0 < real_fraction <= 1.0:
        raise ValueError("real_fraction must be in (0, 1]")
    n_real = max(4, round(len(grid) * real_fraction))
    n_real = min(n_real, len(grid))
    stride = max(1, len(grid) // n_real)
    real_indices = sorted(set(range(0, len(grid), stride)))[:n_real]
    # When the grid is tiny, just run everything for real.
    if len(real_indices) < 4 or len(real_indices) >= len(grid):
        runtimes = [real_runner(ops, workers) for ops, workers in grid]
        report = CompressionReport(total_points=len(grid),
                                   real_runs=len(grid),
                                   predicted_points=0, mape=0.0,
                                   max_relative_error=0.0)
        return report, runtimes

    observations = [Observation(ops=grid[i][0], workers=grid[i][1],
                                runtime=real_runner(*grid[i]))
                    for i in real_indices]
    model = calibrate_platform(observations, name="compressed",
                               max_workers=max_workers)
    # Error is assessed against the real runner on the predicted points.
    predicted_indices = [i for i in range(len(grid))
                         if i not in set(real_indices)]
    holdout = [Observation(ops=grid[i][0], workers=grid[i][1],
                           runtime=real_runner(*grid[i]))
               for i in predicted_indices]
    accuracy = validation_report(model, holdout)
    runtimes = []
    real_set = set(real_indices)
    real_by_index = {i: o.runtime
                     for i, o in zip(real_indices, observations)}
    for index, (ops, workers) in enumerate(grid):
        if index in real_set:
            runtimes.append(real_by_index[index])
        else:
            runtimes.append(model.runtime(ops, workers))
    report = CompressionReport(
        total_points=len(grid), real_runs=len(real_indices),
        predicted_points=len(predicted_indices),
        mape=accuracy["mape"],
        max_relative_error=accuracy["max_relative_error"])
    return report, runtimes
