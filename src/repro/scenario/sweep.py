"""Process-parallel parameter sweeps over scenario specs.

The ROADMAP's scaling step: parameter studies across seeds, policies,
and capacity are embarrassingly parallel, and a
:class:`SweepRunner` fans a spec grid across ``multiprocessing``
workers.  Determinism is preserved end to end:

- every grid point is an explicit :class:`ScenarioSpec` derived from
  the base spec via :meth:`~repro.scenario.spec.ScenarioSpec.override`;
- workers receive the spec *as JSON* and return the result *as JSON*
  (each parallel run therefore also exercises the rehydration
  contract);
- the merge sorts by grid index, so worker completion order never
  shows through;
- the :class:`SweepReport` serializes via the deterministic JSON
  encoder, carries no wall-clock data, and digests identically whether
  the sweep ran serially or on any number of workers.

``tests/scenario`` pins serial-vs-parallel digest equality and a
golden sweep digest; CI re-checks a 2x2 grid on 2 workers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from multiprocessing import Pool
from typing import Any, Mapping, Sequence

from ..observability.export import dumps_deterministic
from .result import ScenarioResult
from .spec import ScenarioSpec

__all__ = ["SweepPoint", "SweepReport", "SweepRunner", "sweep"]


def _run_spec_payload(payload: tuple[int, str]) -> tuple[int, str]:
    """Worker entry point: rehydrate a spec from JSON, run, emit JSON.

    Module-level so it pickles under every multiprocessing start
    method.  Passing JSON both ways makes the parallel path exercise
    the same serialization contract the round-trip tests pin.
    """
    index, spec_json = payload
    result = ScenarioSpec.from_json(spec_json).run()
    return index, result.to_json()


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the derived spec and the overrides that made it."""

    index: int
    spec: ScenarioSpec
    overrides: dict[str, Any]

    def label(self) -> str:
        """Human-readable axis summary (``seed=3 queue=sjf``)."""
        if not self.overrides:
            return "base"
        return " ".join(f"{key.split('.')[-1]}={value}"
                        for key, value in sorted(self.overrides.items()))


@dataclass
class SweepReport:
    """The merged, order-independent outcome of one sweep.

    ``runs`` is sorted by grid index; :meth:`to_json` and
    :meth:`digest` contain no execution details (worker count, wall
    time), so a serial run and any parallel run of the same grid
    produce the byte-identical report.
    """

    base_fingerprint: str
    points: list[dict[str, Any]]
    runs: list[ScenarioResult]
    workers: int = 1  # execution detail; excluded from the serialized form
    elapsed_s: float = 0.0  # wall time; excluded from the serialized form

    def to_dict(self) -> dict:
        """JSON-ready plain data (deterministic content only)."""
        return {
            "schema": "sweep-report/v1",
            "base_fingerprint": self.base_fingerprint,
            "points": self.points,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepReport":
        """Rehydrate a report from :meth:`to_dict` output."""
        if data.get("schema") != "sweep-report/v1":
            raise ValueError(f"unsupported sweep schema "
                             f"{data.get('schema')!r}")
        return cls(base_fingerprint=data["base_fingerprint"],
                   points=list(data["points"]),
                   runs=[ScenarioResult.from_dict(r)
                         for r in data["runs"]])

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace)."""
        return dumps_deterministic(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Rehydrate a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def rows(self) -> list[tuple[str, dict[str, float]]]:
        """(label, flat summary) per run, for tabulation."""
        return [(point["label"], run.summary())
                for point, run in zip(self.points, self.runs)]

    @classmethod
    def assemble(cls, base: ScenarioSpec, points: Sequence[SweepPoint],
                 outcomes: Sequence[tuple[int, str]],
                 workers: int = 1) -> "SweepReport":
        """Merge worker outcomes into the deterministic report.

        ``outcomes`` is ``(grid index, result JSON)`` pairs in *any*
        order — the merge sorts by grid index, which is what makes the
        report independent of worker scheduling.  Exposed so every
        execution strategy (the in-process serial path, the worker
        pool, a benchmark's cold-process loop) shares one merge.
        """
        by_index = {index: result_json for index, result_json in outcomes}
        runs = [ScenarioResult.from_json(by_index[point.index])
                for point in points]
        point_rows = [{"index": point.index,
                       "fingerprint": point.spec.fingerprint(),
                       "label": point.label(),
                       "overrides": _jsonable_overrides(point.overrides)}
                      for point in points]
        return cls(base_fingerprint=base.fingerprint(),
                   points=point_rows, runs=runs, workers=workers)


class SweepRunner:
    """Fan a grid of scenario specs across processes; merge determinate.

    Args:
        base: The spec every grid point derives from.
        workers: Process count; ``1`` runs serially in-process (but
            still through the JSON rehydration path, so serial and
            parallel results are comparable byte for byte).
    """

    def __init__(self, base: ScenarioSpec, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.base = base
        self.workers = workers

    # ------------------------------------------------------------------
    # Grid construction
    # ------------------------------------------------------------------
    def grid(self, seeds: Sequence[int] = (),
             policies: Sequence[str] = (),
             scale: Sequence[float] = (),
             overrides: Sequence[Mapping[str, Any]] = ()) -> \
            list[SweepPoint]:
        """The cartesian grid of sweep points, in deterministic order.

        Axes: ``seeds`` (root seed), ``policies`` (queue policy),
        ``scale`` (multiplies every cluster's machine count), and
        ``overrides`` (arbitrary dotted-path update mappings).  Empty
        axes contribute the base value.  Iteration order is seeds,
        then policies, then scale, then overrides — index 0 is the
        first combination.
        """
        seed_axis: Sequence[Any] = list(seeds) or [None]
        policy_axis: Sequence[Any] = list(policies) or [None]
        scale_axis: Sequence[Any] = list(scale) or [None]
        override_axis: Sequence[Any] = list(overrides) or [None]
        points = []
        index = 0
        for seed in seed_axis:
            for policy in policy_axis:
                for factor in scale_axis:
                    for extra in override_axis:
                        updates: dict[str, Any] = {}
                        if seed is not None:
                            updates["seed"] = seed
                        if policy is not None:
                            updates["scheduler.queue"] = policy
                        if factor is not None:
                            updates["scale"] = factor
                        if extra:
                            updates.update(extra)
                        spec = (self.base.override(updates) if updates
                                else self.base)
                        points.append(SweepPoint(index=index, spec=spec,
                                                 overrides=updates))
                        index += 1
        return points

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> SweepReport:
        """Execute every point; return the merged deterministic report."""
        if not points:
            raise ValueError("the sweep grid is empty")
        payloads = [(point.index, point.spec.to_json()) for point in points]
        if self.workers == 1:
            outcomes = [_run_spec_payload(payload) for payload in payloads]
        else:
            with Pool(processes=self.workers) as pool:
                outcomes = pool.map(_run_spec_payload, payloads)
        return SweepReport.assemble(self.base, points, outcomes,
                                    workers=self.workers)

    def sweep(self, seeds: Sequence[int] = (),
              policies: Sequence[str] = (),
              scale: Sequence[float] = (),
              overrides: Sequence[Mapping[str, Any]] = ()) -> SweepReport:
        """Build the grid and run it in one call."""
        return self.run(self.grid(seeds=seeds, policies=policies,
                                  scale=scale, overrides=overrides))


def sweep(base: ScenarioSpec, seeds: Sequence[int] = (),
          policies: Sequence[str] = (), scale: Sequence[float] = (),
          workers: int = 1,
          overrides: Sequence[Mapping[str, Any]] = ()) -> SweepReport:
    """Run a spec grid: ``sweep(spec, seeds=..., policies=..., scale=...)``.

    Convenience wrapper over :class:`SweepRunner`; see its docs for
    grid and determinism semantics.
    """
    return SweepRunner(base, workers=workers).sweep(
        seeds=seeds, policies=policies, scale=scale, overrides=overrides)


def _jsonable_overrides(updates: Mapping[str, Any]) -> dict[str, Any]:
    """Overrides as JSON-ready data (defensive copy, sorted by key)."""
    return {key: updates[key] for key in sorted(updates)}
